"""Benchmark-suite plumbing.

Each benchmark file regenerates one paper table/figure: it executes the
experiment harness once under ``pytest-benchmark`` (so the run itself is
timed), asserts the reproduced *shape*, and writes the rendered table to
``benchmarks/reports/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

_REPORTS = Path(__file__).parent / "reports"


def pytest_configure(config):
    # Cache generated datasets next to the repo so repeated benchmark runs
    # skip regeneration.
    os.environ.setdefault(
        "REPRO_DATA_DIR", str(Path(__file__).parent.parent / ".repro-data")
    )
    _REPORTS.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def report_dir() -> Path:
    """Directory collecting the rendered experiment tables."""
    return _REPORTS


@pytest.fixture(scope="session")
def save_report(report_dir):
    """Callable that persists and echoes one experiment's rendering."""

    def _save(name: str, text: str) -> None:
        (report_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_json(report_dir):
    """Callable that persists one benchmark's machine-readable report.

    CI uploads ``benchmarks/reports/`` as an artifact, so anything saved
    here is diffable across runs without re-parsing rendered tables.
    """
    import json

    def _save(name: str, payload) -> None:
        (report_dir / f"{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )

    return _save
