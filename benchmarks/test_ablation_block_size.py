"""Ablation: thread-block size vs device time (the paper's §5.4 text).

"When the block size is too large (e.g., >= 256), the overall performance
of PixelBox degrades ... less thread blocks can run concurrently on a
multiprocessor and the sampling box partitioning will be less fine-grained."
"""

from repro.experiments.common import representative_pairs
from repro.gpu.cost import OptimizationFlags
from repro.gpu.device import GTX580
from repro.gpu.simt_kernel import collect_block_counts
from repro.gpu.simulator import simulate_device
from repro.pixelbox.common import LaunchConfig


def test_block_size_ablation(benchmark, save_report):
    base = representative_pairs(quick=True, limit=80)
    pairs = [(p.scale(3), q.scale(3)) for p, q in base]

    def sweep():
        rows = []
        for block_size in (16, 32, 64, 128, 256, 512):
            cfg = LaunchConfig(block_size=block_size)
            counts = [collect_block_counts(p, q, cfg) for p, q in pairs]
            report = simulate_device(counts, GTX580, OptimizationFlags(), cfg)
            rows.append((block_size, report.device_ms, report.occupancy))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["== Ablation — block size vs simulated device time =="]
    for block_size, ms, occupancy in rows:
        lines.append(f"block {block_size:>4}: {ms:8.3f} ms "
                     f"(occupancy {occupancy} blocks/SM)")
    lines.append("paper (§5.4): block sizes >= 256 degrade performance")
    save_report("ablation_block_size", "\n".join(lines))
    by_block = {b: ms for b, ms, _ in rows}
    # A paper-recommended small block must beat the oversized ones.
    assert min(by_block[16], by_block[32], by_block[64]) < by_block[512]
