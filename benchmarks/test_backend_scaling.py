"""Backend-scaling benchmark: scalar vs vectorized vs multiprocess vs numba.

Tracks the execution-backend layer's speedups in the perf trajectory:
the vectorized engine's gain over the scalar baseline, the multiprocess
backend's scaling at 1/2/4 workers, and — where the ``repro[numba]``
extra is installed — the compiled substrate breaking the NumPy ceiling.
Acceptance bars: multiprocess at 4 workers >= 2x over scalar, vectorized
>= 2x over scalar, and the compiled kernel >= 5x over vectorized (every
backend computes identical results, which the parity suite asserts
separately — this file only times them).

Alongside the rendered table, ``BENCH_backend_scaling.json`` records
pairs/second per backend machine-readably; CI uploads the reports
directory as an artifact, so the trajectory is diffable across runs.
"""

from __future__ import annotations

import os
import time

from repro.backends import backend_availability, get_backend
from repro.data.synth import generate_tile_pair
from repro.index.join import mbr_pair_join


def _workload(pairs_target: int = 3000):
    """Pathology-scale pair list (tiles joined by MBR overlap)."""
    pairs = []
    seed = 90
    while len(pairs) < pairs_target:
        set_a, set_b = generate_tile_pair(
            seed=seed, nuclei=400, width=512, height=512
        )
        join = mbr_pair_join(set_a, set_b)
        pairs.extend(join.pairs(set_a, set_b))
        seed += 1
    return pairs[:pairs_target]


def _time_backend(backend, pairs, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall seconds for one backend."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = backend.compare_pairs(pairs)
        best = min(best, time.perf_counter() - t0)
        assert len(result) == len(pairs)
    return best


def test_backend_scaling(benchmark, save_report, save_json):
    pairs = _workload()
    numba_ready = backend_availability("numba") is None

    def run():
        rows = []
        scalar_s = _time_backend(get_backend("scalar"), pairs, repeats=1)
        rows.append(("scalar", 1, scalar_s, 1.0))
        vec_s = _time_backend(get_backend("vectorized"), pairs)
        rows.append(("vectorized", 1, vec_s, scalar_s / vec_s))
        for workers in (1, 2, 4):
            mp_s = _time_backend(
                get_backend("multiprocess", workers=workers, min_pairs=1),
                pairs,
            )
            rows.append(
                ("multiprocess", workers, mp_s, scalar_s / mp_s)
            )
        if numba_ready:
            with get_backend("numba") as compiled:
                compiled.warm()  # JIT compilation, excluded from timing
                numba_s = _time_backend(compiled, pairs)
            rows.append(("numba", 1, numba_s, scalar_s / numba_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Backend scaling - scalar vs vectorized vs multiprocess vs numba "
        f"({len(pairs)} pairs, {os.cpu_count()} host core(s))",
        f"{'backend':14s} {'workers':>7s} {'seconds':>9s} {'vs scalar':>10s}",
    ]
    for name, workers, seconds, speedup in rows:
        lines.append(
            f"{name:14s} {workers:7d} {seconds:9.3f} {speedup:9.1f}x"
        )
    if not numba_ready:
        lines.append(
            "numba                 -         -         -  "
            "(repro[numba] extra not installed)"
        )
    save_report("backend_scaling", "\n".join(lines))

    save_json(
        "BENCH_backend_scaling",
        {
            "n_pairs": len(pairs),
            "host_cores": os.cpu_count(),
            "numba_available": numba_ready,
            "backends": [
                {
                    "backend": name,
                    "workers": workers,
                    "seconds": seconds,
                    "pairs_per_second": len(pairs) / seconds,
                    "speedup_vs_scalar": speedup,
                }
                for name, workers, seconds, speedup in rows
            ],
        },
    )

    seconds = {(name, workers): s for name, workers, s, _ in rows}
    speedups = {(name, workers): s for name, workers, _, s in rows}
    # The acceptance bar: multiprocess at 4 workers >= 2x over scalar.
    # (Worker-vs-worker scaling is only visible on multi-core hosts; on
    # a single-core container the processes time-slice one CPU and the
    # curve is flat, so no mp(4) > mp(1) assertion is made here.)
    assert speedups[("multiprocess", 4)] >= 2.0
    # The array engine is the point of the exercise; it must crush the
    # scalar baseline on its own.
    assert speedups[("vectorized", 1)] >= 2.0
    if numba_ready:
        # The compiled substrate's reason to exist: break the ceiling
        # the NumPy array programs plateau at.
        assert (
            seconds[("vectorized", 1)] / seconds[("numba", 1)] >= 5.0
        )
