"""Cluster-scaling benchmark: throughput at 1/2/4 remote workers.

Spawns real ``repro worker`` subprocesses (separate interpreters, so
shards run with genuine process parallelism — the loopback threads the
test suite uses share one GIL and cannot scale) and times the same
pathology-scale pair list through the ``cluster`` backend at 1, 2, and
4 workers, against the single-process vectorized baseline.  Each timed
run reuses resident tables, so the trajectory isolates what the
subsystem adds at steady state: dispatch, scheduling, and result
gathering.  Results land in ``benchmarks/reports/cluster_scaling.txt``;
parity is asserted on every configuration (the numbers are meaningless
if the bits drift).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np

from repro.backends import get_backend
from repro.data.synth import generate_tile_pair
from repro.index.join import mbr_pair_join

_PAIRS_TARGET = 3000


def _workload():
    pairs = []
    seed = 90
    while len(pairs) < _PAIRS_TARGET:
        set_a, set_b = generate_tile_pair(
            seed=seed, nuclei=400, width=512, height=512
        )
        join = mbr_pair_join(set_a, set_b)
        pairs.extend(join.pairs(set_a, set_b))
        seed += 1
    return pairs[:_PAIRS_TARGET]


def _spawn_worker() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Workers run with their shard-result cache disabled: the timed warm
    # repeats must measure dispatch + kernel throughput, not how fast a
    # worker can replay memoized shard results.
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--port", "0", "--result-cache-bytes", "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    tag, state, host, port = proc.stdout.readline().split()
    assert (tag, state) == ("repro-worker", "ready")
    return proc, f"{host}:{port}"


def _time_cluster(hosts: list[str], pairs, ref, repeats: int = 3) -> float:
    backend = get_backend(
        "cluster", hosts=",".join(hosts), min_pairs=1
    )
    try:
        best = float("inf")
        backend.compare_pairs(pairs)  # warm: connections + table push
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = backend.compare_pairs(pairs)
            best = min(best, time.perf_counter() - t0)
            assert np.array_equal(result.intersection, ref.intersection)
            assert np.array_equal(result.union, ref.union)
    finally:
        backend.close()
    return best


def test_cluster_scaling(benchmark, save_report, save_json):
    pairs = _workload()
    ref = get_backend("vectorized").compare_pairs(pairs)

    workers = [_spawn_worker() for _ in range(4)]
    try:
        def run():
            rows = []
            t0 = time.perf_counter()
            get_backend("vectorized").compare_pairs(pairs)
            base_s = time.perf_counter() - t0
            rows.append(("vectorized (local)", 1, base_s, 1.0))
            addresses = [addr for _, addr in workers]
            for count in (1, 2, 4):
                cl_s = _time_cluster(addresses[:count], pairs, ref)
                rows.append(("cluster", count, cl_s, base_s / cl_s))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        for proc, _ in workers:
            proc.kill()
            proc.wait(timeout=10)

    lines = [
        f"cluster scaling — {len(pairs)} pathology-scale pairs "
        f"(warm tables, best of 3)",
        f"{'executor':>20s} {'workers':>8s} {'seconds':>9s} {'speedup':>8s} "
        f"{'pairs/s':>10s}",
    ]
    for name, count, seconds, speedup in rows:
        lines.append(
            f"{name:>20s} {count:>8d} {seconds:>9.3f} {speedup:>7.2f}x "
            f"{len(pairs) / seconds:>10.0f}"
        )
    save_report("cluster_scaling", "\n".join(lines))
    save_json(
        "BENCH_cluster_scaling",
        {
            "benchmark": "cluster_scaling",
            "pairs": len(pairs),
            "result_cache": "disabled (workers spawned with "
            "--result-cache-bytes 0)",
            "rows": [
                {
                    "executor": name,
                    "workers": count,
                    "seconds": seconds,
                    "speedup": speedup,
                    "pairs_per_second": len(pairs) / seconds,
                }
                for name, count, seconds, speedup in rows
            ],
        },
    )

    by_count = {count: s for name, count, s, _ in rows if name == "cluster"}
    # Scaling bar kept deliberately loose for CI noise: more workers must
    # never make the same warm workload dramatically slower.
    assert by_count[4] < 2.0 * by_count[1], (
        f"4-worker cluster regressed vs 1 worker: {by_count}"
    )
