"""Figure 2 benchmark: SDBMS query-time decomposition."""

from repro.experiments import fig2_profiling
from repro.sdbms.profiler import Bucket


def test_fig02_decomposition(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig2_profiling.run(quick=True), rounds=1, iterations=1
    )
    save_report("fig02", result.render())
    shares = {row[0]: (row[1], row[2]) for row in result.rows}
    # Optimized query: area-of-intersection dominates, union is gone.
    assert shares[Bucket.AREA_OF_INTERSECTION][1] > 40.0
    assert shares[Bucket.AREA_OF_UNION][1] == 0.0
    # Unoptimized query: intersects + both areas carry most of the time.
    heavy = (
        shares[Bucket.ST_INTERSECTS][0]
        + shares[Bucket.AREA_OF_INTERSECTION][0]
        + shares[Bucket.AREA_OF_UNION][0]
    )
    assert heavy > 60.0
    # Index work stays small in both queries.
    assert shares[Bucket.INDEX_BUILD][0] < 15.0
    assert shares[Bucket.INDEX_SEARCH][0] < 15.0
