"""Figure 7 benchmark: GEOS vs PixelBox-CPU-S vs PixelBox (device)."""

import pytest

from repro.exact.boolean import intersection_area
from repro.experiments import fig7_speedup
from repro.experiments.common import representative_pairs
from repro.pixelbox.api import batch_areas
from repro.pixelbox.cpu import PixelBoxCpu


@pytest.fixture(scope="module")
def pairs():
    return representative_pairs(quick=True, limit=300)


def test_fig07_report(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig7_speedup.run(quick=True), rounds=1, iterations=1
    )
    save_report("fig07", result.render())
    by_name = {row[0]: row for row in result.rows}
    # Ordering: device > CPU port > exact baseline.
    assert by_name["PixelBox (device)"][2] > by_name["PixelBox-CPU-S"][2] > 1.0
    assert by_name["PixelBox (device)"][2] > 5.0


def test_bench_geos_baseline(benchmark, pairs):
    benchmark(lambda: [intersection_area(p, q) for p, q in pairs])


def test_bench_pixelbox_cpu_scalar(benchmark, pairs):
    cpu = PixelBoxCpu(mode="scalar", workers=1)
    benchmark(lambda: cpu.compute_many(pairs))


def test_bench_pixelbox_device(benchmark, pairs):
    benchmark(lambda: batch_areas(pairs))
