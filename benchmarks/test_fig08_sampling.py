"""Figure 8 benchmark: algorithm variants across scale factors."""

import pytest

from repro.experiments import fig8_sampling
from repro.experiments.common import representative_pairs
from repro.pixelbox.common import Method
from repro.pixelbox.engine import compute_pairs


def test_fig08_report(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig8_sampling.run(quick=True), rounds=1, iterations=1
    )
    save_report("fig08", result.render())
    last = result.rows[-1]  # SF5 row
    # At the largest scale factor the sampling-box variants beat
    # pixelization-only, PixelBox being the fastest.
    assert last[3] <= last[1] * 1.1  # PixelBox vs PixelOnly
    assert last[3] <= last[2] * 1.1  # PixelBox vs NoSep


@pytest.mark.parametrize("method", list(Method))
def test_bench_variant_sf5(benchmark, method):
    base = representative_pairs(quick=True, limit=200)
    pairs = [(p.scale(5), q.scale(5)) for p, q in base]
    benchmark(lambda: compute_pairs(pairs, method))
