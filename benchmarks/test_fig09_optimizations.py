"""Figure 9 benchmark: implementation optimizations on the SIMT model."""

from repro.experiments import fig9_optimizations
from repro.experiments.common import representative_pairs
from repro.gpu.device import GTX580
from repro.gpu.cost import OptimizationFlags
from repro.gpu.simt_kernel import collect_block_counts
from repro.gpu.simulator import simulate_device


def test_fig09_report(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig9_optimizations.run(quick=True), rounds=1, iterations=1
    )
    save_report("fig09", result.render())
    for row in result.rows:
        speedups = row[1:]
        # Monotone: each added optimization never hurts; full > 1.05x.
        assert speedups[0] == 1.0
        assert all(b >= a * 0.999 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 1.05


def test_bench_simt_simulation(benchmark):
    pairs = representative_pairs(quick=True, limit=60)
    counts = [collect_block_counts(p, q) for p, q in pairs]
    benchmark(lambda: simulate_device(counts, GTX580, OptimizationFlags()))
