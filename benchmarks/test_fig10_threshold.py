"""Figure 10 benchmark: pixelization threshold sensitivity."""

from repro.experiments import fig10_threshold
from repro.experiments.common import representative_pairs
from repro.pixelbox.common import LaunchConfig, Method
from repro.pixelbox.engine import compute_pairs


def test_fig10_report(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig10_threshold.run(quick=True), rounds=1, iterations=1
    )
    save_report("fig10", result.render())
    thresholds = [int(h.split("=")[1]) for h in result.headers[1:]]
    for row in result.rows:
        times = row[1:]
        best = min(times)
        # The paper's recommended band [n^2/8, n^2] = [512, 4096] must be
        # near-optimal: within 2.5x of the sweep's best.
        for t, seconds in zip(thresholds, times):
            if 512 <= t <= 4096:
                assert seconds <= best * 2.5


def test_bench_threshold_paper_default(benchmark):
    base = representative_pairs(quick=True, limit=200)
    pairs = [(p.scale(5), q.scale(5)) for p, q in base]
    cfg = LaunchConfig(block_size=64, pixel_threshold=2048)
    benchmark(lambda: compute_pairs(pairs, Method.PIXELBOX, cfg))
