"""Figure 11 benchmark: dynamic task migration benefit."""

from repro.experiments import fig11_migration
from repro.experiments.common import pipeline_dataset
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import PipelineOptions, run_pipelined
from repro.pipeline.migration import MigrationConfig


def test_fig11_report(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig11_migration.run(quick=True), rounds=1, iterations=1
    )
    save_report("fig11", result.render())
    # Migration must never cost more than measurement noise.  The
    # non-bottlenecked configurations have no migration upside at quick
    # scale, so their on/off ratio is 1.0 +/- scheduler noise; the band
    # reflects the variance observed across repeated quick runs.
    for row in result.rows:
        assert row[3] > 0.7
    # ...and the slowed-GPU configuration (Config-III) must show the
    # paper's GPU-to-CPU migration direction with a real gain.
    assert result.rows[-1][3] > 1.1


def test_bench_pipelined_with_migration(benchmark):
    dir_a, dir_b = pipeline_dataset(quick=True)
    options = PipelineOptions(
        devices=[GpuDevice(launch_overhead=0.002)],
        migration=MigrationConfig(cpu_workers=2),
    )
    benchmark.pedantic(
        lambda: run_pipelined(dir_a, dir_b, options), rounds=3, iterations=1
    )
