"""Figure 12 benchmark: SCCG vs PostGIS-M over the dataset suite."""

from repro.experiments import fig12_datasets


def test_fig12_report(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: fig12_datasets.run(quick=True), rounds=1, iterations=1
    )
    save_report("fig12", result.render())
    *dataset_rows, mean_row = result.rows
    # Every dataset: SCCG wins, similarity agrees exactly.
    for row in dataset_rows:
        assert row[5] > 1.0, f"SCCG slower than PostGIS-M on {row[0]}"
        assert row[6] == "yes"
    assert mean_row[5] > 2.0  # geometric-mean speedup
