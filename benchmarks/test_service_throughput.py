"""Service-throughput benchmark: warm pooled serving vs per-call spin-up.

The scenario the service layer exists for: many small concurrent
``compare_pairs`` requests.  The baseline pays the status-quo cost — a
fresh multiprocess backend per request, so every request forks a worker
pool and packs its own shared-memory tables.  The pooled run serves the
same requests through :class:`repro.service.ComparisonService` with a
persistent multiprocess backend: forking happens once at warm-up,
requests coalesce into cost-model-sized dispatches.

Acceptance bar (ISSUE 2): pooled warm-backend serving beats per-call
backend construction by >= 2x, and every coalesced response is
bit-for-bit the sequential per-request result (asserted here over every
request, on top of the dedicated service parity tests).
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro.backends import get_backend
from repro.data.synth import generate_tile_pair
from repro.index.join import mbr_pair_join
from repro.service import ComparisonService, ServiceConfig

_WORKERS = 2
_REQUESTS = 32
_PAIRS_PER_REQUEST = 24


def _request_workloads():
    """`_REQUESTS` small pair lists, the interactive traffic shape."""
    chunks = []
    seed = 300
    while len(chunks) < _REQUESTS:
        set_a, set_b = generate_tile_pair(
            seed=seed, nuclei=200, width=384, height=384
        )
        pairs = mbr_pair_join(set_a, set_b).pairs(set_a, set_b)
        for lo in range(0, len(pairs) - _PAIRS_PER_REQUEST, _PAIRS_PER_REQUEST):
            chunks.append(pairs[lo : lo + _PAIRS_PER_REQUEST])
            if len(chunks) == _REQUESTS:
                break
        seed += 1
    return chunks


def _run_cold(chunks) -> tuple[float, list]:
    """Status quo: construct (and fork) a fresh backend per request."""
    results = []
    t0 = time.perf_counter()
    for chunk in chunks:
        with get_backend(
            "multiprocess", workers=_WORKERS, min_pairs=1
        ) as backend:
            results.append(backend.compare_pairs(chunk))
    return time.perf_counter() - t0, results


def _run_warm(chunks) -> tuple[float, list, object]:
    """Pooled: one warm service, concurrent submits, coalesced dispatch."""

    async def main():
        config = ServiceConfig(
            backend="multiprocess",
            backend_options={"workers": _WORKERS, "min_pairs": 1},
            coalesce_window=0.01,
        )
        async with ComparisonService(config) as service:
            # Warm-up happened in start(); time only the serving phase.
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *(service.submit(c) for c in chunks)
            )
            elapsed = time.perf_counter() - t0
            return elapsed, results, service.snapshot()

    return asyncio.run(main())


def test_service_throughput(benchmark, save_report):
    chunks = _request_workloads()

    def run():
        cold_s, cold_results = _run_cold(chunks)
        warm_s, warm_results, snap = _run_warm(chunks)
        return cold_s, cold_results, warm_s, warm_results, snap

    cold_s, cold_results, warm_s, warm_results, snap = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Coalesced dispatch is bit-for-bit the per-request result.
    for cold, warm in zip(cold_results, warm_results):
        assert np.array_equal(cold.intersection, warm.intersection)
        assert np.array_equal(cold.union, warm.union)
        assert np.array_equal(cold.area_p, warm.area_p)
        assert np.array_equal(cold.area_q, warm.area_q)

    speedup = cold_s / warm_s
    total_pairs = sum(len(c) for c in chunks)
    lines = [
        "Service throughput - warm pooled serving vs per-call backend "
        "construction",
        f"{_REQUESTS} concurrent requests x {_PAIRS_PER_REQUEST} pairs "
        f"({total_pairs} pairs total), multiprocess workers={_WORKERS}, "
        f"{os.cpu_count()} host core(s)",
        f"{'mode':28s} {'seconds':>9s} {'req/s':>8s}",
        f"{'per-call construction':28s} {cold_s:9.3f} "
        f"{_REQUESTS / cold_s:8.1f}",
        f"{'warm service (coalesced)':28s} {warm_s:9.3f} "
        f"{_REQUESTS / warm_s:8.1f}",
        f"speedup: {speedup:.1f}x",
        "",
        "service metrics:",
        snap.render(),
    ]
    save_report("service_throughput", "\n".join(lines))

    # The acceptance bar: pooled warm serving >= 2x per-call spin-up.
    assert speedup >= 2.0, f"warm service only {speedup:.2f}x faster"
