"""Service-throughput benchmark: warm pooled serving vs per-call spin-up.

The scenario the service layer exists for: many small concurrent
``compare_pairs`` requests.  The baseline pays the status-quo cost — a
fresh multiprocess backend per request, so every request forks a worker
pool and packs its own shared-memory tables.  The pooled run serves the
same requests through :class:`repro.service.ComparisonService` with a
persistent multiprocess backend: forking happens once at warm-up,
requests coalesce into cost-model-sized dispatches.

Acceptance bar (ISSUE 2): pooled warm-backend serving beats per-call
backend construction by >= 2x, and every coalesced response is
bit-for-bit the sequential per-request result (asserted here over every
request, on top of the dedicated service parity tests).

The cached phase (ISSUE 7) replays the same request stream against a
cache-enabled warm service: the first pass populates the
content-addressed request cache, the repeat pass must be served from it
>= 5x faster, bit-for-bit identical, with the hit counters visible in
the service metrics snapshot.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro.backends import get_backend
from repro.data.synth import generate_tile_pair
from repro.index.join import mbr_pair_join
from repro.service import ComparisonService, ServiceConfig

_WORKERS = 2
_REQUESTS = 32
_PAIRS_PER_REQUEST = 24


def _request_workloads():
    """`_REQUESTS` small pair lists, the interactive traffic shape."""
    chunks = []
    seed = 300
    while len(chunks) < _REQUESTS:
        set_a, set_b = generate_tile_pair(
            seed=seed, nuclei=200, width=384, height=384
        )
        pairs = mbr_pair_join(set_a, set_b).pairs(set_a, set_b)
        for lo in range(0, len(pairs) - _PAIRS_PER_REQUEST, _PAIRS_PER_REQUEST):
            chunks.append(pairs[lo : lo + _PAIRS_PER_REQUEST])
            if len(chunks) == _REQUESTS:
                break
        seed += 1
    return chunks


def _run_cold(chunks) -> tuple[float, list]:
    """Status quo: construct (and fork) a fresh backend per request."""
    results = []
    t0 = time.perf_counter()
    for chunk in chunks:
        with get_backend(
            "multiprocess", workers=_WORKERS, min_pairs=1
        ) as backend:
            results.append(backend.compare_pairs(chunk))
    return time.perf_counter() - t0, results


def _run_warm(chunks) -> tuple[float, list, object]:
    """Pooled: one warm service, concurrent submits, coalesced dispatch."""

    async def main():
        config = ServiceConfig(
            backend="multiprocess",
            backend_options={"workers": _WORKERS, "min_pairs": 1},
            coalesce_window=0.01,
        )
        async with ComparisonService(config) as service:
            # Warm-up happened in start(); time only the serving phase.
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *(service.submit(c) for c in chunks)
            )
            elapsed = time.perf_counter() - t0
            return elapsed, results, service.snapshot()

    return asyncio.run(main())


def _run_cached(chunks):
    """Cache-enabled warm service: populate pass, then repeat pass."""

    async def main():
        config = ServiceConfig(
            backend="multiprocess",
            backend_options={"workers": _WORKERS, "min_pairs": 1},
            coalesce_window=0.01,
            cache=True,
        )
        async with ComparisonService(config) as service:
            t0 = time.perf_counter()
            first = await asyncio.gather(*(service.submit(c) for c in chunks))
            populate_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            repeat = await asyncio.gather(*(service.submit(c) for c in chunks))
            repeat_s = time.perf_counter() - t0
            return populate_s, repeat_s, first, repeat, service.snapshot()

    return asyncio.run(main())


def test_service_throughput(benchmark, save_report, save_json):
    chunks = _request_workloads()

    def run():
        cold_s, cold_results = _run_cold(chunks)
        warm_s, warm_results, snap = _run_warm(chunks)
        return cold_s, cold_results, warm_s, warm_results, snap

    cold_s, cold_results, warm_s, warm_results, snap = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    populate_s, repeat_s, first_results, repeat_results, cached_snap = (
        _run_cached(chunks)
    )

    # Coalesced dispatch is bit-for-bit the per-request result.
    for cold, warm in zip(cold_results, warm_results):
        assert np.array_equal(cold.intersection, warm.intersection)
        assert np.array_equal(cold.union, warm.union)
        assert np.array_equal(cold.area_p, warm.area_p)
        assert np.array_equal(cold.area_q, warm.area_q)

    # Cached repeats are bit-for-bit the populate pass (and the cold run).
    for cold, first, repeat in zip(
        cold_results, first_results, repeat_results
    ):
        assert np.array_equal(cold.intersection, first.intersection)
        assert np.array_equal(first.intersection, repeat.intersection)
        assert np.array_equal(first.union, repeat.union)
        assert np.array_equal(first.area_p, repeat.area_p)
        assert np.array_equal(first.area_q, repeat.area_q)
        assert first.stats.as_dict() == repeat.stats.as_dict()

    speedup = cold_s / warm_s
    cache_speedup = populate_s / repeat_s
    total_pairs = sum(len(c) for c in chunks)
    lines = [
        "Service throughput - warm pooled serving vs per-call backend "
        "construction",
        f"{_REQUESTS} concurrent requests x {_PAIRS_PER_REQUEST} pairs "
        f"({total_pairs} pairs total), multiprocess workers={_WORKERS}, "
        f"{os.cpu_count()} host core(s)",
        f"{'mode':28s} {'seconds':>9s} {'req/s':>8s}",
        f"{'per-call construction':28s} {cold_s:9.3f} "
        f"{_REQUESTS / cold_s:8.1f}",
        f"{'warm service (coalesced)':28s} {warm_s:9.3f} "
        f"{_REQUESTS / warm_s:8.1f}",
        f"{'warm service (cache miss)':28s} {populate_s:9.3f} "
        f"{_REQUESTS / populate_s:8.1f}",
        f"{'warm service (cache hit)':28s} {repeat_s:9.3f} "
        f"{_REQUESTS / repeat_s:8.1f}",
        f"speedup: {speedup:.1f}x (warm vs cold), "
        f"{cache_speedup:.1f}x (cached repeat vs populate)",
        "",
        "service metrics:",
        snap.render(),
        "",
        "cached service metrics:",
        cached_snap.render(),
    ]
    save_report("service_throughput", "\n".join(lines))
    save_json(
        "BENCH_service_throughput",
        {
            "benchmark": "service_throughput",
            "requests": _REQUESTS,
            "pairs_per_request": _PAIRS_PER_REQUEST,
            "total_pairs": total_pairs,
            "workers": _WORKERS,
            "host_cores": os.cpu_count(),
            "modes": {
                "per_call_construction": {
                    "seconds": cold_s,
                    "requests_per_second": _REQUESTS / cold_s,
                },
                "warm_service": {
                    "seconds": warm_s,
                    "requests_per_second": _REQUESTS / warm_s,
                },
                "cached_populate": {
                    "seconds": populate_s,
                    "requests_per_second": _REQUESTS / populate_s,
                },
                "cached_repeat": {
                    "seconds": repeat_s,
                    "requests_per_second": _REQUESTS / repeat_s,
                },
            },
            "warm_speedup": speedup,
            "cache_speedup": cache_speedup,
            "service_metrics": snap.as_dict(),
            "cached_service_metrics": cached_snap.as_dict(),
        },
    )

    # The acceptance bar: pooled warm serving >= 2x per-call spin-up.
    assert speedup >= 2.0, f"warm service only {speedup:.2f}x faster"
    # ISSUE 7 acceptance: cached repeats >= 5x, hits visible in metrics.
    assert cache_speedup >= 5.0, (
        f"cached repeat only {cache_speedup:.2f}x faster than populate"
    )
    assert cached_snap.request_cache_hits >= _REQUESTS
    assert cached_snap.caches["service.request"]["hits"] >= 1
