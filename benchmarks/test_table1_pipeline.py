"""Table 1 benchmark: execution schemes vs PostGIS-S."""

from repro.experiments import table1_pipeline
from repro.experiments.common import pipeline_dataset
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import PipelineOptions, run_pipelined


def test_table1_report(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: table1_pipeline.run(quick=True), rounds=1, iterations=1
    )
    save_report("table1", result.render())
    speedups = {row[0]: row[2] for row in result.rows}
    # Every accelerated scheme must beat single-core PostGIS.
    assert speedups["NoPipe-S"] > 1.0
    assert speedups["NoPipe-M"] > 1.0
    assert speedups["Pipelined"] > 1.0
    # The pipelined scheme is the paper's best performer.
    assert speedups["Pipelined"] >= speedups["NoPipe-S"] * 0.8


def test_bench_pipelined(benchmark):
    dir_a, dir_b = pipeline_dataset(quick=True)
    benchmark.pedantic(
        lambda: run_pipelined(
            dir_a, dir_b,
            PipelineOptions(devices=[GpuDevice(launch_overhead=0.002)]),
        ),
        rounds=3,
        iterations=1,
    )
