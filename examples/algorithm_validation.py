"""Algorithm validation study: the paper's motivating workflow (§2.1).

A pathologist evaluates a new segmentation algorithm by cross-comparing
its output against a reference over a whole image: per-tile similarity,
missing-polygon counts, and the image-level J'.  This example generates a
multi-tile dataset on disk, runs the full SCCG pipeline over it, and
prints the per-tile breakdown a validation report would contain.

Run:  python examples/algorithm_validation.py
"""

import tempfile
from pathlib import Path

from repro import CompareOptions, Session
from repro.data import DatasetSpec, PerturbModel, generate_dataset
from repro.io import pair_result_sets, read_polygons


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sccg-validation-"))
    # A "new algorithm" that systematically under-segments a little:
    # boundaries shrink and a few objects are missed.
    model = PerturbModel(grow_sd=0.08, shift_sd=1.0, drop_rate=0.08,
                         spurious_rate=0.04)
    spec = DatasetSpec(name="validation", tiles=6, nuclei_per_tile=55,
                       tile_width=512, tile_height=512, seed=21)
    dir_a, dir_b = generate_dataset(spec, workdir, perturb=model)
    print(f"dataset: {spec.tiles} tiles under {workdir}")

    # One warm session serves the per-tile breakdown and the image-level
    # pipeline run alike; migration is one option, not a config object.
    with Session(CompareOptions(migration=True)) as session:
        # Per-tile report (what the sensitivity study reads).
        print(f"\n{'tile':>4}  {'J-prime':>8}  {'pairs':>5}  "
              f"{'missing A':>9}  {'missing B':>9}")
        for pair in pair_result_sets(dir_a, dir_b):
            tile_a = read_polygons(pair.file_a)
            tile_b = read_polygons(pair.file_b)
            tile = session.compare_sets(tile_a, tile_b)
            print(f"{pair.tile_id:>4}  {tile.jaccard_mean:>8.4f}  "
                  f"{tile.intersecting_pairs:>5}  {tile.missing_a:>9}  "
                  f"{tile.missing_b:>9}")

        # Whole-image result through the pipelined system.
        outcome = session.compare_files(dir_a, dir_b)
    print(f"\nimage-level J' = {outcome.jaccard_mean:.4f} over "
          f"{outcome.intersecting_pairs} pairs "
          f"({outcome.wall_seconds:.2f}s, "
          f"{outcome.throughput / 1e6:.2f} MB/s)")
    print(f"missing polygons: {outcome.missing_a} of {outcome.count_a} "
          f"reference objects unmatched; {outcome.missing_b} of "
          f"{outcome.count_b} new-algorithm objects spurious")


if __name__ == "__main__":
    main()
