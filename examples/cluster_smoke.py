"""Cluster smoke test: real ``repro worker`` processes behind a
coordinator, parity vs the vectorized backend, clean failure handling.

Spawns two genuine ``repro worker`` subprocesses on ephemeral TCP ports
(separate interpreters — unlike the loopback transport the test suite
uses, these shards run with real process parallelism), drives a
pathology-scale comparison through the ``cluster`` backend, verifies
every area bit-for-bit against the vectorized backend, asserts tables
traveled once per worker, then kills one worker mid-service and checks
a second request still completes exactly.  CI runs this as the cluster
smoke job.

Run:  PYTHONPATH=src python examples/cluster_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np

from repro.backends import get_backend
from repro.data.synth import generate_tile_pair
from repro.index.join import mbr_pair_join

WORKERS = 2


def start_worker() -> tuple[subprocess.Popen, str]:
    """One ``repro worker`` on an ephemeral port; returns (proc, host:port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline().strip()
    tag, state, host, port = ready.split()
    assert (tag, state) == ("repro-worker", "ready"), ready
    return proc, f"{host}:{port}"


def main() -> None:
    set_a, set_b = generate_tile_pair(
        seed=4242, nuclei=400, width=512, height=512
    )
    pairs = mbr_pair_join(set_a, set_b).pairs(set_a, set_b)
    reference = get_backend("vectorized").compare_pairs(pairs)

    workers = [start_worker() for _ in range(WORKERS)]
    hosts = ",".join(addr for _, addr in workers)
    print(f"workers: {hosts}")
    backend = get_backend(
        "cluster", hosts=hosts, min_pairs=1, shard_pairs=64
    )
    try:
        result = backend.compare_pairs(pairs)
        assert np.array_equal(result.intersection, reference.intersection)
        assert np.array_equal(result.union, reference.union)
        assert result.stats.as_dict() == reference.stats.as_dict()
        assert backend.table_transfers == WORKERS, backend.table_transfers
        print(
            f"parity ok: {len(pairs)} pairs, "
            f"{backend.last_report.shards} shards, "
            f"{backend.table_transfers} table transfers, "
            f"report={backend.last_report}"
        )

        # Kill one worker; the next request must re-dispatch its shards
        # and still answer bit-for-bit.
        victim_proc, victim_addr = workers[0]
        victim_proc.kill()
        victim_proc.wait(timeout=10)
        print(f"killed worker {victim_addr}")
        result = backend.compare_pairs(pairs)
        assert np.array_equal(result.intersection, reference.intersection)
        assert np.array_equal(result.union, reference.union)
        print(f"post-kill parity ok, report={backend.last_report}")
    finally:
        backend.close()
        for proc, _ in workers:
            proc.kill()
            proc.wait(timeout=10)
    print("cluster smoke ok")


if __name__ == "__main__":
    main()
