"""GPU architecture study on the SIMT simulator.

Explores the two hardware questions §3.3/§5.4 of the paper answers:
which implementation optimizations matter (bank conflicts vs unrolling vs
shared-memory staging), and how the thread-block size interacts with
occupancy.

Run:  python examples/gpu_architecture_study.py
"""

from repro.data import generate_tile_pair
from repro.gpu import (
    GTX580,
    OptimizationFlags,
    collect_block_counts,
    simulate_device,
)
from repro.index import mbr_pair_join
from repro.pixelbox import LaunchConfig

VARIANTS = [
    OptimizationFlags(False, False, False),
    OptimizationFlags(True, False, False),
    OptimizationFlags(True, True, False),
    OptimizationFlags(True, True, True),
]


def main() -> None:
    set_a, set_b = generate_tile_pair(seed=5, nuclei=50, width=384, height=384)
    join = mbr_pair_join(set_a, set_b)
    pairs = [(p.scale(3), q.scale(3)) for p, q in join.pairs(set_a, set_b)]

    print("== implementation optimizations (Figure 9) ==")
    counts = [collect_block_counts(p, q) for p, q in pairs]
    base = simulate_device(counts, GTX580, VARIANTS[0])
    for flags in VARIANTS:
        report = simulate_device(counts, GTX580, flags)
        b = report.breakdown
        print(f"{flags.label:<22} {base.device_ms / report.device_ms:>6.3f}x"
              f"   cycles: alu={b.alu:>10.0f} gmem={b.global_mem:>10.0f} "
              f"smem={b.shared_mem:>10.0f} stack={b.stack:>8.0f}")

    print("\n== block-size sensitivity (the §5.4 observation) ==")
    for block_size in (16, 32, 64, 128, 256, 512):
        cfg = LaunchConfig(block_size=block_size)
        counts = [collect_block_counts(p, q, cfg) for p, q in pairs]
        report = simulate_device(counts, GTX580, OptimizationFlags(), cfg)
        print(f"block {block_size:>4}: {report.device_ms:>8.3f} ms "
              f"(occupancy {report.occupancy} blocks/SM)")
    print("\nVery large blocks lose occupancy and make partitioning "
          "coarser — the paper recommends small n with T ~ n^2/2.")


if __name__ == "__main__":
    main()
