"""Parameter sensitivity study (§2.1's second motivating workflow).

"A slight change of algorithm parameters may lead to dramatic variations
in segmentation output."  This example sweeps one synthetic-algorithm
parameter (the boundary-scale noise of the perturbation model) and plots
how J' degrades as the two runs diverge — the curve a sensitivity study
reports for each parameter.

Run:  python examples/parameter_sensitivity.py
"""

from repro.data import PerturbModel, TileSpec, generate_tile
from repro.metrics import jaccard_global, jaccard_pairwise


def main() -> None:
    print(f"{'grow_sd':>8}  {'J-prime':>8}  {'global J':>8}  "
          f"{'missing':>7}  bar")
    for grow_sd in (0.0, 0.03, 0.06, 0.10, 0.15, 0.22, 0.30):
        model = PerturbModel(grow_sd=grow_sd, shift_sd=grow_sd * 12,
                             drop_rate=grow_sd / 3)
        tile = generate_tile(
            TileSpec(width=512, height=512, nuclei=60, seed=13),
            perturb=model,
        )
        pw = jaccard_pairwise(tile.polygons_a, tile.polygons_b)
        jg = jaccard_global(tile.polygons_a, tile.polygons_b)
        bar = "#" * int(pw.mean_ratio * 40)
        print(f"{grow_sd:>8.2f}  {pw.mean_ratio:>8.4f}  {jg:>8.4f}  "
              f"{pw.missing_a + pw.missing_b:>7}  {bar}")
    print("\nJ' decreases monotonically as the parameter perturbation "
          "grows — the sensitivity signal the cross-comparison tooling "
          "exists to measure.")


if __name__ == "__main__":
    main()
