"""Quickstart: cross-compare two segmentation results of one tile.

Generates a synthetic pathology tile with two segmentation results (the
second derived through a realistic perturbation model), computes their
Jaccard similarity J' through the session-centric front door, and
cross-checks the answer against the exact vector-geometry baseline.

Run:  python examples/quickstart.py
"""

from repro import CompareOptions, CompareRequest, Session, explain
from repro.data import generate_tile_pair, polygon_stats
from repro.sdbms import run_cross_compare


def main() -> None:
    # Two polygon sets segmented from the same 512x512 tile.
    result_a, result_b = generate_tile_pair(seed=7, nuclei=60)
    print("result A:", polygon_stats(result_a))
    print("result B:", polygon_stats(result_b))

    # PixelBox path (the paper's accelerated system).  A Session owns
    # one warm executor; every comparison goes through it.
    with Session() as session:
        result = session.compare_sets(result_a, result_b)
    print()
    print("PixelBox:", result)

    # Exact SDBMS path (the PostGIS/GEOS baseline) — must agree bit-for-bit.
    baseline = run_cross_compare(result_a, result_b, optimized=True)
    print(f"SDBMS   : J'={baseline.jaccard_mean:.4f} "
          f"({baseline.pair_count} pairs)")
    assert abs(result.jaccard_mean - baseline.jaccard_mean) < 1e-12
    print()
    print("Both systems agree exactly — pixelization is lossless on "
          "rectilinear polygons (paper §3.4).")

    # Every execution backend computes the same bits; pick one with
    # CompareOptions (or from the shell:
    # `python -m repro compare A B --backend auto`).
    from repro.backends import available_backends, backend_availability

    print()
    for backend in available_backends():
        if backend == "simt":
            continue  # the pure-Python replay is slow at tile scale
        reason = backend_availability(backend)
        if reason is not None:
            print(f"backend {backend:12s}: skipped ({reason})")
            continue
        with Session(CompareOptions(backend=backend)) as session:
            routed = session.compare_sets(result_a, result_b)
        print(f"backend {backend:12s}: J'={routed.jaccard_mean:.4f}")
        assert routed.jaccard_mean == result.jaccard_mean

    # `explain` resolves a request into its plan without executing it:
    # which executor the cost model picks, the effective launch
    # parameters, and the shard/coalesce sizing.
    request = CompareRequest.from_sets(
        result_a, result_b, CompareOptions(backend="auto")
    )
    plan = explain(request)
    print()
    print(f"plan: auto -> {plan.resolved_backend} "
          f"({plan.n_pairs} candidate pairs, "
          f"coalesce<={plan.coalesce_pairs})")


if __name__ == "__main__":
    main()
