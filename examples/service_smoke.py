"""Service smoke test: start ``repro serve``, drive concurrent traffic,
assert correct answers and a clean shutdown.

Launches the real CLI server as a subprocess on an ephemeral TCP port,
fires a handful of concurrent compare requests from blocking clients
(one connection per thread — the shape that exercises the coalescer),
verifies every response bit-for-bit against a direct backend call,
replays the identical traffic warm (the server runs with ``--cache``,
so the repeat round must be served from the request cache — nonzero
hit counters, bit-for-bit the cold answers), scrapes the ``/metrics``
HTTP endpoint mid-run (valid Prometheus exposition, nonzero request
counters), writes a sample trace JSONL from a traced in-process run,
then shuts the server down and checks it exits cleanly.  CI runs this
as the service smoke job and uploads the trace file as an artifact.

Run:  PYTHONPATH=src python examples/service_smoke.py [TRACE_OUT]
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import urllib.request

import numpy as np

from repro.backends import get_backend
from repro.data.synth import generate_tile_pair
from repro.index.join import mbr_pair_join
from repro.service import ServiceClient

CLIENTS = 6
PAIRS_PER_REQUEST = 20


def start_server() -> tuple[subprocess.Popen, str, int, str, int]:
    """``repro serve --metrics`` on ephemeral ports.

    Returns ``(process, host, port, metrics_host, metrics_port)`` parsed
    from the two announce lines.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--cache", "--metrics",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline().strip()
    tag, state, host, port = ready.split()
    assert (tag, state) == ("repro-serve", "ready"), ready
    announced = proc.stdout.readline().strip()
    tag, state, mhost, mport = announced.split()
    assert (tag, state) == ("repro-serve", "metrics"), announced
    return proc, host, int(port), mhost, int(mport)


def check_metrics_endpoint(host: str, port: int) -> None:
    """Scrape /metrics mid-run: valid exposition, nonzero counters."""
    with urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=10
    ) as resp:
        assert resp.status == 200, resp.status
        content_type = resp.headers["Content-Type"]
        assert content_type.startswith("text/plain; version=0.0.4"), (
            content_type
        )
        text = resp.read().decode()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name and (value == "+Inf" or float(value) is not None), (
            f"malformed sample line: {line!r}"
        )
    requests_total = next(
        float(line.rpartition(" ")[2])
        for line in text.splitlines()
        if line.startswith("repro_service_requests_total")
    )
    assert requests_total >= CLIENTS, (
        f"metrics endpoint reports {requests_total} requests, "
        f"expected >= {CLIENTS}"
    )
    families = {
        line.split()[2] for line in text.splitlines()
        if line.startswith("# TYPE")
    }
    for family in (
        "repro_service_requests_total",
        "repro_service_request_latency_seconds",
        "repro_cache_hits_total",
    ):
        assert family in families, f"missing metric family {family}"
    print(
        f"metrics endpoint ok: {len(families)} families, "
        f"{requests_total:.0f} requests scraped mid-run"
    )


def write_sample_trace(path: str, pairs) -> None:
    """One traced in-process request -> a span-tree JSONL artifact."""
    from repro.api import CompareOptions, CompareRequest
    from repro.obs.render import render_trace_file
    from repro.session import Session

    options = CompareOptions(trace_out=path)
    with Session(options) as session:
        session.run(CompareRequest.from_pairs(pairs, options))
        trace_id = session.last_trace.trace_id
    with open(path, encoding="utf-8") as fh:
        rendered = render_trace_file(fh)
    assert trace_id in rendered, "trace file must render its span tree"
    print(f"sample trace {trace_id} -> {path}")


def main() -> None:
    set_a, set_b = generate_tile_pair(
        seed=9, nuclei=150, width=384, height=384
    )
    pairs = mbr_pair_join(set_a, set_b).pairs(set_a, set_b)
    chunks = [
        pairs[i * PAIRS_PER_REQUEST : (i + 1) * PAIRS_PER_REQUEST]
        for i in range(CLIENTS)
    ]
    assert all(len(c) == PAIRS_PER_REQUEST for c in chunks), "tile too small"

    proc, host, port, mhost, mport = start_server()
    print(
        f"server up on {host}:{port}, metrics on {mhost}:{mport} "
        f"(pid {proc.pid})"
    )
    shutdown_sent = False
    try:
        def drive_round() -> dict[int, dict]:
            results: dict[int, dict] = {}

            def drive(i: int) -> None:
                with ServiceClient(host, port) as client:
                    results[i] = client.compare(chunks[i])

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(results) == CLIENTS, "a client did not finish"
            return results

        cold = drive_round()
        reference = get_backend("batch")
        for i, chunk in enumerate(chunks):
            want = reference.compare_pairs(chunk)
            assert np.array_equal(cold[i]["intersection"], want.intersection)
            assert np.array_equal(cold[i]["union"], want.union)
        print(f"{CLIENTS} concurrent requests answered bit-for-bit correctly")

        # The same traffic again: the server runs with --cache, so this
        # round must be served from the request cache — and be
        # indistinguishable from the cold answers.
        warm = drive_round()
        for i in range(CLIENTS):
            for field in ("intersection", "union", "area_p", "area_q"):
                assert np.array_equal(cold[i][field], warm[i][field]), (
                    f"warm request {i} diverged from its cold answer"
                )

        # Mid-run (server still up, counters warm): the Prometheus
        # endpoint must serve valid exposition with nonzero traffic.
        check_metrics_endpoint(mhost, mport)

        with ServiceClient(host, port) as client:
            stats = client.stats()
            print(
                f"service metrics: requests={stats['requests']} "
                f"batches={stats['batches']} "
                f"occupancy={stats['mean_batch_requests']:.1f} req/batch "
                f"p99={stats['p99_ms']:.1f}ms"
            )
            hits = stats["request_cache_hits"]
            print(
                f"request cache: hits={hits} "
                f"misses={stats['request_cache_misses']} "
                f"tiers={sorted(stats['caches'])}"
            )
            assert hits >= CLIENTS, (
                f"warm round expected >= {CLIENTS} request-cache hits, "
                f"got {hits}"
            )
            client.shutdown()
            shutdown_sent = True
    finally:
        if shutdown_sent:
            code = proc.wait(timeout=60)
        else:
            # A failure above never asked the server to stop: kill it so
            # the original assertion error surfaces instead of a hang.
            proc.terminate()
            proc.wait(timeout=10)
    assert code == 0, f"server exited with {code}"
    print("clean shutdown: exit code 0")

    trace_out = sys.argv[1] if len(sys.argv) > 1 else None
    if trace_out:
        write_sample_trace(trace_out, pairs[:PAIRS_PER_REQUEST])


if __name__ == "__main__":
    main()
