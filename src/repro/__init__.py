"""repro — reproduction of "Accelerating Pathology Image Data
Cross-Comparison on CPU-GPU Hybrid Systems" (PixelBox / SCCG, VLDB 2012).

Public API tour
---------------
* :mod:`repro.api` — the session-centric front door (:class:`Session`,
  :class:`CompareRequest`, :func:`explain`).
* :mod:`repro.geometry` — rectilinear polygons on the pixel grid.
* :mod:`repro.exact` — exact vector overlay (the GEOS/PostGIS stand-in).
* :mod:`repro.pixelbox` — the paper's PixelBox algorithm (all variants).
* :mod:`repro.gpu` — SIMT GPU simulator used for architecture experiments.
* :mod:`repro.index` — Hilbert R-tree and the MBR pair join.
* :mod:`repro.sdbms` — mini spatial DBMS with per-operator profiling.
* :mod:`repro.io` / :mod:`repro.data` — polygon files and synthetic slides.
* :mod:`repro.pipeline` — the SCCG pipelined framework + task migration.
* :mod:`repro.backends` — interchangeable execution backends (registry).
* :mod:`repro.service` / :mod:`repro.cluster` — async serving + sharding.
* :mod:`repro.metrics` — Jaccard similarity of polygon sets.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------
>>> from repro import Session
>>> from repro.data import generate_tile_pair
>>> with Session() as session:
...     result = session.compare_sets(*generate_tile_pair(seed=7))
>>> 0.0 < result.jaccard_mean <= 1.0
True
"""

from repro._version import __version__
from repro.geometry import Box, RectilinearPolygon

__all__ = [
    "__version__",
    "Box",
    "RectilinearPolygon",
    "Session",
    "CompareOptions",
    "CompareRequest",
    "CompareResult",
    "PairOutcome",
    "ResolvedPlan",
    "explain",
    "cross_compare",
    "cross_compare_files",
    "CrossCompareResult",
    "ComparisonService",
    "ServiceConfig",
]

_API_NAMES = {
    "Session",
    "CompareOptions",
    "CompareRequest",
    "CompareResult",
    "PairOutcome",
    "ResolvedPlan",
    "explain",
    "cross_compare",
    "cross_compare_files",
    "CrossCompareResult",
    "ComparisonService",
    "ServiceConfig",
}


def __getattr__(name: str):
    """Load the high-level API lazily.

    ``repro.api`` pulls in the pipeline and kernel packages; deferring the
    import keeps ``import repro`` cheap for users who only need geometry.
    """
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
