"""High-level SCCG API: cross-compare polygon sets or result directories.

This is the library's front door.  :func:`cross_compare` works on
in-memory polygon lists (one tile); :func:`cross_compare_files` drives the
full pipeline — parse, index, filter, aggregate — over two on-disk result
sets, the way the paper's system consumes a whole image.  For *serving*
many concurrent comparison requests from one warm executor, the async
:class:`ComparisonService` (re-exported from :mod:`repro.service`) is
the entry point — it owns the backend pool, admission control, and
request coalescing behind ``await service.submit(pairs)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.geometry.polygon import RectilinearPolygon
from repro.metrics.jaccard import PairwiseJaccard, jaccard_pairwise
from repro.pixelbox.common import LaunchConfig
from repro.service.core import ComparisonService, ServiceConfig

__all__ = [
    "CrossCompareResult",
    "cross_compare",
    "cross_compare_files",
    "ComparisonService",
    "ServiceConfig",
]


@dataclass(frozen=True, slots=True)
class CrossCompareResult:
    """Outcome of a cross-comparison run."""

    jaccard_mean: float
    intersecting_pairs: int
    candidate_pairs: int
    missing_a: int
    missing_b: int
    count_a: int
    count_b: int
    tiles: int = 1

    @classmethod
    def from_pairwise(
        cls, pw: PairwiseJaccard, tiles: int = 1
    ) -> "CrossCompareResult":
        """Wrap a metrics-layer result."""
        return cls(
            jaccard_mean=pw.mean_ratio,
            intersecting_pairs=pw.intersecting_pairs,
            candidate_pairs=pw.candidate_pairs,
            missing_a=pw.missing_a,
            missing_b=pw.missing_b,
            count_a=pw.count_a,
            count_b=pw.count_b,
            tiles=tiles,
        )

    def __str__(self) -> str:
        return (
            f"J'={self.jaccard_mean:.4f} ({self.intersecting_pairs} pairs, "
            f"{self.tiles} tile(s); {self.count_a} vs {self.count_b} "
            f"polygons; missing {self.missing_a}/{self.missing_b})"
        )


def cross_compare(
    set_a: list[RectilinearPolygon],
    set_b: list[RectilinearPolygon],
    config: LaunchConfig | None = None,
    backend: str = "batch",
) -> CrossCompareResult:
    """Cross-compare two in-memory polygon sets (one tile's results).

    ``backend`` selects the execution backend from the
    :mod:`repro.backends` registry; every backend returns identical
    results, so the choice is purely a performance knob.
    """
    return CrossCompareResult.from_pairwise(
        jaccard_pairwise(set_a, set_b, config, backend=backend)
    )


def cross_compare_files(
    dir_a: str | Path,
    dir_b: str | Path,
    config: LaunchConfig | None = None,
    parser_workers: int = 2,
    backend: str = "batch",
) -> CrossCompareResult:
    """Cross-compare two on-disk result sets with the SCCG pipeline.

    Parameters
    ----------
    dir_a, dir_b:
        Result-set directories in the :mod:`repro.io.tiles` layout.
    config:
        Kernel launch configuration for the aggregator.
    parser_workers:
        Worker threads for the parser stage.
    backend:
        Execution backend the aggregator dispatches through
        (:mod:`repro.backends` registry name).
    """
    from repro.pipeline.engine import PipelineOptions, run_pipelined

    options = PipelineOptions(
        parser_workers=parser_workers,
        launch_config=config or LaunchConfig(),
        backend=backend,
    )
    outcome = run_pipelined(dir_a, dir_b, options)
    return CrossCompareResult(
        jaccard_mean=outcome.jaccard_mean,
        intersecting_pairs=outcome.intersecting_pairs,
        candidate_pairs=outcome.candidate_pairs,
        missing_a=outcome.missing_a,
        missing_b=outcome.missing_b,
        count_a=outcome.count_a,
        count_b=outcome.count_b,
        tiles=outcome.tiles,
    )
