"""High-level SCCG API: one declarative request spec behind every door.

The library's front door is session-centric:

* :class:`repro.session.Session` (re-exported here) owns one warm
  executor and serves every comparison shape — explicit pairs, two
  polygon sets, two on-disk result directories, incremental streams,
  async submission;
* :class:`CompareOptions` is the single typed, serializable record of
  every knob (backend + options, cluster hosts, cost profile, kernel
  launch parameters, pipeline shape) with one set of defaults;
* :class:`CompareRequest` is the declarative spec the CLI
  (``repro compare``), the service wire protocol (``repro serve``), and
  the library all parse into — identical spec, identical results;
* :func:`explain` resolves a request into its execution plan (chosen
  backend, cost-model sizing, capability report) without executing it.

For serving many concurrent requests from one warm executor with
admission control and request coalescing, the async
:class:`ComparisonService` (re-exported from :mod:`repro.service`)
remains the entry point.

The pre-session functions ``cross_compare`` / ``cross_compare_files``
live on as deprecation shims with bit-for-bit identical results (see
:mod:`repro.api.legacy`).
"""

from __future__ import annotations

from repro.api.legacy import (
    CrossCompareResult,
    cross_compare,
    cross_compare_files,
)
from repro.api.options import DEFAULT_OPTIONS, CompareOptions
from repro.api.plan import ResolvedPlan, explain
from repro.api.request import (
    CompareRequest,
    request_from_cli,
    request_from_wire,
)
from repro.api.result import CompareResult, PairOutcome
from repro.session import Session

__all__ = [
    "Session",
    "CompareOptions",
    "DEFAULT_OPTIONS",
    "CompareRequest",
    "CompareResult",
    "PairOutcome",
    "ResolvedPlan",
    "explain",
    "request_from_cli",
    "request_from_wire",
    "CrossCompareResult",
    "cross_compare",
    "cross_compare_files",
    "ComparisonService",
    "ServiceConfig",
]

_SERVICE_NAMES = {"ComparisonService", "ServiceConfig"}


def __getattr__(name: str):
    """Load the service layer lazily.

    The service imports the backend and kernel packages eagerly;
    deferring keeps ``import repro.api`` cheap — and breaks the import
    cycle with :mod:`repro.service.server`, which parses wire requests
    through :func:`repro.api.request.request_from_wire`.
    """
    if name in _SERVICE_NAMES:
        from repro.service import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
