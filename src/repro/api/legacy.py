"""Deprecated front-door functions, kept as shims over :class:`Session`.

``cross_compare`` and ``cross_compare_files`` predate the session-centric
API.  They now parse their arguments into the same
:class:`~repro.api.request.CompareRequest` every other front door uses
and execute it on a throwaway :class:`~repro.session.Session` — results
are bit-for-bit identical to the old implementations (and to every other
entry point), which ``tests/test_session.py`` pins.

Migration::

    # old                                   # new
    cross_compare(a, b, backend="auto")     Session(backend="auto").compare_sets(a, b)
    cross_compare_files(da, db)             Session().compare_files(da, db)

Both emit :class:`DeprecationWarning`; they will keep working for the
foreseeable future but new code should hold a :class:`repro.Session`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.api.options import CompareOptions
from repro.api.result import CompareResult
from repro.geometry.polygon import RectilinearPolygon
from repro.metrics.jaccard import PairwiseJaccard
from repro.pixelbox.common import LaunchConfig

__all__ = ["CrossCompareResult", "cross_compare", "cross_compare_files"]


@dataclass(frozen=True, slots=True)
class CrossCompareResult:
    """Outcome of a cross-comparison run (legacy result shape).

    New code should use :class:`repro.api.result.CompareResult`, which
    additionally carries the run's performance accounting.
    """

    jaccard_mean: float
    intersecting_pairs: int
    candidate_pairs: int
    missing_a: int
    missing_b: int
    count_a: int
    count_b: int
    tiles: int = 1

    @classmethod
    def from_pairwise(
        cls, pw: PairwiseJaccard, tiles: int = 1
    ) -> "CrossCompareResult":
        """Wrap a metrics-layer result."""
        return cls(
            jaccard_mean=pw.mean_ratio,
            intersecting_pairs=pw.intersecting_pairs,
            candidate_pairs=pw.candidate_pairs,
            missing_a=pw.missing_a,
            missing_b=pw.missing_b,
            count_a=pw.count_a,
            count_b=pw.count_b,
            tiles=tiles,
        )

    @classmethod
    def _from_result(cls, result: CompareResult) -> "CrossCompareResult":
        return cls(
            jaccard_mean=result.jaccard_mean,
            intersecting_pairs=result.intersecting_pairs,
            candidate_pairs=result.candidate_pairs,
            missing_a=result.missing_a,
            missing_b=result.missing_b,
            count_a=result.count_a,
            count_b=result.count_b,
            tiles=result.tiles,
        )

    def __str__(self) -> str:
        return (
            f"J'={self.jaccard_mean:.4f} ({self.intersecting_pairs} pairs, "
            f"{self.tiles} tile(s); {self.count_a} vs {self.count_b} "
            f"polygons; missing {self.missing_a}/{self.missing_b})"
        )


def _options_from_legacy(
    config: LaunchConfig | None, backend: str, **extra
) -> CompareOptions:
    """Map a legacy ``(config, backend)`` signature onto the one spec."""
    launch = {}
    if config is not None:
        launch = {
            "block_size": config.block_size,
            "pixel_threshold": config.pixel_threshold,
            "tight_mbr": config.tight_mbr,
            "leaf_mode": config.leaf_mode,
        }
    return CompareOptions(backend=backend, **launch, **extra)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.Session)",
        DeprecationWarning,
        stacklevel=3,
    )


def cross_compare(
    set_a: list[RectilinearPolygon],
    set_b: list[RectilinearPolygon],
    config: LaunchConfig | None = None,
    backend: str = "batch",
) -> CrossCompareResult:
    """Deprecated: use :meth:`repro.Session.compare_sets`.

    Cross-compare two in-memory polygon sets (one tile's results);
    results are bit-for-bit identical to the session API.
    """
    from repro.session import Session

    _deprecated("cross_compare()", "Session.compare_sets()")
    with Session(_options_from_legacy(config, backend)) as session:
        return CrossCompareResult._from_result(
            session.compare_sets(set_a, set_b)
        )


def cross_compare_files(
    dir_a: str | Path,
    dir_b: str | Path,
    config: LaunchConfig | None = None,
    parser_workers: int = 2,
    backend: str = "batch",
) -> CrossCompareResult:
    """Deprecated: use :meth:`repro.Session.compare_files`.

    Cross-compare two on-disk result sets with the SCCG pipeline.  Now
    routed through :class:`CompareOptions`, so the pipeline knobs this
    shim's old implementation silently dropped (``buffer_capacity``,
    ``batch_pairs``, ``migration``) follow the one shared default, and
    ``tight_mbr`` matches the pipeline's production policy.
    """
    from repro.session import Session

    _deprecated("cross_compare_files()", "Session.compare_files()")
    options = _options_from_legacy(
        config, backend, parser_workers=parser_workers
    )
    with Session(options) as session:
        return CrossCompareResult._from_result(
            session.compare_files(dir_a, dir_b)
        )
