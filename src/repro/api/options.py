"""One typed, serializable options record for every front door.

Before this module existed the one logical operation — cross-compare two
spatial result sets — was configured through four drifting surfaces:
``LaunchConfig`` (kernel launch), ``PipelineOptions`` (file pipeline),
``ServiceConfig`` (serving), and ad-hoc backend-option dicts plus
``REPRO_*`` environment variables.  The drift was real:
``api.cross_compare_files`` defaulted ``LaunchConfig()`` while the
pipeline defaulted ``tight_mbr=True``, and it silently dropped the
``buffer_capacity`` / ``batch_pairs`` / ``migration`` knobs entirely.

:class:`CompareOptions` is now the single place those knobs live, with a
single set of defaults.  The CLI, the service wire protocol, and the
library all parse into it; the legacy config objects are *derived* from
it (:meth:`CompareOptions.launch_config`,
:meth:`CompareOptions.pipeline_options`), never the other way around.
Every field is a JSON-able scalar or mapping, so a request spec can
travel over a wire, live in a file, and round-trip bit-for-bit
(:meth:`to_dict` / :meth:`from_dict`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.errors import RequestError
from repro.pixelbox.common import DEFAULT_BLOCK_SIZE, LaunchConfig

__all__ = ["CompareOptions", "DEFAULT_OPTIONS"]


def _frozen_mapping(value: Mapping[str, Any] | None) -> Mapping[str, Any]:
    if value is None:
        return MappingProxyType({})
    if not isinstance(value, Mapping):
        raise RequestError(
            f"backend_options must be a mapping, got {type(value).__name__}"
        )
    return MappingProxyType(dict(value))


@dataclass(frozen=True)
class CompareOptions:
    """Every knob of one cross-comparison, in one typed place.

    Attributes
    ----------
    backend:
        Execution backend registry name (``repro backends``).  ``"auto"``
        defers the choice to the cycle cost model at dispatch time.
    backend_options:
        Keyword arguments for the backend factory (e.g.
        ``{"workers": 4}`` for the multiprocess pool).
    hosts:
        Worker addresses for the ``cluster`` backend
        (``"host:port,host:port"``).  ``None`` falls back to
        ``REPRO_CLUSTER_HOSTS`` and then to self-hosted loopback workers.
    cost_profile:
        Path of a calibration profile written by ``repro calibrate``;
        ``None`` uses ``REPRO_COST_PROFILE`` or the modeled constants.
    block_size, pixel_threshold, tight_mbr, leaf_mode:
        Kernel launch parameters (see
        :class:`repro.pixelbox.common.LaunchConfig`).  The defaults here
        are **the** defaults: ``tight_mbr=True`` is the production
        pipeline's policy, and now every front door shares it (results
        are exact either way — this is purely a performance knob).
    parser_workers, buffer_capacity, batch_pairs:
        File-pipeline shape (worker threads for the parser stage,
        bounded-buffer capacity, pairs per aggregator batch).  Ignored
        for in-memory comparisons.
    migration:
        Enable dynamic CPU/GPU task migration for file comparisons
        (paper §4.2).  Off by default, matching the old library default.
    cache:
        Enable the content-addressed result cache: a front-door request
        cache in :class:`~repro.session.Session` /
        :class:`~repro.service.ComparisonService`, plus the coordinator-
        and shard-level caches of backends that have them (cluster,
        multiprocess).  Cached hits are bit-for-bit identical to cold
        computations — areas *and* work counters — so this is purely a
        latency knob.  Off by default.
    cache_bytes:
        Byte budget of each enabled cache tier (LRU eviction past it).
    trace:
        Enable request-scoped tracing: the session runs the request
        under a :class:`repro.obs.Tracer`, every tier contributes spans
        (session -> backend -> shard dispatch -> remote worker kernel),
        and the result carries the trace id.  Off by default — the off
        path adds zero allocations to the kernel hot loop.
    trace_out:
        Path of a JSON-lines sink for span records and lifecycle
        events (``repro compare --trace-out``).  Setting it implies
        ``trace=True``.
    """

    # -- execution substrate -------------------------------------------
    backend: str = "batch"
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    hosts: str | None = None
    cost_profile: str | None = None
    # -- kernel launch (the one set of defaults) -----------------------
    block_size: int = DEFAULT_BLOCK_SIZE
    pixel_threshold: int | None = None
    tight_mbr: bool = True
    leaf_mode: str = "scan"
    # -- file pipeline -------------------------------------------------
    parser_workers: int = 2
    buffer_capacity: int = 8
    batch_pairs: int = 4096
    migration: bool = False
    # -- result caching ------------------------------------------------
    cache: bool = False
    cache_bytes: int = 64 * 2**20
    # -- observability --------------------------------------------------
    trace: bool = False
    trace_out: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "backend_options", _frozen_mapping(self.backend_options)
        )
        if not self.backend or not isinstance(self.backend, str):
            raise RequestError(f"backend must be a name, got {self.backend!r}")
        # Validate the launch parameters eagerly with the authoritative
        # validator — a bad block size must fail when the spec is built,
        # not when a worker thread finally launches a kernel.
        try:
            self.launch_config()
        except Exception as exc:
            raise RequestError(f"invalid launch parameters: {exc}") from exc
        if self.parser_workers < 1:
            raise RequestError(
                f"parser_workers must be >= 1, got {self.parser_workers}"
            )
        if self.buffer_capacity < 1:
            raise RequestError(
                f"buffer_capacity must be >= 1, got {self.buffer_capacity}"
            )
        if self.batch_pairs < 1:
            raise RequestError(
                f"batch_pairs must be >= 1, got {self.batch_pairs}"
            )
        if self.cache_bytes < 1:
            raise RequestError(
                f"cache_bytes must be >= 1, got {self.cache_bytes}"
            )
        if self.trace_out is not None and not self.trace:
            object.__setattr__(self, "trace", True)

    # ------------------------------------------------------------------
    # Derived legacy config objects
    # ------------------------------------------------------------------
    def launch_config(self) -> LaunchConfig:
        """The kernel :class:`LaunchConfig` this spec resolves to."""
        return LaunchConfig(
            block_size=self.block_size,
            pixel_threshold=self.pixel_threshold,
            tight_mbr=self.tight_mbr,
            leaf_mode=self.leaf_mode,
        )

    def resolved_backend_options(self) -> dict[str, Any]:
        """Factory kwargs with hosts and cache budgets folded in."""
        options = dict(self.backend_options)
        if self.hosts is not None:
            if self.backend not in ("cluster",):
                raise RequestError(
                    f"hosts={self.hosts!r} requires backend 'cluster', "
                    f"got {self.backend!r}"
                )
            options.setdefault("hosts", self.hosts)
        if self.cache:
            # One knob, every tier: backends with their own cache layers
            # get the same byte budget the front door uses.
            if self.backend == "cluster":
                options.setdefault("shard_cache_bytes", self.cache_bytes)
                options.setdefault("merge_cache_bytes", self.cache_bytes)
            elif self.backend == "multiprocess":
                options.setdefault("result_cache_bytes", self.cache_bytes)
        return options

    def pipeline_options(self, devices=None):
        """The :class:`~repro.pipeline.engine.PipelineOptions` equivalent.

        Unlike the old ``cross_compare_files`` plumbing, *every* pipeline
        knob of this spec is honored — ``buffer_capacity``,
        ``batch_pairs``, and ``migration`` included.
        """
        from repro.pipeline.engine import PipelineOptions
        from repro.pipeline.migration import MigrationConfig

        return PipelineOptions(
            parser_workers=self.parser_workers,
            buffer_capacity=self.buffer_capacity,
            batch_pairs=self.batch_pairs,
            launch_config=self.launch_config(),
            devices=devices,
            migration=MigrationConfig() if self.migration else None,
            backend=self.backend,
            backend_options=self.resolved_backend_options(),
        )

    def replace(self, **changes) -> "CompareOptions":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able mapping; defaults are omitted so specs stay small."""
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "backend_options":
                value = dict(value)
                if not value:
                    continue
            elif f.default is not dataclasses.MISSING and value == f.default:
                continue
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any] | None) -> "CompareOptions":
        """Parse a mapping produced by :meth:`to_dict` (or hand-written)."""
        if raw is None:
            return cls()
        if not isinstance(raw, Mapping):
            raise RequestError(
                f"options must be a mapping, got {type(raw).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise RequestError(
                f"unknown option fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return cls(**dict(raw))


#: The library-wide defaults, as one shared immutable instance.
DEFAULT_OPTIONS = CompareOptions()
