"""``explain()``: the resolved execution plan, without executing.

Given a :class:`~repro.api.request.CompareRequest`, :func:`explain`
reports everything the execution layer *would* decide — the chosen
backend (including the cost model's pick when the spec says ``auto``),
its structured capabilities, the effective launch parameters, the
coalescing and shard sizing the cost model recommends, the cluster host
resolution, and whether a calibration profile is active — as one
serializable :class:`ResolvedPlan`.

Nothing is executed: no kernel runs, no worker process forks, no socket
connects.  Backends are instantiated only to read their capability
report (construction is lazy by contract — pools and connections are
created on first dispatch, which ``explain`` never performs) and are
closed again before returning.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.api.options import CompareOptions
from repro.api.request import CompareRequest
from repro.errors import ReproError

__all__ = ["ResolvedPlan", "explain"]


@dataclass(frozen=True, slots=True)
class ResolvedPlan:
    """What one request resolves to, before any work happens.

    Attributes
    ----------
    kind:
        Request payload kind (``pairs`` / ``sets`` / ``files``).
    backend:
        Backend named by the spec (possibly ``"auto"``).
    resolved_backend:
        Concrete executor after cost-model dispatch; equals ``backend``
        unless the spec said ``auto`` and the workload could be profiled.
    capabilities:
        Structured capability report of the resolved backend.
    launch:
        Effective kernel launch parameters.
    n_pairs, mean_edges, mean_mbr_pixels:
        Workload profile (``None`` for file requests, whose pairs are
        not known until the pipeline's filter stage runs).
    tiles:
        Tile-pair count for file requests (``None`` otherwise).
    coalesce_pairs:
        Cost-model pair budget for one coalesced service dispatch.
    shard_pairs:
        Cost-model pairs per shard for pooled/remote executors
        (``None`` when the resolved backend does not shard).
    hosts:
        Resolved cluster worker addresses (``["loopback"]`` when the
        cluster backend would self-host).
    calibration:
        Provenance of the active cost profile (``"modeled"`` when none).
    migration:
        Whether the file pipeline would run task migration.
    cache:
        Resolved result-cache configuration: ``enabled``, the byte
        budget, the request-cache key this request resolves to, and
        ``would_hit`` — whether a run against the consulted store would
        be served from cache (``None`` when no store was available to
        consult, e.g. module-level ``explain`` outside a session).
    trace:
        Resolved observability configuration: whether request-scoped
        tracing is ``enabled`` and the ``trace_out`` JSONL sink path
        (``None`` for ring-buffer-only tracing).
    notes:
        Human-readable capability-check observations (non-fatal).
    """

    kind: str
    backend: str
    resolved_backend: str
    capabilities: dict[str, Any]
    launch: dict[str, Any]
    n_pairs: int | None = None
    mean_edges: float | None = None
    mean_mbr_pixels: float | None = None
    tiles: int | None = None
    coalesce_pairs: int | None = None
    shard_pairs: int | None = None
    hosts: tuple[str, ...] = ()
    calibration: str = "modeled"
    migration: bool = False
    cache: dict[str, Any] = field(default_factory=dict)
    trace: dict[str, Any] = field(default_factory=dict)
    notes: tuple[str, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able rendering (``repro explain`` prints this)."""
        return {
            "kind": self.kind,
            "backend": self.backend,
            "resolved_backend": self.resolved_backend,
            "capabilities": dict(self.capabilities),
            "launch": dict(self.launch),
            "workload": {
                "n_pairs": self.n_pairs,
                "mean_edges": self.mean_edges,
                "mean_mbr_pixels": self.mean_mbr_pixels,
                "tiles": self.tiles,
            },
            "sizing": {
                "coalesce_pairs": self.coalesce_pairs,
                "shard_pairs": self.shard_pairs,
            },
            "hosts": list(self.hosts),
            "calibration": self.calibration,
            "migration": self.migration,
            "cache": dict(self.cache),
            "trace": dict(self.trace),
            "notes": list(self.notes),
        }


def _profile(request: CompareRequest):
    """``(pairs, n)`` of the workload, or ``(None, None)`` for files."""
    if request.kind == "pairs":
        return list(request.pairs), len(request.pairs)
    if request.kind == "sets":
        from repro.index.join import mbr_pair_join

        join = mbr_pair_join(list(request.set_a), list(request.set_b))
        pairs = join.pairs(list(request.set_a), list(request.set_b))
        return pairs, len(pairs)
    return None, None


def _resolve_calibration(options: CompareOptions) -> tuple[object, str]:
    from repro.gpu.cost import active_calibration, load_calibration

    if options.cost_profile is not None:
        cal = load_calibration(options.cost_profile)
        return cal, cal.source
    cal = active_calibration()
    return cal, (cal.source if cal is not None else "modeled")


def _resolve_hosts(options: CompareOptions) -> tuple[tuple[str, ...], bool]:
    """``(addresses, explicit)`` the cluster backend would use."""
    from repro.cluster.coordinator import parse_hosts

    hosts = options.hosts
    if hosts is None:
        hosts = os.environ.get("REPRO_CLUSTER_HOSTS") or None
    if hosts is None:
        return ("loopback",), False
    return (
        tuple(f"{h}:{p}" for h, p in parse_hosts(hosts)),
        True,
    )


def _resolve_cache(request: CompareRequest, cal, request_cache) -> dict[str, Any]:
    """The plan's cache section — key and hit prediction included.

    Uses the same key derivation as ``Session._run_pairs`` (canonical
    request JSON + calibration fingerprint), so a ``would_hit: true``
    plan and a cached answer can never disagree about identity.
    """
    options = request.options
    info: dict[str, Any] = {
        "enabled": options.cache,
        "cache_bytes": options.cache_bytes if options.cache else None,
        "request_key": None,
        "would_hit": None,
    }
    if not options.cache or request.kind == "files":
        # File requests are path-addressed, not content-addressed:
        # the payload can change under an unchanged request, so the
        # request tier never caches them.
        return info
    from repro.cache import calibration_fingerprint, request_key

    key = request_key(request, extra=(calibration_fingerprint(cal),))
    info["request_key"] = key
    if request_cache is not None:
        info["would_hit"] = request_cache.contains(key)
    return info


def explain(request: CompareRequest, request_cache=None) -> ResolvedPlan:
    """Resolve ``request`` into its execution plan without executing it.

    Raises :class:`~repro.errors.ReproError` subclasses for specs the
    execution layer would reject (unknown backend, options the factory
    refuses, malformed host lists) — ``explain`` is the cheap way to
    validate a request before committing resources to it.

    ``request_cache`` is the request-cache store to answer ``would_hit``
    against (:meth:`repro.Session.explain` passes its own); with none,
    the plan's ``would_hit`` is ``None``.
    """
    from repro.backends import get_backend
    from repro.gpu.cost import (
        recommend_backend,
        recommend_batch_pairs,
        recommend_shard_pairs,
    )

    options = request.options
    cal, cal_source = _resolve_calibration(options)
    cfg = options.launch_config()
    notes: list[str] = []

    pairs, n_pairs = _profile(request)
    mean_edges = mean_pixels = None
    if pairs is not None:
        from repro.backends.auto import profile_pairs

        mean_edges, mean_pixels = profile_pairs(pairs)

    # Capability check: instantiate (lazily — no pools, no sockets),
    # read the report, release.  A bad backend name or rejected option
    # fails here with the registry's named error.
    backend = get_backend(options.backend, **options.resolved_backend_options())
    try:
        caps = backend.capabilities()
        workers = caps.max_workers
    finally:
        backend.close()

    resolved = options.backend
    if options.backend == "auto" and pairs is not None:
        resolved = recommend_backend(
            n_pairs,
            mean_edges,
            mean_pixels,
            cfg.threshold,
            cfg.block_size,
            workers=workers,
            calibration=cal,
        )
    elif options.backend == "auto":
        notes.append(
            "auto dispatch resolves per batch once the pipeline's filter "
            "stage produces pairs"
        )

    resolved_caps = caps
    if resolved != options.backend:
        # Mirror AutoBackend._delegate: the auto dispatcher forwards its
        # worker count to a multiprocess delegate, so the plan must
        # report that sizing, not a default-constructed instance's.
        delegate_options = (
            {"workers": workers} if resolved == "multiprocess" else {}
        )
        delegate = get_backend(resolved, **delegate_options)
        try:
            resolved_caps = delegate.capabilities()
        finally:
            delegate.close()

    coalesce = shard = None
    if pairs is not None and mean_edges is not None:
        coalesce = recommend_batch_pairs(
            mean_edges, mean_pixels, cfg.threshold, cfg.block_size,
            calibration=cal,
        )
        if resolved in ("multiprocess", "cluster"):
            substrate = options.backend_options.get("substrate", "numpy")
            shard = recommend_shard_pairs(
                n_pairs,
                mean_edges,
                mean_pixels,
                cfg.threshold,
                cfg.block_size,
                workers=max(1, workers),
                calibration=cal,
                substrate=substrate,
            )

    hosts: tuple[str, ...] = ()
    if options.backend == "cluster" or resolved == "cluster":
        hosts, explicit = _resolve_hosts(options)
        if not explicit:
            notes.append(
                "no cluster hosts configured: self-hosted loopback workers"
            )

    tiles = None
    if request.kind == "files":
        from repro.io.tiles import pair_result_sets

        try:
            tiles = len(pair_result_sets(request.dir_a, request.dir_b))
        except ReproError as exc:
            notes.append(f"result sets not pairable yet: {exc}")

    if not caps.configurable_workers and "workers" in options.backend_options:
        notes.append(
            f"backend {options.backend!r} ignores the workers option"
        )

    return ResolvedPlan(
        kind=request.kind,
        backend=options.backend,
        resolved_backend=resolved,
        capabilities=resolved_caps.as_dict(),
        launch={
            "block_size": cfg.block_size,
            "pixel_threshold": cfg.pixel_threshold,
            "effective_threshold": cfg.threshold,
            "tight_mbr": cfg.tight_mbr,
            "leaf_mode": cfg.leaf_mode,
        },
        n_pairs=n_pairs,
        mean_edges=mean_edges,
        mean_mbr_pixels=mean_pixels,
        tiles=tiles,
        coalesce_pairs=coalesce,
        shard_pairs=shard,
        hosts=hosts,
        calibration=cal_source,
        migration=options.migration,
        cache=_resolve_cache(request, cal, request_cache),
        trace={"enabled": options.trace, "trace_out": options.trace_out},
        notes=tuple(notes),
    )
