"""The declarative comparison request: *what* to compare, plus options.

A :class:`CompareRequest` is the one spec every front door produces:

* the CLI (``repro compare A B --backend cluster``) parses its flags
  into one (:func:`request_from_cli`);
* the service's JSON-lines protocol decodes each ``compare`` line into
  one (:func:`request_from_wire`);
* the library builds one from keyword arguments
  (:meth:`repro.Session.compare_files` and friends).

The payload comes in three kinds — an explicit pair list (``pairs``),
two polygon sets to join and compare (``sets``), or two on-disk result
directories to run the full pipeline over (``files``) — and the request
is fully serializable (:meth:`CompareRequest.to_dict` /
:meth:`CompareRequest.from_dict`, polygons as WKT), so the exact same
spec object can be logged, replayed, shipped to ``repro explain``, or
posted to a running service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.api.options import CompareOptions
from repro.errors import RequestError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.wkt import polygon_from_wkt, polygon_to_wkt

__all__ = [
    "CompareRequest",
    "request_from_cli",
    "request_from_wire",
]

Pair = tuple[RectilinearPolygon, RectilinearPolygon]

_KINDS = ("pairs", "sets", "files")


def _as_pairs(raw: Sequence) -> tuple[Pair, ...]:
    pairs: list[Pair] = []
    for item in raw:
        if not isinstance(item, (tuple, list)) or len(item) != 2:
            raise RequestError("each pair must be a (polygon, polygon) 2-tuple")
        p, q = item
        if not isinstance(p, RectilinearPolygon) or not isinstance(
            q, RectilinearPolygon
        ):
            raise RequestError(
                "pairs must contain RectilinearPolygon objects "
                "(parse WKT with repro.geometry.wkt first)"
            )
        pairs.append((p, q))
    return tuple(pairs)


def _as_set(raw: Sequence, side: str) -> tuple[RectilinearPolygon, ...]:
    polys = tuple(raw)
    for poly in polys:
        if not isinstance(poly, RectilinearPolygon):
            raise RequestError(
                f"set_{side} must contain RectilinearPolygon objects"
            )
    return polys


@dataclass(frozen=True)
class CompareRequest:
    """One cross-comparison, fully specified and serializable.

    Exactly one payload is set, reported by :attr:`kind`:

    ``"pairs"``
        :attr:`pairs` — explicit candidate pairs, compared as given.
    ``"sets"``
        :attr:`set_a` / :attr:`set_b` — two polygon sets; the MBR join
        picks the candidate pairs (one tile's cross-comparison).
    ``"files"``
        :attr:`dir_a` / :attr:`dir_b` — two result-set directories; the
        full SCCG pipeline (parse, index, filter, aggregate) runs over
        every tile pair.

    Build one with :meth:`from_pairs` / :meth:`from_sets` /
    :meth:`from_files` rather than the raw constructor.
    """

    pairs: tuple[Pair, ...] | None = None
    set_a: tuple[RectilinearPolygon, ...] | None = None
    set_b: tuple[RectilinearPolygon, ...] | None = None
    dir_a: str | None = None
    dir_b: str | None = None
    options: CompareOptions = CompareOptions()

    def __post_init__(self) -> None:
        has_pairs = self.pairs is not None
        has_sets = self.set_a is not None or self.set_b is not None
        has_files = self.dir_a is not None or self.dir_b is not None
        if sum((has_pairs, has_sets, has_files)) != 1:
            raise RequestError(
                "exactly one payload required: pairs, (set_a, set_b), "
                "or (dir_a, dir_b)"
            )
        if has_sets and (self.set_a is None or self.set_b is None):
            raise RequestError("sets requests need both set_a and set_b")
        if has_files and (self.dir_a is None or self.dir_b is None):
            raise RequestError("files requests need both dir_a and dir_b")
        if not isinstance(self.options, CompareOptions):
            raise RequestError(
                f"options must be CompareOptions, got "
                f"{type(self.options).__name__}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls, pairs: Sequence[Pair], options: CompareOptions | None = None
    ) -> "CompareRequest":
        """Request over explicit candidate pairs."""
        return cls(
            pairs=_as_pairs(pairs), options=options or CompareOptions()
        )

    @classmethod
    def from_sets(
        cls,
        set_a: Sequence[RectilinearPolygon],
        set_b: Sequence[RectilinearPolygon],
        options: CompareOptions | None = None,
    ) -> "CompareRequest":
        """Request over two in-memory polygon sets (one tile)."""
        return cls(
            set_a=_as_set(set_a, "a"),
            set_b=_as_set(set_b, "b"),
            options=options or CompareOptions(),
        )

    @classmethod
    def from_files(
        cls,
        dir_a: str | Path,
        dir_b: str | Path,
        options: CompareOptions | None = None,
    ) -> "CompareRequest":
        """Request over two on-disk result-set directories."""
        return cls(
            dir_a=str(dir_a),
            dir_b=str(dir_b),
            options=options or CompareOptions(),
        )

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"pairs"``, ``"sets"``, or ``"files"``."""
        if self.pairs is not None:
            return "pairs"
        if self.set_a is not None:
            return "sets"
        return "files"

    def launch_config(self):
        """Shorthand for ``request.options.launch_config()``."""
        return self.options.launch_config()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able spec (polygons as WKT literals)."""
        out: dict[str, Any] = {"kind": self.kind}
        if self.pairs is not None:
            out["pairs"] = [
                [polygon_to_wkt(p), polygon_to_wkt(q)] for p, q in self.pairs
            ]
        elif self.set_a is not None:
            out["set_a"] = [polygon_to_wkt(p) for p in self.set_a]
            out["set_b"] = [polygon_to_wkt(q) for q in self.set_b]
        else:
            out["dir_a"] = self.dir_a
            out["dir_b"] = self.dir_b
        options = self.options.to_dict()
        if options:
            out["options"] = options
        return out

    def to_json(self) -> str:
        """Compact JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CompareRequest":
        """Parse a spec produced by :meth:`to_dict` (or hand-written)."""
        if not isinstance(raw, Mapping):
            raise RequestError(
                f"request must be a mapping, got {type(raw).__name__}"
            )
        unknown = set(raw) - {
            "kind", "pairs", "set_a", "set_b", "dir_a", "dir_b", "options"
        }
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        options = CompareOptions.from_dict(raw.get("options"))
        kind = raw.get("kind")
        if kind is not None and kind not in _KINDS:
            raise RequestError(f"unknown request kind {kind!r} ({_KINDS})")
        if "pairs" in raw:
            pairs = raw["pairs"]
            if not isinstance(pairs, Sequence) or isinstance(pairs, str):
                raise RequestError("'pairs' must be a list of [wkt, wkt]")
            decoded = []
            for item in pairs:
                if not isinstance(item, Sequence) or len(item) != 2:
                    raise RequestError("each pair must be a [wkt, wkt] 2-list")
                decoded.append(
                    (polygon_from_wkt(item[0]), polygon_from_wkt(item[1]))
                )
            return cls.from_pairs(decoded, options)
        if "set_a" in raw or "set_b" in raw:
            set_a = raw.get("set_a")
            set_b = raw.get("set_b")
            if not isinstance(set_a, Sequence) or not isinstance(
                set_b, Sequence
            ):
                raise RequestError("'set_a' and 'set_b' must be WKT lists")
            return cls.from_sets(
                [polygon_from_wkt(w) for w in set_a],
                [polygon_from_wkt(w) for w in set_b],
                options,
            )
        if "dir_a" in raw or "dir_b" in raw:
            dir_a, dir_b = raw.get("dir_a"), raw.get("dir_b")
            if not isinstance(dir_a, str) or not isinstance(dir_b, str):
                raise RequestError("'dir_a' and 'dir_b' must be paths")
            return cls.from_files(dir_a, dir_b, options)
        raise RequestError(
            "request needs a payload: 'pairs', 'set_a'/'set_b', or "
            "'dir_a'/'dir_b'"
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "CompareRequest":
        """Parse a JSON spec (the ``repro explain`` input format)."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RequestError(f"malformed request JSON: {exc}") from None
        return cls.from_dict(raw)


# ----------------------------------------------------------------------
# Front-door adapters: every surface parses into the same spec
# ----------------------------------------------------------------------
def request_from_cli(
    dir_a: str | Path,
    dir_b: str | Path,
    backend: str = "batch",
    hosts: str | None = None,
    migration: bool = True,
    workers: int | None = None,
    cache: bool = False,
    trace: bool = False,
    trace_out: str | None = None,
) -> CompareRequest:
    """``repro compare`` flags -> the same :class:`CompareRequest`.

    The CLI's historical default enables task migration (the paper's
    production configuration); ``--no-migration`` turns it off.
    """
    backend_options: dict[str, Any] = {}
    if workers is not None:
        backend_options["workers"] = workers
    options = CompareOptions(
        backend=backend,
        backend_options=backend_options,
        hosts=hosts,
        migration=migration,
        cache=cache,
        trace=trace,
        trace_out=trace_out,
    )
    return CompareRequest.from_files(dir_a, dir_b, options)


# Wire config fields accepted on a service `compare` line.  Identical to
# the launch-parameter fields of CompareOptions by construction (the
# round-trip test pins this).
WIRE_CONFIG_FIELDS = ("block_size", "pixel_threshold", "tight_mbr", "leaf_mode")


def request_from_wire(
    message: Mapping[str, Any],
    base_options: CompareOptions | None = None,
) -> CompareRequest:
    """One decoded service ``compare`` line -> the same spec.

    ``base_options`` carries the serving side's execution substrate (the
    warm backend the service owns); the per-request ``config`` object
    overlays only the kernel launch parameters, which is all a client
    may choose.
    """
    raw_pairs = message.get("pairs")
    if not isinstance(raw_pairs, list):
        raise RequestError("compare request needs a 'pairs' list")
    pairs = []
    for item in raw_pairs:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise RequestError("each pair must be a [wkt, wkt] 2-list")
        pairs.append((polygon_from_wkt(item[0]), polygon_from_wkt(item[1])))
    options = base_options or CompareOptions()
    config = message.get("config")
    if config is not None:
        if not isinstance(config, Mapping):
            raise RequestError("'config' must be an object")
        unknown = set(config) - set(WIRE_CONFIG_FIELDS)
        if unknown:
            raise RequestError(f"unknown config fields: {sorted(unknown)}")
        options = options.replace(**dict(config))
    return CompareRequest.from_pairs(pairs, options)
