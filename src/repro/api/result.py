"""Front-door result types: one comparison, one record.

:class:`CompareResult` is what :class:`repro.Session` returns for set-
and file-level comparisons — the legacy ``CrossCompareResult`` fields
plus the performance accounting (wall seconds, input bytes) the pipeline
already measured but the old front door threw away.
:class:`PairOutcome` is the per-pair record :meth:`repro.Session.stream`
yields incrementally as shards complete.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.metrics.jaccard import PairwiseJaccard

__all__ = ["CompareResult", "PairOutcome"]


@dataclass(frozen=True, slots=True)
class CompareResult:
    """Outcome of one set- or file-level cross-comparison."""

    jaccard_mean: float
    intersecting_pairs: int
    candidate_pairs: int
    missing_a: int
    missing_b: int
    count_a: int
    count_b: int
    tiles: int = 1
    wall_seconds: float = 0.0
    input_bytes: int = 0
    # Trace id of the request-scoped span tree, when tracing was on
    # (``CompareOptions(trace=True)``); ``Session.last_trace`` holds the
    # records, ``trace_out`` the JSONL file.
    trace_id: str | None = None

    @property
    def throughput(self) -> float:
        """Bytes of raw input per second (0 when unmeasured)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.input_bytes / self.wall_seconds

    @classmethod
    def from_pairwise(
        cls, pw: PairwiseJaccard, tiles: int = 1, wall_seconds: float = 0.0
    ) -> "CompareResult":
        """Wrap a metrics-layer result (in-memory comparisons)."""
        return cls(
            jaccard_mean=pw.mean_ratio,
            intersecting_pairs=pw.intersecting_pairs,
            candidate_pairs=pw.candidate_pairs,
            missing_a=pw.missing_a,
            missing_b=pw.missing_b,
            count_a=pw.count_a,
            count_b=pw.count_b,
            tiles=tiles,
            wall_seconds=wall_seconds,
        )

    @classmethod
    def from_outcome(cls, outcome) -> "CompareResult":
        """Wrap a :class:`~repro.pipeline.engine.PipelineOutcome`."""
        return cls(
            jaccard_mean=outcome.jaccard_mean,
            intersecting_pairs=outcome.intersecting_pairs,
            candidate_pairs=outcome.candidate_pairs,
            missing_a=outcome.missing_a,
            missing_b=outcome.missing_b,
            count_a=outcome.count_a,
            count_b=outcome.count_b,
            tiles=outcome.tiles,
            wall_seconds=outcome.wall_seconds,
            input_bytes=outcome.input_bytes,
        )

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict rendering (reports, JSON)."""
        out = asdict(self)
        out["throughput"] = self.throughput
        return out

    def __str__(self) -> str:
        return (
            f"J'={self.jaccard_mean:.4f} ({self.intersecting_pairs} pairs, "
            f"{self.tiles} tile(s); {self.count_a} vs {self.count_b} "
            f"polygons; missing {self.missing_a}/{self.missing_b})"
        )


@dataclass(frozen=True, slots=True)
class PairOutcome:
    """One pair's exact areas, yielded incrementally by ``stream()``."""

    index: int
    intersection: int
    union: int
    area_p: int
    area_q: int

    @property
    def jaccard(self) -> float:
        """``|p n q| / |p u q|`` (0 when the union is empty)."""
        if self.union == 0:
            return 0.0
        return self.intersection / self.union
