"""Execution backends: one algorithm, many executors.

Architecture note
-----------------
The paper's core claim is that the exact same PixelBox algorithm runs on
heterogeneous executors with identical results.  This package is the
seam that makes the claim structural instead of incidental:

* :mod:`repro.backends.base` defines the :class:`Backend` protocol
  (``compare_pairs(pairs, config) -> BatchAreas``) and a name-keyed
  registry of backend factories;
* each executor lives in its own module and self-registers on import:

  ===============  ====================================================
  ``scalar``       single-core plain-Python engine (PixelBox-CPU-S)
  ``vectorized``   level-synchronous NumPy engine, one process
  ``batch``        production batched kernel (the aggregator's path)
  ``simt``         simulated-GPU replay of Algorithm 1 (cycle-metered)
  ``multiprocess`` pair shards across worker processes over
                   shared-memory CSR edge tables
  ``auto``         cost-model dispatch (:func:`repro.gpu.cost.recommend_backend`)
  ``cluster``      shards on remote ``repro worker`` processes over the
                   binary wire protocol (loopback workers when no hosts
                   are configured)
  ``numba``        compiled chunk kernel (``@njit(parallel=True)``),
                   available when the ``repro[numba]`` extra is
                   installed
  ===============  ====================================================

* consumers — the pipeline aggregator (:class:`repro.pipeline.device.GpuDevice`),
  the SDBMS batch operator (:class:`repro.sdbms.plan.BackendAreaProject`),
  the metrics layer, and the CLI — resolve executors by name through
  :func:`get_backend` and never import an engine directly.

Every registered backend is covered by the cross-backend parity harness
(``tests/test_backend_parity.py``), which introspects the registry and
asserts bit-for-bit equality against the exact overlay reference; a new
backend gets that coverage by the act of registering.  Future executors
(a real CUDA kernel, a distributed sharding tier, an async service
worker) plug in the same way.
"""

from __future__ import annotations

from repro.backends.base import (
    Backend,
    BackendCapabilities,
    BackendLifecycle,
    available_backends,
    backend_availability,
    backend_registry,
    get_backend,
    register,
)

# Import for registration side effects (each module self-registers; the
# cluster coordinator and the numba backend register through lazy shims
# so the registry lists them even when their dependency is absent).
from repro.backends import auto as _auto  # noqa: E402,F401
from repro.backends import batch as _batch  # noqa: E402,F401
from repro.backends import cluster as _cluster  # noqa: E402,F401
from repro.backends import multiprocess as _multiprocess  # noqa: E402,F401
from repro.backends import numba_backend as _numba_backend  # noqa: E402,F401
from repro.backends import scalar as _scalar  # noqa: E402,F401
from repro.backends import simt as _simt  # noqa: E402,F401
from repro.backends import vectorized as _vectorized  # noqa: E402,F401
from repro.backends.auto import AutoBackend, profile_pairs
from repro.backends.multiprocess import MultiprocessBackend, default_workers

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendLifecycle",
    "register",
    "get_backend",
    "available_backends",
    "backend_availability",
    "backend_registry",
    "AutoBackend",
    "MultiprocessBackend",
    "default_workers",
    "profile_pairs",
]
