"""Auto backend: cost-model-driven dispatch to a concrete executor.

Profiles the workload (pair count, edge density, MBR extent), asks the
cycle cost model in :mod:`repro.gpu.cost` which executor amortizes best,
and delegates.  Selection is pure policy — all backends are bit-for-bit
identical — so the worst misprediction costs wall-clock, never results.
"""

from __future__ import annotations

from repro.backends.base import (
    BackendCapabilities,
    BackendLifecycle,
    Pairs,
    get_backend,
    register,
)
from repro.gpu.cost import recommend_backend
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = ["AutoBackend", "profile_pairs"]


def profile_pairs(pairs: Pairs) -> tuple[float, float]:
    """``(mean edges per pair, mean MBR pixels per pair)`` of a workload.

    Edge density counts both polygons' vertical-edge families (the edge
    list every inner loop walks); the MBR extent is the pair cover box —
    the first sampling box of Algorithm 1.
    """
    if not pairs:
        return 0.0, 0.0
    edges = 0
    pixels = 0
    for p, q in pairs:
        edges += len(p.vertical_edges) + len(q.vertical_edges)
        pixels += p.mbr.cover(q.mbr).size
    return edges / len(pairs), pixels / len(pairs)


@register("auto")
class AutoBackend(BackendLifecycle):
    """Cost-model dispatch between batch, vectorized, multiprocess, numba.

    Delegate executors are instantiated once and cached, so a long-lived
    ``auto`` backend (the comparison service's warm pool) reuses them
    across calls; with ``persistent=True`` the multiprocess delegate
    keeps its worker pool warm too.  :meth:`close` releases every cached
    delegate.

    ``calibration`` carries a per-owner cost profile into every
    selection; ``None`` falls back to the process environment's profile
    (``REPRO_COST_PROFILE``), resolved inside the recommender.  A
    :class:`~repro.Session` with a ``cost_profile`` option passes its own
    resolved profile here, so two sessions with different profiles make
    different choices without touching any process-global state.
    """

    name = "auto"
    description = "cost-model dispatch (pair count + edge density -> backend)"

    def __init__(
        self,
        workers: int | None = None,
        persistent: bool = False,
        calibration=None,
    ):
        from repro.backends.multiprocess import default_workers

        self.workers = workers if workers is not None else default_workers()
        self.persistent = persistent
        self.calibration = calibration
        self._delegates: dict[str, object] = {}
        #: Name chosen by the most recent :meth:`compare_pairs` call.
        self.last_choice: str | None = None

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            persistent_pooling=True,
            stateful_lifecycle=True,
            configurable_workers=True,
            max_workers=self.workers,
            notes="delegates via the cycle cost model (calibratable)",
        )

    def select(self, pairs: Pairs, config: LaunchConfig | None = None) -> str:
        """The concrete backend the cost model picks for ``pairs``."""
        cfg = config or LaunchConfig()
        mean_edges, mean_pixels = profile_pairs(pairs)
        return recommend_backend(
            len(pairs),
            mean_edges,
            mean_pixels,
            cfg.threshold,
            cfg.block_size,
            workers=self.workers,
            calibration=self.calibration,
        )

    def _delegate(self, choice: str):
        if choice not in self._delegates:
            kwargs = {}
            if choice == "multiprocess":
                kwargs = {
                    "workers": self.workers, "persistent": self.persistent
                }
            self._delegates[choice] = get_backend(choice, **kwargs)
        return self._delegates[choice]

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        choice = self.select(pairs, config)
        self.last_choice = choice
        return self._delegate(choice).compare_pairs(pairs, config)

    def close(self) -> None:
        delegates, self._delegates = self._delegates, {}
        for backend in delegates.values():
            backend.close()
