"""Backend protocol and registry.

A *backend* is one executor for the PixelBox cross-comparison workload:
given a list of polygon pairs it returns the exact per-pair areas (and
the kernel work counters) as a
:class:`~repro.pixelbox.engine.BatchAreas`.  Backends differ only in
*how* they execute — scalar Python, wide NumPy arrays, sharded worker
processes, a simulated SIMT device — never in *what* they compute: every
registered backend must be bit-for-bit identical to the exact overlay
reference, which ``tests/test_backend_parity.py`` enforces for each
registry entry automatically.

Backends register a *factory* so callers can instantiate them with
per-call knobs (e.g. ``get_backend("multiprocess", workers=4)``) while
``get_backend("multiprocess")`` still yields a sensibly-configured
default.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Protocol, runtime_checkable

from repro.errors import KernelError
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = [
    "Backend",
    "BackendFactory",
    "BackendLifecycle",
    "register",
    "get_backend",
    "available_backends",
    "backend_registry",
    "cover_mbr_config",
]


def cover_mbr_config(config: LaunchConfig | None) -> LaunchConfig:
    """The config with the production path's tight-MBR policy dropped.

    Backends whose engines always start from the cover MBR (scalar,
    simt) use this to neutralize ``tight_mbr`` — results are identical
    either way (both are exact) — while preserving every other launch
    parameter.
    """
    cfg = config or LaunchConfig()
    if cfg.tight_mbr:
        cfg = dataclasses.replace(cfg, tight_mbr=False)
    return cfg

Pairs = list[tuple[RectilinearPolygon, RectilinearPolygon]]


@runtime_checkable
class Backend(Protocol):
    """One PixelBox executor.

    Attributes
    ----------
    name:
        Registry key, stable across releases (CLI ``--backend`` values).
    description:
        One-line human-readable summary for ``repro backends``.
    """

    name: str
    description: str

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        """Exact areas (+ stats) for every pair, in input order."""
        ...

    def close(self) -> None:
        """Release pooled resources (idempotent; backend stays usable)."""
        ...


class BackendLifecycle:
    """Default backend lifecycle: ``close()`` no-op + context manager.

    Stateless executors inherit the no-op; pooled executors (persistent
    worker processes, a future CUDA context, a remote transport) override
    :meth:`close` to release what they hold.  ``close`` must be
    idempotent and must leave the backend re-usable — pooled state is
    re-created lazily on the next call — so long-lived owners like the
    comparison service can recycle a backend without re-resolving it
    through the registry.
    """

    def close(self) -> None:
        """Release pooled resources; no-op for stateless executors."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


BackendFactory = Callable[..., Backend]

_REGISTRY: dict[str, BackendFactory] = {}


def register(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Class decorator adding a backend factory under ``name``.

    The decorated class (or factory callable) must produce objects
    satisfying the :class:`Backend` protocol when called with no
    arguments.
    """

    def deco(factory: BackendFactory) -> BackendFactory:
        if name in _REGISTRY:
            raise KernelError(f"backend {name!r} registered twice")
        _REGISTRY[name] = factory
        return factory

    return deco


def get_backend(name: str, **kwargs) -> Backend:
    """Instantiate the backend registered under ``name``.

    Keyword arguments are forwarded to the backend factory (e.g.
    ``workers=4`` for the multiprocess backend).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KernelError(
            f"unknown backend {name!r} (registered: {known})"
        ) from None
    return factory(**kwargs)


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def backend_registry() -> dict[str, BackendFactory]:
    """A copy of the registry (introspection for the parity harness)."""
    return dict(_REGISTRY)
