"""Backend protocol and registry.

A *backend* is one executor for the PixelBox cross-comparison workload:
given a list of polygon pairs it returns the exact per-pair areas (and
the kernel work counters) as a
:class:`~repro.pixelbox.engine.BatchAreas`.  Backends differ only in
*how* they execute — scalar Python, wide NumPy arrays, sharded worker
processes, a simulated SIMT device — never in *what* they compute: every
registered backend must be bit-for-bit identical to the exact overlay
reference, which ``tests/test_backend_parity.py`` enforces for each
registry entry automatically.

Backends register a *factory* so callers can instantiate them with
per-call knobs (e.g. ``get_backend("multiprocess", workers=4)``) while
``get_backend("multiprocess")`` still yields a sensibly-configured
default.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Protocol, runtime_checkable

from repro.errors import BackendError, KernelError
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendFactory",
    "BackendLifecycle",
    "register",
    "get_backend",
    "available_backends",
    "backend_availability",
    "backend_registry",
    "cover_mbr_config",
]


@dataclasses.dataclass(frozen=True, slots=True)
class BackendCapabilities:
    """Structured description of how one backend executes.

    Before this existed, callers probed ad-hoc attributes (``warm``,
    ``persistent``, ``workers``) with ``getattr`` and misconfiguration
    surfaced deep in dispatch.  Every backend now reports its execution
    shape here; ``repro backends`` prints it, and owners like the
    comparison service branch on fields instead of attribute sniffing.

    Attributes
    ----------
    persistent_pooling:
        The backend can hold warm pooled state across calls (worker
        processes, connections) and exposes ``warm()``.
    stateful_lifecycle:
        ``close()`` releases real resources (as opposed to the no-op of
        a stateless executor).
    configurable_workers:
        The factory accepts a ``workers``-style parallelism knob.
    max_workers:
        Degree of parallelism this *instance* is configured for (1 for
        single-process executors).
    remote:
        Execution leaves this machine (network transport involved).
    compiled:
        The kernel sequence runs as machine code (JIT or AOT), not as
        NumPy array programs — per-pair cost drops by the compiled
        speedup the cost model calibrates.
    notes:
        One-line human hint (requirements, configuration source).
    """

    persistent_pooling: bool = False
    stateful_lifecycle: bool = False
    configurable_workers: bool = False
    max_workers: int = 1
    remote: bool = False
    compiled: bool = False
    notes: str = ""

    def as_dict(self) -> dict:
        """JSON-able rendering (``repro backends --json``, ``explain``)."""
        return dataclasses.asdict(self)

    def summary(self) -> str:
        """Compact rendering for ``repro backends``."""
        tags = []
        if self.persistent_pooling:
            tags.append("pooling")
        if self.stateful_lifecycle:
            tags.append("lifecycle")
        if self.configurable_workers:
            tags.append(f"workers<={self.max_workers}")
        if self.remote:
            tags.append("remote")
        if self.compiled:
            tags.append("compiled")
        return ",".join(tags) if tags else "stateless"


def cover_mbr_config(config: LaunchConfig | None) -> LaunchConfig:
    """The config with the production path's tight-MBR policy dropped.

    Backends whose engines always start from the cover MBR (scalar,
    simt) use this to neutralize ``tight_mbr`` — results are identical
    either way (both are exact) — while preserving every other launch
    parameter.
    """
    cfg = config or LaunchConfig()
    if cfg.tight_mbr:
        cfg = dataclasses.replace(cfg, tight_mbr=False)
    return cfg

Pairs = list[tuple[RectilinearPolygon, RectilinearPolygon]]


@runtime_checkable
class Backend(Protocol):
    """One PixelBox executor.

    Attributes
    ----------
    name:
        Registry key, stable across releases (CLI ``--backend`` values).
    description:
        One-line human-readable summary for ``repro backends``.
    """

    name: str
    description: str

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        """Exact areas (+ stats) for every pair, in input order."""
        ...

    def close(self) -> None:
        """Release pooled resources (idempotent; backend stays usable)."""
        ...

    def capabilities(self) -> BackendCapabilities:
        """Structured execution shape (pooling, lifecycle, workers)."""
        ...


class BackendLifecycle:
    """Default backend lifecycle: ``close()`` no-op + context manager.

    Stateless executors inherit the no-op; pooled executors (persistent
    worker processes, a future CUDA context, a remote transport) override
    :meth:`close` to release what they hold.  ``close`` must be
    idempotent and must leave the backend re-usable — pooled state is
    re-created lazily on the next call — so long-lived owners like the
    comparison service can recycle a backend without re-resolving it
    through the registry.
    """

    def close(self) -> None:
        """Release pooled resources; no-op for stateless executors."""

    def capabilities(self) -> BackendCapabilities:
        """Default capability report: a stateless single-process executor."""
        return BackendCapabilities()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


BackendFactory = Callable[..., Backend]

_REGISTRY: dict[str, BackendFactory] = {}

# Optional availability probes: name -> callable returning None when the
# backend can run here, or a human-readable reason string when it cannot
# (a missing optional dependency, typically).  Backends without a probe
# are unconditionally available.
_AVAILABILITY: dict[str, Callable[[], str | None]] = {}


def register(
    name: str, *, availability: Callable[[], str | None] | None = None
) -> Callable[[BackendFactory], BackendFactory]:
    """Class decorator adding a backend factory under ``name``.

    The decorated class (or factory callable) must produce objects
    satisfying the :class:`Backend` protocol when called with no
    arguments.  ``availability``, when given, is called before every
    instantiation; returning a reason string makes :func:`get_backend`
    raise a :class:`~repro.errors.BackendError` naming it instead of
    surfacing an ``ImportError`` from deep inside the factory.
    """

    def deco(factory: BackendFactory) -> BackendFactory:
        if name in _REGISTRY:
            raise KernelError(f"backend {name!r} registered twice")
        _REGISTRY[name] = factory
        if availability is not None:
            _AVAILABILITY[name] = availability
        return factory

    return deco


def backend_availability(name: str) -> str | None:
    """``None`` when ``name`` can run here, else the reason it cannot.

    Lets listings (``repro backends``) report an unavailable backend
    without instantiating it — and without crashing on the attempt.
    """
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KernelError(
            f"unknown backend {name!r} (registered: {known})"
        )
    probe = _AVAILABILITY.get(name)
    return probe() if probe is not None else None


def get_backend(name: str, **kwargs) -> Backend:
    """Instantiate the backend registered under ``name``.

    Keyword arguments are forwarded to the backend factory (e.g.
    ``workers=4`` for the multiprocess backend).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KernelError(
            f"unknown backend {name!r} (registered: {known})"
        ) from None
    probe = _AVAILABILITY.get(name)
    if probe is not None:
        reason = probe()
        if reason is not None:
            raise BackendError(
                f"backend {name!r} is unavailable: {reason}"
            )
    try:
        return factory(**kwargs)
    except TypeError as exc:
        # A wrong knob (e.g. `hosts=` on the batch backend) should name
        # the backend here, not surface as a bare constructor TypeError
        # deep in dispatch.
        raise KernelError(
            f"backend {name!r} rejected options {sorted(kwargs)}: {exc}"
        ) from None


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def backend_registry() -> dict[str, BackendFactory]:
    """A copy of the registry (introspection for the parity harness)."""
    return dict(_REGISTRY)
