"""Batch backend: the production batched device kernel.

Identical results to the vectorized backend with a different
:class:`repro.pixelbox.kernel.ExecutionPolicy`: pairs whose MBR fits a
thread block are pixelized directly, skipping subdivision (see
:mod:`repro.pixelbox.batch`).  This is what the pipeline's aggregator
launches on the simulated GPU.
"""

from __future__ import annotations

from repro.backends.base import BackendLifecycle, Pairs, register
from repro.pixelbox.batch import compute_batch
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = ["BatchBackend"]


@register("batch")
class BatchBackend(BackendLifecycle):
    """Production batched kernel (small pairs skip subdivision)."""

    name = "batch"
    description = "batched device kernel (the pipeline's production path)"

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        return compute_batch(pairs, config)
