"""Registry shim for the cluster backend.

The coordinator lives in :mod:`repro.cluster.coordinator`, which itself
imports :mod:`repro.backends.base` — registering it here through a lazy
factory keeps the registry import-cycle-free whichever package is
imported first (``import repro.cluster`` must not require
``repro.backends`` to be fully initialized, and vice versa).
"""

from __future__ import annotations

from repro.backends.base import register


@register("cluster")
def cluster_backend(**kwargs):
    """Factory for :class:`repro.cluster.coordinator.ClusterBackend`."""
    from repro.cluster.coordinator import ClusterBackend

    return ClusterBackend(**kwargs)
