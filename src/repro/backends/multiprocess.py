"""Shared-memory multiprocess backend: pair shards across worker processes.

The NumPy engines are single-process; on a multi-core host the GIL-free
way to scale them is process sharding.  The expensive state — the CSR
edge tables of both pair sides plus the per-pair start boxes — is
serialized **once** into a single :mod:`multiprocessing.shared_memory`
segment; each worker attaches zero-copy NumPy views over it, runs the
level-synchronous planner and the stacked leaf pixelization on its
contiguous shard of pair indices, and ships back only its slice of the
intersection-area vector.  The parent scatter-gathers the slices and
derives unions indirectly (``|p u q| = |p| + |q| - |p n q|``).

Each worker drives the shared chunk kernel
(:meth:`repro.pixelbox.kernel.ChunkKernel.run_shard` under the shard
policy) — the same plan+stacked-pixelize sequence every in-process
executor runs — so every pair's result is an exact integer computed
independently of its shard and the output is bit-for-bit identical to
the vectorized backend for any worker count, with identical work
counters; the parity harness checks this.

Small inputs (fewer than ``min_pairs`` candidates) skip the pool and run
in-process: forking workers for a handful of pairs would cost more than
the comparison itself.

Two pool lifetimes are supported.  The default tears the pool down after
every call — no resource outlives ``compare_pairs``, which is right for
one-shot batch jobs.  ``persistent=True`` keeps one warm worker pool
across calls (created lazily, pre-spawnable with :meth:`warm`), which is
what a long-lived owner like :class:`repro.service.ComparisonService`
wants: process forking happens once per service lifetime instead of once
per request, and only the (cheap, input-dependent) shared-memory packing
remains per dispatch.  ``close()`` — also reachable as a context
manager via :class:`repro.backends.base.BackendLifecycle` — shuts the
warm pool down and joins its workers; the backend stays usable and
re-creates the pool on the next pooled call.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    BackendLifecycle,
    Pairs,
    register,
)
from repro.errors import KernelError
from repro.pixelbox.common import KernelStats, LaunchConfig
from repro.pixelbox.kernel import BatchAreas, ChunkKernel, shard_policy
from repro.pixelbox.vectorized import EdgeTable

__all__ = ["MultiprocessBackend", "default_workers"]

# Fields of one serialized EdgeTable, in manifest order.
_TABLE_FIELDS = ("xs", "lo", "hi", "ys", "xlo", "xhi", "offsets")


def default_workers() -> int:
    """Worker-count default: the host's cores, capped at 4.

    The ``REPRO_WORKERS`` environment variable overrides the default —
    CI uses it to run the parity suite at several pool widths.  A value
    that does not parse is an error, not a silent fallback: the parity
    matrix must never report green for a width it did not test.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            workers = 0
        if workers < 1:
            raise KernelError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            )
        return workers
    return max(1, min(4, os.cpu_count() or 1))


def _mp_context():
    """Fork when safe (fast, POSIX, single-threaded), spawn otherwise.

    Forking a multi-threaded process can deadlock the children on locks
    held by other threads at fork time — and the pipeline calls this
    backend from its aggregator *thread* — so fork is only used when no
    other threads are running.  macOS always spawns: system frameworks
    (Accelerate/objc) are fork-unsafe there even single-threaded, which
    is why CPython made spawn the macOS default.
    """
    if threading.active_count() == 1 and sys.platform != "darwin":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            pass
    return multiprocessing.get_context("spawn")


# ----------------------------------------------------------------------
# Shared-memory packing
# ----------------------------------------------------------------------
def _pack_arrays(
    arrays: dict[str, np.ndarray],
) -> tuple[shared_memory.SharedMemory, dict[str, tuple[int, tuple, str]]]:
    """Copy ``arrays`` into one shared segment; return it + a manifest.

    The manifest maps array name to ``(byte offset, shape, dtype str)``
    and is small enough to pickle per task.
    """
    manifest: dict[str, tuple[int, tuple, str]] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = -(-offset // arr.itemsize) * arr.itemsize  # align
        manifest[name] = (offset, arr.shape, arr.dtype.str)
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, arr in arrays.items():
        off, shape, dtype = manifest[name]
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view[...] = arr
    return shm, manifest


def _attach(name: str, unregister: bool) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker double-accounting.

    Python < 3.13 registers *attachments* with the resource tracker as if
    the attaching process owned the segment.  Under ``spawn`` each worker
    runs its own tracker, which would unlink the segment at worker exit
    while the parent still uses it — so spawn workers unregister their
    attachment.  Under ``fork`` the tracker is shared with the parent and
    its cache is a set, so a child-side unregister would instead erase
    the parent's own registration; fork workers leave it alone.
    """
    shm = shared_memory.SharedMemory(name=name)
    if unregister:
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:
            pass
    return shm


def _views(
    buf, manifest: dict[str, tuple[int, tuple, str]]
) -> dict[str, np.ndarray]:
    """Zero-copy NumPy views over a packed segment."""
    return {
        name: np.ndarray(shape, dtype=dtype, buffer=buf, offset=off)
        for name, (off, shape, dtype) in manifest.items()
    }


def _table_from(views: dict[str, np.ndarray], prefix: str) -> EdgeTable:
    return EdgeTable(*(views[f"{prefix}.{f}"] for f in _TABLE_FIELDS))


def _table_arrays(table: EdgeTable, prefix: str) -> dict[str, np.ndarray]:
    return {
        f"{prefix}.{f}": getattr(table, f) for f in _TABLE_FIELDS
    }


# ----------------------------------------------------------------------
# Worker body
# ----------------------------------------------------------------------
def _compute_shard(
    table_p: EdgeTable,
    table_q: EdgeTable,
    boxes: np.ndarray,
    has_box: np.ndarray,
    lo: int,
    hi: int,
    cfg: LaunchConfig,
    stats: KernelStats,
    substrate: str = "numpy",
) -> np.ndarray:
    """Intersection areas for global pair indices ``[lo, hi)``.

    A thin adapter over :meth:`ChunkKernel.run_shard` under the shard
    policy — the exact plan+stacked-pixelize sequence every other
    executor runs, so sharding at any boundary preserves bit-for-bit
    results *and* identical work counters (on either substrate).
    """
    kernel = ChunkKernel(shard_policy(substrate=substrate), cfg)
    inter, _ = kernel.run_shard(
        table_p, table_q, boxes, has_box, lo, hi, stats
    )
    return inter


def _worker(
    shm_name: str,
    manifest: dict[str, tuple[int, tuple, str]],
    lo: int,
    hi: int,
    cfg: LaunchConfig,
    unregister: bool,
    substrate: str = "numpy",
) -> tuple[int, np.ndarray, dict[str, int]]:
    """Pool task: attach, compute one shard, detach."""
    shm = _attach(shm_name, unregister)
    try:
        views = _views(shm.buf, manifest)
        stats = KernelStats()
        inter = _compute_shard(
            _table_from(views, "p"),
            _table_from(views, "q"),
            views["boxes"],
            views["has_box"],
            lo,
            hi,
            cfg,
            stats,
            substrate,
        )
        # Copy out: the view's backing segment dies with this task.
        return lo, np.array(inter, copy=True), stats.as_dict()
    finally:
        shm.close()


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------
def _warm_probe(hold_seconds: float) -> int:
    """Pool task used to pre-spawn workers (returns the worker pid).

    Holding the worker briefly keeps an already-finished worker from
    stealing the next probe, so one probe lands on each worker and the
    whole pool is forced into existence.
    """
    import time

    time.sleep(hold_seconds)
    return os.getpid()


@register("multiprocess")
class MultiprocessBackend(BackendLifecycle):
    """Shared-memory pair sharding across worker processes.

    Parameters
    ----------
    workers:
        Process count; defaults to :func:`default_workers`.
    min_pairs:
        Below this many pairs the pool is skipped and the shard runs
        in-process (identical results, no fork overhead).
    persistent:
        Keep one warm worker pool across ``compare_pairs`` calls instead
        of forking per call.  The owner is responsible for ``close()``
        (or using the backend as a context manager).
    substrate:
        What each shard executes on: ``"numpy"`` (default) or
        ``"numba"`` — a shard runs the compiled chunk kernel inside its
        worker process, composing process sharding with the compiled
        substrate.  Requires the ``repro[numba]`` extra.
    result_cache_bytes:
        Byte budget of a parent-side shard-result cache keyed by the
        content-addressed bundle digest — the exact key the cluster
        workers use, shared store implementation and all.  Off (``0``)
        by default; enabled by ``CompareOptions(cache=True)``.  Only the
        pool path consults it (the in-process small path is cheaper than
        a digest).
    """

    name = "multiprocess"
    description = "pair shards across processes over shared-memory CSR tables"

    def __init__(
        self,
        workers: int | None = None,
        min_pairs: int = 256,
        persistent: bool = False,
        substrate: str = "numpy",
        result_cache_bytes: int = 0,
    ):
        resolved = default_workers() if workers is None else workers
        if resolved < 1:
            raise KernelError(f"workers must be >= 1, got {resolved}")
        if substrate not in ("numpy", "numba"):
            raise KernelError(
                f"substrate must be 'numpy' or 'numba', got {substrate!r}"
            )
        if substrate == "numba":
            # Fail at construction, not inside a worker process.
            from repro.pixelbox import numba_kernel

            numba_kernel.require_numba()
        self.workers = resolved
        self.min_pairs = min_pairs
        self.persistent = persistent
        self.substrate = substrate
        self._pool: ProcessPoolExecutor | None = None
        self._pool_unregister = False
        self._pool_lock = threading.Lock()
        if result_cache_bytes > 0:
            from repro.cache import LRUCacheStore

            self._result_cache = LRUCacheStore(
                result_cache_bytes, name="multiprocess.shard"
            )
        else:
            self._result_cache = None

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            persistent_pooling=True,
            stateful_lifecycle=True,
            configurable_workers=True,
            max_workers=self.workers,
            compiled=self.substrate == "numba",
            notes="shared-memory pair shards; REPRO_WORKERS sets the default",
        )

    # ------------------------------------------------------------------
    # Warm-pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> tuple[ProcessPoolExecutor, bool]:
        """The warm pool (created lazily) and its attach-unregister flag."""
        with self._pool_lock:
            if self._pool is None:
                ctx = _mp_context()
                self._pool_unregister = ctx.get_start_method() != "fork"
                if not self._pool_unregister:
                    # Fork workers must inherit a *running* resource
                    # tracker: a warm pool forks before any segment
                    # exists, and a worker that lazily starts its own
                    # tracker would double-account every attachment.
                    try:  # pragma: no cover - interpreter internals
                        from multiprocessing import resource_tracker

                        resource_tracker.ensure_running()
                    except Exception:
                        pass
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            return self._pool, self._pool_unregister

    def warm(self, hold_seconds: float = 0.05) -> list[int]:
        """Pre-spawn every worker in the persistent pool; returns pids.

        Only meaningful with ``persistent=True`` (a per-call pool would
        be torn down again immediately); the service calls this at
        startup so the first request does not pay the fork/spawn cost.
        """
        if not self.persistent:
            return []
        pool, _ = self._ensure_pool()
        # One probe per worker: the executor spawns a process per pending
        # submission until max_workers exist, so this forces a full pool.
        futures = [
            pool.submit(_warm_probe, hold_seconds)
            for _ in range(self.workers)
        ]
        return sorted({f.result() for f in futures})

    def close(self) -> None:
        """Shut the warm pool down and join its workers (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def cache_stats(self) -> dict[str, dict]:
        """Snapshot of the parent-side shard cache, if enabled."""
        if self._result_cache is None:
            return {}
        return {"multiprocess.shard": self._result_cache.snapshot().as_dict()}

    def clear_caches(self) -> None:
        """Drop every cached shard result."""
        if self._result_cache is not None:
            self._result_cache.clear()

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        cfg = config or LaunchConfig()
        n = len(pairs)
        stats = KernelStats()
        if n == 0:
            zero = np.zeros(0, dtype=np.int64)
            return BatchAreas(zero, zero.copy(), zero.copy(), zero.copy(), stats)

        kernel = ChunkKernel(shard_policy(substrate=self.substrate), cfg)
        a_p, a_q, boxes, has_box = kernel.route_pairs(pairs)
        table_p = EdgeTable.build([p for p, _ in pairs])
        table_q = EdgeTable.build([q for _, q in pairs])

        if self.workers == 1 or n < max(self.min_pairs, 2 * self.workers):
            inter = _compute_shard(
                table_p, table_q, boxes, has_box, 0, n, cfg, stats,
                self.substrate,
            )
        else:
            inter = self._run_pool(table_p, table_q, boxes, has_box, cfg, stats)

        union = kernel.finalize_union(inter, None, a_p, a_q, has_box)
        return BatchAreas(inter, union, a_p, a_q, stats)

    # ------------------------------------------------------------------
    def _run_pool(
        self,
        table_p: EdgeTable,
        table_q: EdgeTable,
        boxes: np.ndarray,
        has_box: np.ndarray,
        cfg: LaunchConfig,
        stats: KernelStats,
    ) -> np.ndarray:
        n = len(has_box)
        arrays = {
            **_table_arrays(table_p, "p"),
            **_table_arrays(table_q, "q"),
            "boxes": boxes,
            "has_box": has_box,
        }
        inter = np.zeros(n, dtype=np.int64)
        step = -(-n // self.workers)
        shards = [(lo, min(lo + step, n)) for lo in range(0, n, step)]
        record = None
        if self._result_cache is not None:
            from repro.cache import copy_shard_result, shard_key, shard_result_nbytes
            from repro.cluster import wire

            cache = self._result_cache
            policy = shard_policy(substrate=self.substrate)
            digest = wire.bundle_digest(arrays)
            keys = {
                (lo, hi): shard_key(digest, lo, hi, policy, cfg)
                for lo, hi in shards
            }
            todo = []
            for lo, hi in shards:
                hit = cache.get(keys[(lo, hi)])
                if hit is not None:
                    shard_inter, shard_stats = hit
                    inter[lo:hi] = shard_inter
                    stats.merge(KernelStats(**shard_stats))
                else:
                    todo.append((lo, hi))
            shards = todo
            if not shards:
                return inter

            def record(lo: int, hi: int, shard_inter, shard_stats) -> None:
                entry = copy_shard_result((shard_inter, shard_stats))
                cache.put(keys[(lo, hi)], entry, shard_result_nbytes(entry))

        try:
            shm, manifest = _pack_arrays(arrays)
        except OSError:  # pragma: no cover - hosts without shm support
            return _compute_shard(
                table_p, table_q, boxes, has_box, 0, n, cfg, stats,
                self.substrate,
            )
        try:
            if self.persistent:
                pool, unregister = self._ensure_pool()
                self._collect(
                    pool, shm, manifest, shards, cfg, unregister, inter, stats,
                    record,
                )
            else:
                ctx = _mp_context()
                unregister = ctx.get_start_method() != "fork"
                with ProcessPoolExecutor(
                    max_workers=len(shards), mp_context=ctx
                ) as pool:
                    self._collect(
                        pool, shm, manifest, shards, cfg, unregister, inter,
                        stats, record,
                    )
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        return inter

    def _collect(
        self,
        pool: ProcessPoolExecutor,
        shm: shared_memory.SharedMemory,
        manifest: dict[str, tuple[int, tuple, str]],
        shards: list[tuple[int, int]],
        cfg: LaunchConfig,
        unregister: bool,
        inter: np.ndarray,
        stats: KernelStats,
        record=None,
    ) -> None:
        """Submit every shard to ``pool`` and gather slices into ``inter``."""
        futures = [
            pool.submit(
                _worker, shm.name, manifest, lo, hi, cfg, unregister,
                self.substrate,
            )
            for lo, hi in shards
        ]
        for future in futures:
            lo, shard_inter, shard_stats = future.result()
            inter[lo : lo + len(shard_inter)] = shard_inter
            part = KernelStats(**shard_stats)
            stats.merge(part)
            if record is not None:
                record(lo, lo + len(shard_inter), shard_inter, shard_stats)
