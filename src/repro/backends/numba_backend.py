"""The ``numba`` backend: the chunk kernel on the compiled substrate.

Registered as a lazy shim like the cluster backend: the module imports
unconditionally (so the registry always lists ``numba`` and can report
*why* it is unavailable), but instantiation probes for the optional
dependency and raises a :class:`~repro.errors.BackendError` naming the
``repro[numba]`` extra when it is missing.

The backend is a thin adapter — it reuses ``ChunkKernel.compute`` (and
therefore ``route_pairs``/``finalize_union``) with the compiled policy,
so the registry-introspecting parity harness and the degenerate sweep
cover it bit-for-bit with zero front-door change.
"""

from __future__ import annotations

import importlib.util

from repro.backends.base import (
    BackendCapabilities,
    BackendLifecycle,
    register,
)
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.kernel import (
    DEFAULT_SKIP_SUBDIVISION_DIM,
    BatchAreas,
    ChunkKernel,
    compiled_policy,
)

__all__ = ["NumbaBackend", "numba_unavailable_reason"]


def numba_unavailable_reason() -> str | None:
    """``None`` when numba can be imported, else the reason it cannot.

    A cheap ``find_spec`` probe — no JIT machinery is touched until a
    backend instance actually compiles something.
    """
    try:
        spec = importlib.util.find_spec("numba")
    except (ImportError, ValueError):
        spec = None
    if spec is None:
        return (
            "numba is not installed "
            "(install the optional extra: pip install 'repro[numba]')"
        )
    return None


@register("numba", availability=lambda: numba_unavailable_reason())
class NumbaBackend(BackendLifecycle):
    """Compiled chunk kernel: ``@njit(parallel=True)`` over all cores."""

    name = "numba"
    description = (
        "compiled chunk kernel (Numba @njit(parallel=True) over all cores)"
    )

    def __init__(
        self, skip_subdivision_max_dim: int = DEFAULT_SKIP_SUBDIVISION_DIM
    ):
        from repro.pixelbox import numba_kernel

        numba_kernel.require_numba()
        self._numba_kernel = numba_kernel
        self._policy = compiled_policy(max_dim=skip_subdivision_max_dim)

    def compare_pairs(
        self,
        pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
        config: LaunchConfig | None = None,
    ) -> BatchAreas:
        kernel = ChunkKernel(self._policy, config or LaunchConfig())
        return kernel.compute(pairs)

    def warm(self) -> list[int]:
        """Trigger JIT compilation ahead of the first real batch.

        The first call into an ``@njit`` function pays the compile (or
        cache-load) cost; owners that care about first-request latency
        warm with a trivial pair here.  Returns an empty list — no
        processes are spawned — matching the ``warm()`` convention.
        """
        unit = RectilinearPolygon.from_box(Box(0, 0, 1, 1))
        self.compare_pairs([(unit, unit)])
        return []

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            compiled=True,
            max_workers=self._numba_kernel.thread_count(),
            notes=(
                "requires the repro[numba] extra; parallelizes one pair "
                "per thread"
            ),
        )
