"""Scalar backend: the single-core plain-Python engine.

This is the slowest executor and exists as the ground truth for
execution policy: per-pair, no array batching, no processes.  It wraps
:func:`repro.pixelbox.cpu.pair_areas_scalar` (the paper's
PixelBox-CPU-S configuration) and is the baseline the
``benchmarks/test_backend_scaling.py`` speedups are normalized to.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import (
    BackendLifecycle,
    Pairs,
    cover_mbr_config,
    register,
)
from repro.pixelbox.common import KernelStats, LaunchConfig
from repro.pixelbox.cpu import pair_areas_scalar
from repro.pixelbox.engine import BatchAreas

__all__ = ["ScalarBackend"]


@register("scalar")
class ScalarBackend(BackendLifecycle):
    """Per-pair scalar Python execution (PixelBox-CPU-S)."""

    name = "scalar"
    description = "single-core plain-Python engine (PixelBox-CPU-S)"

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        # The scalar engine always starts from the cover MBR.
        cfg = cover_mbr_config(config)
        n = len(pairs)
        inter = np.zeros(n, dtype=np.int64)
        a_p = np.zeros(n, dtype=np.int64)
        a_q = np.zeros(n, dtype=np.int64)
        stats = KernelStats()
        for i, (p, q) in enumerate(pairs):
            res = pair_areas_scalar(p, q, cfg, stats)
            inter[i] = res.intersection
            a_p[i] = res.area_p
            a_q[i] = res.area_q
        union = a_p + a_q - inter
        return BatchAreas(inter, union, a_p, a_q, stats)
