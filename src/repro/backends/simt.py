"""Simulated-GPU backend: Algorithm 1 replayed block by block.

Wraps :func:`repro.gpu.simt_kernel.collect_block_counts` — the SIMT
simulator's faithful replay of the kernel, one thread block per pair.
Orders of magnitude slower than the array engines (plain Python loops
stand in for threads) but it is the executor whose *cost* the Figure 9
experiments price, so keeping it behind the same interface guarantees
the cycle meter stays attached to a correct execution.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import (
    BackendLifecycle,
    Pairs,
    cover_mbr_config,
    register,
)
from repro.gpu.simt_kernel import collect_block_counts
from repro.pixelbox.common import KernelStats, LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = ["SimtBackend"]


@register("simt")
class SimtBackend(BackendLifecycle):
    """SIMT-simulator replay (one thread block per pair)."""

    name = "simt"
    description = "simulated-GPU replay of Algorithm 1 (slow, cycle-metered)"

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        # The replay always covers both MBRs (Algorithm 1 line 13).
        cfg = cover_mbr_config(config)
        n = len(pairs)
        inter = np.zeros(n, dtype=np.int64)
        uni = np.zeros(n, dtype=np.int64)
        a_p = np.zeros(n, dtype=np.int64)
        a_q = np.zeros(n, dtype=np.int64)
        stats = KernelStats()
        for i, (p, q) in enumerate(pairs):
            counts = collect_block_counts(p, q, cfg)
            inter[i] = counts.intersection_area
            uni[i] = counts.union_area
            a_p[i] = p.area
            a_q[i] = q.area
            stats.pairs += 1
            stats.pops += counts.pops
        return BatchAreas(inter, uni, a_p, a_q, stats)
