"""Vectorized backend: the level-synchronous NumPy engine.

One process, wide arrays: all pairs subdivide level by level and all
leaves pixelize in one stacked XOR-scan launch — the in-process image of
the GPU's execution shape.  ``compute_pairs`` is a thin adapter over the
shared chunk kernel (:class:`repro.pixelbox.kernel.ChunkKernel`) under
the plain engine policy, so this backend can never drift from the
batched or sharded executors.
"""

from __future__ import annotations

from repro.backends.base import BackendLifecycle, Pairs, register
from repro.pixelbox.common import LaunchConfig, Method
from repro.pixelbox.engine import BatchAreas, compute_pairs

__all__ = ["VectorizedBackend"]


@register("vectorized")
class VectorizedBackend(BackendLifecycle):
    """Level-synchronous NumPy execution of the PIXELBOX variant."""

    name = "vectorized"
    description = "level-synchronous NumPy engine (single process)"

    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        return compute_pairs(pairs, Method.PIXELBOX, config)
