"""Three-tier content-addressed result cache.

The repeat-traffic answer to the ROADMAP's "millions of users" north
star: the same slide pairs under the same configs should cost a lookup,
not a recomputation.  One bounded-memory LRU store implementation
(:class:`LRUCacheStore`) backs three tiers:

* **shard tier** — worker-side (``ShardWorker``) and local
  (``MultiprocessBackend``) shard results keyed by
  ``(bundle_digest, shard range, ExecutionPolicy, LaunchConfig)``, so
  straggler speculation, failure re-dispatch, and service retries hit
  instead of recomputing.
* **merge tier** — coordinator-side (``ClusterBackend``) assembled
  results keyed by the same identity minus the shard range.
* **request tier** — front-door (``Session`` / ``ComparisonService``)
  results keyed by the canonical serialized ``CompareRequest`` plus the
  resolved cost-profile fingerprint, with a :class:`SingleFlight`
  stampede guard.

``CompareOptions(cache=True, cache_bytes=...)`` threads the knob through
library, CLI, and service identically; ``repro cache stats|clear``
inspects a running service.
"""

from repro.cache.keys import (
    calibration_fingerprint,
    config_token,
    merge_key,
    pairs_key,
    policy_token,
    request_key,
    shard_key,
)
from repro.cache.store import CacheSnapshot, CacheStore, LRUCacheStore, SingleFlight
from repro.cache.values import (
    areas_nbytes,
    copy_areas,
    copy_shard_result,
    shard_result_nbytes,
)

__all__ = [
    "CacheSnapshot",
    "CacheStore",
    "LRUCacheStore",
    "SingleFlight",
    "areas_nbytes",
    "calibration_fingerprint",
    "config_token",
    "copy_areas",
    "copy_shard_result",
    "merge_key",
    "pairs_key",
    "policy_token",
    "request_key",
    "shard_key",
    "shard_result_nbytes",
]
