"""Canonical cache-key builders for the three result-cache tiers.

All keys are content-derived sha256 hex digests with a tier prefix, so
a key equals another key exactly when the computation it names would
produce bit-for-bit identical output:

* shard tier  — ``(bundle_digest, shard range, ExecutionPolicy,
  LaunchConfig)``.  The bundle digest already content-addresses the CSR
  edge tables, MBR boxes, and box mask (``cluster.wire.bundle_digest``);
  the policy and config tokens cover everything else a kernel run
  depends on.
* merge tier  — the shard-tier identity minus the range: one assembled
  result per ``(bundle, policy, config)``.
* request tier — the canonical serialized :class:`CompareRequest`
  (PR 5 made ``to_json`` canonical: sorted WKT payload, omitted-default
  options) plus the resolved cost-profile fingerprint, so a profile
  change invalidates cached answers exactly when it would change
  ``explain()``'s plan.

Tokens enumerate dataclass fields dynamically: adding a field to
``ExecutionPolicy`` / ``LaunchConfig`` / ``CostCalibration`` changes the
token automatically — there is no per-field list here to forget to
update (and the invalidation-matrix test enforces coverage anyway).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.request import CompareRequest
    from repro.gpu.cost import CostCalibration
    from repro.pixelbox.common import LaunchConfig
    from repro.pixelbox.kernel import ExecutionPolicy

__all__ = [
    "calibration_fingerprint",
    "config_token",
    "merge_key",
    "pairs_key",
    "policy_token",
    "request_key",
    "shard_key",
]


def _field_token(obj) -> str:
    """``field=value`` pairs for every dataclass field, in field order."""
    parts = []
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, enum.Enum):
            value = value.value
        parts.append(f"{f.name}={value!r}")
    return "|".join(parts)


def policy_token(policy: "ExecutionPolicy") -> str:
    """Canonical serialization of an :class:`ExecutionPolicy`."""
    return _field_token(policy)


def config_token(config: "LaunchConfig") -> str:
    """Canonical serialization of a :class:`LaunchConfig`."""
    return _field_token(config)


def calibration_fingerprint(calibration: "CostCalibration | None") -> str:
    """Fingerprint of the effective cost profile (``"modeled"`` if none).

    Folded into request keys so answers cached under one profile are
    never served after the profile — and therefore backend resolution
    and ``explain()``'s plan — changes.
    """
    if calibration is None:
        return "modeled"
    return _digest("calibration", (_field_token(calibration),))


def _digest(prefix: str, tokens: Iterable[str]) -> str:
    h = hashlib.sha256()
    for token in tokens:
        h.update(token.encode())
        h.update(b"\x00")
    return f"{prefix}:{h.hexdigest()}"


def shard_key(
    digest: str,
    lo: int,
    hi: int,
    policy: "ExecutionPolicy",
    config: "LaunchConfig",
) -> str:
    """Key for one shard's result over a content-addressed bundle."""
    return _digest(
        "shard",
        (digest, f"{lo}:{hi}", policy_token(policy), config_token(config)),
    )


def merge_key(
    digest: str, policy: "ExecutionPolicy", config: "LaunchConfig"
) -> str:
    """Key for a fully assembled result over a content-addressed bundle."""
    return _digest("merge", (digest, policy_token(policy), config_token(config)))


def request_key(request: "CompareRequest", extra: Iterable[str] = ()) -> str:
    """Key for a front-door request: canonical JSON + context tokens.

    ``extra`` carries whatever resolution context the caller folds in
    beyond the request itself (calibration fingerprint, service base
    options) — anything that could change the answer without changing
    the request.
    """
    return _digest("request", (request.to_json(), *extra))


def pairs_key(pairs, config: "LaunchConfig", extra: Iterable[str] = ()) -> str:
    """Key for a raw pair list + launch config (the service submit path).

    Hashes each polygon's int64 vertex array directly — equivalent in
    identity to the WKT the wire protocol carries, without building the
    strings.
    """
    h = hashlib.sha256(b"pairs-v1")
    for p, q in pairs:
        h.update(p.vertices.tobytes())
        h.update(b"\x01")
        h.update(q.vertices.tobytes())
        h.update(b"\x02")
    return _digest("request", (h.hexdigest(), config_token(config), *extra))
