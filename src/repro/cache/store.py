"""Bounded-memory LRU stores shared by every result-cache tier.

One store implementation backs all three tiers of the result cache
(worker shard results, coordinator merges, front-door requests): a
thread-safe LRU keyed by content-derived strings (see
:mod:`repro.cache.keys`), evicting least-recently-used entries once a
configurable byte budget is exceeded.  Values are opaque to the store —
the tier that owns the store is responsible for copying mutable values
on the way in and out (see :mod:`repro.cache.values`).

:class:`SingleFlight` is the companion stampede guard: concurrent
callers asking for the same missing key share one computation instead
of racing to fill the cache N times.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import CacheError

__all__ = ["CacheSnapshot", "CacheStore", "LRUCacheStore", "SingleFlight"]


@dataclass(frozen=True, slots=True)
class CacheSnapshot:
    """Point-in-time counters for one cache store."""

    name: str
    hits: int
    misses: int
    insertions: int
    evictions: int
    entries: int
    current_bytes: int
    max_bytes: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
        }


@runtime_checkable
class CacheStore(Protocol):
    """What every result-cache tier expects from its store."""

    def get(self, key: str) -> Any | None: ...

    def contains(self, key: str) -> bool: ...

    def put(self, key: str, value: Any, nbytes: int) -> None: ...

    def clear(self) -> None: ...

    def snapshot(self) -> CacheSnapshot: ...


class LRUCacheStore:
    """Thread-safe LRU cache bounded by a byte budget.

    Parameters
    ----------
    max_bytes:
        Byte budget; inserting past it evicts least-recently-used
        entries until the total fits again.  Must be positive — a tier
        that wants caching off simply does not construct a store.
    name:
        Label carried into :class:`CacheSnapshot` so metrics can tell
        tiers apart (``"worker.shard"``, ``"service.request"``, ...).
    """

    def __init__(self, max_bytes: int, name: str = "cache") -> None:
        if max_bytes <= 0:
            raise CacheError(f"cache byte budget must be > 0, got {max_bytes}")
        self.name = name
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0

    def get(self, key: str) -> Any | None:
        """The cached value, freshened in LRU order; ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def contains(self, key: str) -> bool:
        """Membership test that touches neither counters nor LRU order.

        ``explain()`` uses this to predict a hit without perturbing the
        cache it is describing.
        """
        with self._lock:
            return key in self._entries

    def put(self, key: str, value: Any, nbytes: int) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries over budget.

        A value larger than the whole budget is silently not stored —
        caching it would just evict everything else for a single entry.
        """
        if nbytes < 0:
            raise CacheError(f"entry size cannot be negative, got {nbytes}")
        nbytes = int(nbytes)
        if nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            self._insertions += 1
            while self._bytes > self.max_bytes and self._entries:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry; counters other than ``entries`` survive."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> CacheSnapshot:
        with self._lock:
            return CacheSnapshot(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                entries=len(self._entries),
                current_bytes=self._bytes,
                max_bytes=self.max_bytes,
            )


class _Flight:
    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key computation dedup for concurrent threads.

    ``do(key, fn)`` runs ``fn`` in exactly one of the threads that ask
    for ``key`` concurrently; the others block until the leader finishes
    and then share its result (or its exception).  Each completed flight
    is forgotten, so a later call with the same key computes again —
    persistence is the cache store's job, not this guard's.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}

    def do(self, key: str, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """Returns ``(value, leader)`` — ``leader`` is True for the
        thread that actually ran ``fn``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, False
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.value, True
