"""Copy/size helpers for the values the result-cache tiers store.

The stores hold plain values; these helpers keep the tiers honest about
aliasing (cached arrays must never be mutated by callers) and about the
byte accounting the LRU budget runs on.
"""

from __future__ import annotations

import numpy as np

from repro.pixelbox.common import KernelStats
from repro.pixelbox.kernel import BatchAreas

__all__ = [
    "areas_nbytes",
    "copy_areas",
    "copy_shard_result",
    "shard_result_nbytes",
]

# Rough per-entry bookkeeping charge (key string, dict/object headers) so
# many tiny entries still count against the budget.
_ENTRY_OVERHEAD = 256


def copy_areas(areas: BatchAreas) -> BatchAreas:
    """A deep copy safe to hand to a caller (or keep in a store)."""
    return BatchAreas(
        intersection=areas.intersection.copy(),
        union=areas.union.copy(),
        area_p=areas.area_p.copy(),
        area_q=areas.area_q.copy(),
        stats=KernelStats(**areas.stats.as_dict()),
    )


def areas_nbytes(areas: BatchAreas) -> int:
    """Byte charge for one cached :class:`BatchAreas`."""
    return (
        areas.intersection.nbytes
        + areas.union.nbytes
        + areas.area_p.nbytes
        + areas.area_q.nbytes
        + _ENTRY_OVERHEAD
    )


def copy_shard_result(result: tuple[np.ndarray, dict]) -> tuple[np.ndarray, dict]:
    """Deep copy of a shard-tier ``(intersection, stats_dict)`` entry."""
    inter, stats = result
    return inter.copy(), dict(stats)


def shard_result_nbytes(result: tuple[np.ndarray, dict]) -> int:
    """Byte charge for one cached shard result."""
    inter, _ = result
    return inter.nbytes + _ENTRY_OVERHEAD
