"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro list-experiments
    repro backends [--json]
    repro run fig7 [--full]
    repro run-all [--full]
    repro generate-suite [--scale 0.02] [--root DIR]
    repro compare DIR_A DIR_B [--no-migration] [--backend NAME] [--hosts ...]
    repro explain REQUEST.json
    repro serve [--backend NAME] [--port N | --stdio] [--metrics]
    repro worker [--host H] [--port N] [--max-tables N]
    repro cache {stats,clear} [--host H] [--port N]
    repro stats [--prometheus] [--host H] [--port N]
    repro trace show FILE
    repro calibrate [--output FILE] [--quick]

Every comparison-shaped subcommand parses into the same declarative
:class:`repro.api.CompareRequest` the library and the service protocol
use — the CLI is a thin adapter over that one spec.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SCCG / PixelBox reproduction (VLDB 2012): cross-compare "
            "pathology polygon sets and regenerate the paper's experiments"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="list experiment ids")

    bck = sub.add_parser(
        "backends", help="list registered execution backends"
    )
    bck.add_argument(
        "--json", action="store_true",
        help="machine-readable listing (names + structured capabilities)",
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. fig7")
    run.add_argument(
        "--full", action="store_true",
        help="full-size workload (slower, closer to the paper's scale)",
    )

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--full", action="store_true")

    gen = sub.add_parser("generate-suite", help="materialize the 18 datasets")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--root", type=Path, default=None)

    cmp_ = sub.add_parser("compare", help="cross-compare two result sets")
    cmp_.add_argument("dir_a", type=Path)
    cmp_.add_argument("dir_b", type=Path)
    cmp_.add_argument("--no-migration", action="store_true")
    cmp_.add_argument(
        "--backend",
        default="batch",
        help=(
            "execution backend for the aggregator (see `repro backends`; "
            "'auto' picks by cost model)"
        ),
    )
    cmp_.add_argument(
        "--hosts",
        default=None,
        help=(
            "comma-separated worker addresses for --backend cluster "
            "(host:port,...); default REPRO_CLUSTER_HOSTS or local "
            "loopback workers"
        ),
    )
    cmp_.add_argument(
        "--workers", type=int, default=None,
        help="worker count for pooled backends (multiprocess/auto)",
    )
    cmp_.add_argument(
        "--cache", action="store_true",
        help=(
            "enable the content-addressed result cache (request + "
            "backend tiers); cached hits are bit-for-bit identical"
        ),
    )
    cmp_.add_argument(
        "--trace", action="store_true",
        help="record a request-scoped span tree (implied by --trace-out)",
    )
    cmp_.add_argument(
        "--trace-out", type=Path, default=None,
        help=(
            "append span + lifecycle events as JSONL to this file "
            "(render it with `repro trace show`)"
        ),
    )

    exp = sub.add_parser(
        "explain",
        help="print the resolved execution plan of a request spec, "
        "without executing it",
    )
    exp.add_argument(
        "request", type=Path,
        help="JSON CompareRequest spec (see repro.api.CompareRequest)",
    )

    srv = sub.add_parser(
        "serve",
        help="run the async comparison service (JSON lines over TCP/stdio)",
    )
    srv.add_argument(
        "--backend",
        default="batch",
        help="warm execution backend the service pools (see `repro backends`)",
    )
    srv.add_argument(
        "--workers", type=int, default=None,
        help="worker count for pooled backends (multiprocess/auto)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (0 binds an ephemeral port, announced on stdout)",
    )
    srv.add_argument(
        "--stdio", action="store_true",
        help="serve one JSON-lines session on stdin/stdout instead of TCP",
    )
    srv.add_argument(
        "--max-queue", type=int, default=256,
        help="admission control: pending requests beyond this are rejected",
    )
    srv.add_argument(
        "--max-batch-pairs", type=int, default=None,
        help="cap pairs per coalesced dispatch (default: cost model decides)",
    )
    srv.add_argument(
        "--coalesce-window", type=float, default=0.002,
        help="seconds to wait for more requests to merge into a dispatch",
    )
    srv.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request timeout in seconds",
    )
    srv.add_argument(
        "--hosts",
        default=None,
        help=(
            "worker addresses for --backend cluster (host:port,...); "
            "default REPRO_CLUSTER_HOSTS or local loopback workers"
        ),
    )
    srv.add_argument(
        "--cache", action="store_true",
        help="enable the content-addressed request cache (repeat requests "
        "served without a backend dispatch)",
    )
    srv.add_argument(
        "--cache-bytes", type=int, default=64 * 2**20,
        help="byte budget per cache tier (LRU eviction past it)",
    )
    srv.add_argument(
        "--metrics", action="store_true",
        help=(
            "expose a Prometheus /metrics HTTP endpoint; its address is "
            "announced as `repro-serve metrics HOST PORT`"
        ),
    )
    srv.add_argument(
        "--metrics-host", default="127.0.0.1",
        help="bind address of the /metrics endpoint",
    )
    srv.add_argument(
        "--metrics-port", type=int, default=0,
        help="TCP port of the /metrics endpoint (0 binds an ephemeral port)",
    )

    wrk = sub.add_parser(
        "worker",
        help="serve ChunkKernel.run_shard shards to a cluster coordinator",
    )
    wrk.add_argument("--host", default="127.0.0.1")
    wrk.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 binds an ephemeral port, announced on stdout)",
    )
    wrk.add_argument(
        "--max-tables", type=int, default=8,
        help="LRU bound on resident content-addressed table bundles",
    )
    wrk.add_argument(
        "--substrate", choices=("auto", "numpy", "numba"), default="auto",
        help=(
            "chunk-kernel substrate for shards (auto: compiled when the "
            "repro[numba] extra is installed, NumPy otherwise)"
        ),
    )
    wrk.add_argument(
        "--result-cache-bytes", type=int, default=None,
        help=(
            "byte budget of the worker's content-addressed shard-result "
            "cache (0 disables; default 64 MiB)"
        ),
    )

    cch = sub.add_parser(
        "cache",
        help="inspect or clear the caches of a running comparison server",
    )
    cch.add_argument(
        "action", choices=("stats", "clear"),
        help="stats: print per-tier counters; clear: drop every tier",
    )
    cch.add_argument("--host", default="127.0.0.1")
    cch.add_argument("--port", type=int, default=8765)

    sts = sub.add_parser(
        "stats",
        help="print a running comparison server's metrics snapshot",
    )
    sts.add_argument(
        "--prometheus", action="store_true",
        help="Prometheus text exposition instead of the JSON snapshot",
    )
    sts.add_argument("--host", default="127.0.0.1")
    sts.add_argument("--port", type=int, default=8765)

    trc = sub.add_parser(
        "trace",
        help="inspect trace files recorded with --trace-out",
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    trc_show = trc_sub.add_parser(
        "show", help="pretty-print the span tree of a trace JSONL file"
    )
    trc_show.add_argument("file", type=Path, help="trace JSONL file")

    cal = sub.add_parser(
        "calibrate",
        help="fit cost-model constants from timed runs into a JSON profile",
    )
    cal.add_argument(
        "--output", type=Path, default=Path("benchmarks/reports/cost_profile.json"),
        help="profile path (point REPRO_COST_PROFILE here to activate it)",
    )
    cal.add_argument(
        "--quick", action="store_true",
        help="smaller calibration workload (noisier constants, faster)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list-experiments":
        from repro.experiments.registry import experiment_names

        for name in experiment_names():
            print(name)
        return 0

    if args.command == "backends":
        from repro.backends import (
            available_backends,
            backend_availability,
            get_backend,
        )

        if args.json:
            import json

            listing = []
            for name in available_backends():
                reason = backend_availability(name)
                if reason is not None:
                    listing.append(
                        {"name": name, "available": False, "reason": reason}
                    )
                    continue
                backend = get_backend(name)
                listing.append(
                    {
                        "name": name,
                        "available": True,
                        "description": backend.description,
                        "capabilities": backend.capabilities().as_dict(),
                    }
                )
                backend.close()
            print(json.dumps(listing, indent=2))
            return 0
        for name in available_backends():
            reason = backend_availability(name)
            if reason is not None:
                print(f"{name:14s} [{'unavailable':24s}] {reason}")
                continue
            backend = get_backend(name)
            caps = backend.capabilities()
            print(f"{name:14s} [{caps.summary():24s}] {backend.description}")
            if caps.notes:
                print(f"{'':14s} {'':26s} {caps.notes}")
            backend.close()
        return 0

    if args.command == "run":
        from repro.experiments.registry import run_experiment

        result = run_experiment(args.experiment, quick=not args.full)
        print(result.render())
        return 0

    if args.command == "run-all":
        from repro.experiments.registry import EXPERIMENTS, run_experiment

        for name in EXPERIMENTS:
            print(run_experiment(name, quick=not args.full).render())
            print()
        return 0

    if args.command == "generate-suite":
        from repro.data.datasets import generate_dataset, suite_specs
        from repro.experiments.common import data_root

        root = args.root or data_root()
        for spec in suite_specs(scale=args.scale):
            dir_a, _ = generate_dataset(spec, root)
            print(f"{spec.name}: {spec.tiles} tiles -> {dir_a.parent}")
        return 0

    if args.command == "compare":
        from repro.api import Session, request_from_cli

        request = request_from_cli(
            args.dir_a,
            args.dir_b,
            backend=args.backend,
            hosts=args.hosts,
            migration=not args.no_migration,
            workers=args.workers,
            cache=args.cache,
            trace=args.trace,
            trace_out=str(args.trace_out) if args.trace_out else None,
        )
        with Session(request.options) as session:
            result = session.run(request)
        print(
            f"J' = {result.jaccard_mean:.4f} over "
            f"{result.intersecting_pairs} intersecting pairs "
            f"({result.tiles} tiles, {result.wall_seconds:.2f}s, "
            f"{result.throughput / 1e6:.2f} MB/s)"
        )
        print(
            f"missing polygons: {result.missing_a} of {result.count_a} "
            f"in A, {result.missing_b} of {result.count_b} in B"
        )
        if result.trace_id is not None:
            print(f"trace: {result.trace_id}", end="")
            if args.trace_out:
                print(f" -> {args.trace_out}", end="")
            print()
        return 0

    if args.command == "explain":
        import json

        from repro.api import CompareRequest, explain
        from repro.errors import ReproError

        try:
            text = args.request.read_text()
        except OSError as exc:
            print(f"cannot read request spec: {exc}", file=sys.stderr)
            return 1
        try:
            plan = explain(CompareRequest.from_json(text))
        except ReproError as exc:
            print(f"request does not resolve: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(plan.as_dict(), indent=2))
        return 0

    if args.command == "serve":
        import asyncio

        from repro.api import CompareOptions
        from repro.service import ServiceConfig, serve

        # The service's execution substrate is the same spec `repro
        # compare` parses into; ServiceConfig adds only the serving
        # knobs (admission, coalescing, timeouts).
        backend_options = {}
        if args.workers is not None:
            backend_options["workers"] = args.workers
        compare_options = CompareOptions(
            backend=args.backend,
            backend_options=backend_options,
            hosts=args.hosts,
            cache=args.cache,
            cache_bytes=args.cache_bytes,
        )
        config = ServiceConfig.from_options(
            compare_options,
            max_queue=args.max_queue,
            max_batch_pairs=args.max_batch_pairs,
            coalesce_window=args.coalesce_window,
            default_timeout=args.timeout,
        )
        try:
            asyncio.run(
                serve(
                    config,
                    host=args.host,
                    port=args.port,
                    stdio=args.stdio,
                    metrics=args.metrics,
                    metrics_host=args.metrics_host,
                    metrics_port=args.metrics_port,
                )
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return 0

    if args.command == "worker":
        from repro.cluster import ShardWorker
        from repro.cluster.worker import DEFAULT_RESULT_CACHE_BYTES

        cache_bytes = args.result_cache_bytes
        if cache_bytes is None:
            cache_bytes = DEFAULT_RESULT_CACHE_BYTES
        worker = ShardWorker(
            host=args.host,
            port=args.port,
            max_tables=args.max_tables,
            substrate=args.substrate,
            result_cache_bytes=cache_bytes,
        )
        worker._bind()
        host, port = worker.address
        print(f"repro-worker ready {host} {port}", flush=True)
        try:
            worker.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            worker.stop()
        return 0

    if args.command == "cache":
        import json

        from repro.errors import ServiceError
        from repro.service import ServiceClient

        try:
            with ServiceClient(host=args.host, port=args.port) as client:
                if args.action == "clear":
                    client.cache_clear()
                    print("caches cleared")
                    return 0
                stats = client.stats()
                print(
                    json.dumps(
                        {
                            "request_cache_hits": stats.get(
                                "request_cache_hits", 0
                            ),
                            "request_cache_misses": stats.get(
                                "request_cache_misses", 0
                            ),
                            "caches": stats.get("caches", {}),
                        },
                        indent=2,
                    )
                )
        except (OSError, ServiceError) as exc:
            print(f"cannot reach server: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "stats":
        import json

        from repro.errors import ServiceError
        from repro.service import ServiceClient

        try:
            with ServiceClient(host=args.host, port=args.port) as client:
                if args.prometheus:
                    sys.stdout.write(client.metrics())
                else:
                    print(json.dumps(client.stats(), indent=2))
        except (OSError, ServiceError) as exc:
            print(f"cannot reach server: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "trace":
        from repro.obs.render import render_trace_file

        try:
            with open(args.file, encoding="utf-8") as fh:
                text = render_trace_file(fh)
        except OSError as exc:
            print(f"cannot read trace file: {exc}", file=sys.stderr)
            return 1
        if not text.strip():
            print(f"no spans in {args.file}", file=sys.stderr)
            return 1
        print(text)
        return 0

    if args.command == "calibrate":
        from repro.gpu.calibrate import run_calibration, write_profile

        profile = run_calibration(quick=args.quick)
        write_profile(profile, args.output)
        print(f"cost profile -> {args.output}")
        print(f"  export REPRO_COST_PROFILE={args.output.resolve()}")
        return 0

    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":
    sys.exit(main())
