"""Distributed shard cluster: ``ChunkKernel.run_shard`` across hosts.

The multiprocess backend proved the workload shards cleanly on one
machine; this package lifts the same scatter-gather onto sockets so the
comparison service can scale past a single host without new kernel
code.  Layering, beneath :mod:`repro.service`:

    service (queue + coalescer)  ->  ClusterBackend (coordinator)
        ->  wire protocol (binary frames, content-addressed tables)
            ->  repro worker (TCP)  ->  ChunkKernel.run_shard

* :mod:`repro.cluster.wire` — length-prefixed binary frames; CSR edge
  tables travel once per worker per table version;
* :mod:`repro.cluster.worker` — the ``repro worker`` server: table
  cache + the one shared kernel entry point;
* :mod:`repro.cluster.scheduler` — scatter/gather with straggler
  speculation and deterministic first-result-wins merge;
* :mod:`repro.cluster.coordinator` — :class:`ClusterBackend`, one more
  entry in the backend registry (bit-for-bit parity enforced by the
  same harness as every local executor);
* :mod:`repro.cluster.loopback` — N workers behind real 127.0.0.1
  sockets for CI and the parity suite.
"""

from __future__ import annotations

from repro.cluster.coordinator import ClusterBackend, WorkerClient, parse_hosts
from repro.cluster.loopback import LoopbackCluster
from repro.cluster.scheduler import ScheduleReport, Shard, ShardScheduler
from repro.cluster.worker import ShardWorker

__all__ = [
    "ClusterBackend",
    "LoopbackCluster",
    "ScheduleReport",
    "Shard",
    "ShardScheduler",
    "ShardWorker",
    "WorkerClient",
    "parse_hosts",
]
