"""The cluster coordinator: one more ``Backend``, shards served remotely.

``ClusterBackend`` generalizes the multiprocess backend's
scatter-gather to workers behind sockets.  The division of labor is
identical — route pairs, build the CSR edge tables once, scatter
contiguous shard index ranges, gather intersection slices, derive
unions — only the transport changes:

* tables travel over the binary wire protocol **once per worker per
  table version** (content-addressed by :func:`repro.cluster.wire.bundle_digest`,
  cached worker-side, re-sent only after eviction);
* shards are driven by :class:`repro.cluster.scheduler.ShardScheduler`,
  which owns straggler speculation, worker failure re-dispatch, and the
  deterministic first-result-wins merge;
* shard size comes from the cycle cost model
  (:func:`repro.gpu.cost.recommend_shard_pairs`), so transport overhead
  stays amortized exactly the way process spin-up is for the local pool.

With no hosts configured the backend self-hosts a loopback cluster
(worker threads behind real sockets on 127.0.0.1), so
``get_backend("cluster")`` works anywhere — including the registry-
introspecting parity harness — without multi-host infrastructure.
Degraded modes degrade further, never wrong: a dead worker's shards are
re-dispatched, and when every worker is gone the coordinator runs the
remaining shards in-process through the same
:meth:`~repro.pixelbox.kernel.ChunkKernel.run_shard` entry point.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    BackendLifecycle,
    Pairs,
)
from repro.cache import (
    LRUCacheStore,
    areas_nbytes,
    copy_areas,
    merge_key,
    shard_key,
)
from repro.cluster import wire
from repro.cluster.scheduler import (
    Shard,
    ShardOutcome,
    ShardScheduler,
)
from repro.cluster.worker import TABLE_FIELDS
from repro.errors import ClusterConfigError, ClusterError
from repro.gpu.cost import recommend_shard_pairs
from repro.obs.events import EVENTS
from repro.obs.trace import activate, current_context, current_tracer
from repro.pixelbox.common import KernelStats, LaunchConfig
from repro.pixelbox.kernel import BatchAreas, ChunkKernel, shard_policy
from repro.pixelbox.vectorized import EdgeTable

__all__ = ["ClusterBackend", "WorkerClient", "parse_hosts"]

# Worker health backoff: after ``f`` consecutive failures a worker sits
# out ``min(_BACKOFF_CAP, _BACKOFF_BASE * 2**(f-1))`` seconds.
_BACKOFF_BASE = 0.5
_BACKOFF_CAP = 30.0


def parse_hosts(hosts) -> list[tuple[str, int]]:
    """``"h1:p1,h2:p2"`` (or a list of such) -> validated address pairs."""
    if hosts is None:
        return []
    if isinstance(hosts, str):
        items = [h.strip() for h in hosts.split(",") if h.strip()]
    else:
        items = [str(h).strip() for h in hosts]
    parsed: list[tuple[str, int]] = []
    for item in items:
        host, sep, port = item.rpartition(":")
        if not sep or not host:
            raise ClusterConfigError(
                f"worker address {item!r} is not 'host:port'"
            )
        try:
            port_num = int(port)
        except ValueError:
            raise ClusterConfigError(
                f"worker address {item!r} has a non-numeric port"
            ) from None
        if not 0 < port_num < 65536:
            raise ClusterConfigError(
                f"worker address {item!r} has an out-of-range port"
            )
        parsed.append((host, port_num))
    return parsed


class WorkerClient:
    """Coordinator-side handle for one worker: socket, cache view, health."""

    def __init__(
        self, host: str, port: int, connect_timeout: float, io_timeout: float
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        # Serializes whole request/response exchanges: a stale
        # speculative call that survived the abort sweep must drain its
        # exchange before the next request may touch the socket —
        # interleaved frames would desynchronize the stream.
        self._io_lock = threading.Lock()
        #: Digests this client believes are resident on the worker.
        self.pushed: set[str] = set()
        #: Capabilities the worker advertised in HELLO_ACK (trace
        #: propagation is only used when listed — old workers interop).
        self.features: set[str] = set()
        #: Actual table transmissions (the transfer counter the protocol
        #: tests assert: at most one per worker per table version).
        self.tables_sent = 0
        self.failures = 0
        self.down_until = 0.0
        self.inflight = False

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def available(self) -> bool:
        """Whether health backoff currently allows dispatching here."""
        return time.monotonic() >= self.down_until

    def note_failure(self) -> None:
        self.failures += 1
        delay = min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** (self.failures - 1)))
        self.down_until = time.monotonic() + delay
        EVENTS.record(
            "worker.backoff",
            worker=str(self),
            failures=self.failures,
            delay=delay,
        )

    def note_success(self) -> None:
        self.failures = 0
        self.down_until = 0.0

    # ------------------------------------------------------------------
    # Connection
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Ensure a live connection (HELLO handshake on fresh sockets)."""
        with self._lock:
            if self._sock is not None:
                return
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                sock.settimeout(self.io_timeout)
                wire.send_frame(sock, wire.MsgType.HELLO, {"version": 1})
                msgtype, header, _ = wire.recv_frame(sock)
            except (OSError, ClusterError) as exc:
                raise ClusterError(
                    f"cannot reach worker {self}: {exc}"
                ) from None
            if msgtype != wire.MsgType.HELLO_ACK:
                sock.close()
                raise ClusterError(
                    f"worker {self} answered HELLO with frame {msgtype}"
                )
            # The worker's cache survives our reconnects; trust its view.
            cached = header.get("cached", [])
            self.pushed = {d for d in cached if isinstance(d, str)}
            features = header.get("features", [])
            self.features = {
                f for f in features if isinstance(f, str)
            } if isinstance(features, list) else set()
            self._sock = sock

    def abort(self) -> None:
        """Hard-close the connection (unblocks a stale in-flight read)."""
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def close(self) -> None:
        self.abort()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _call(
        self, msgtype: int, header: dict, arrays: dict | None = None
    ) -> tuple[int, dict, dict]:
        """One request/response exchange; failures reset the socket."""
        # inflight covers the whole exchange *including* connect: the
        # coordinator's post-request abort sweep must see a speculative
        # call that is still handshaking, or its socket would leak into
        # the next request mid-exchange.
        self.inflight = True
        try:
            with self._io_lock:
                self.connect()
                sock = self._sock
                if sock is None:
                    raise ClusterError(f"worker {self} is not connected")
                try:
                    wire.send_frame(sock, msgtype, header, arrays)
                    return wire.recv_frame(sock)
                except (OSError, ConnectionError) as exc:
                    self.abort()
                    raise ClusterError(
                        f"worker {self} failed: {exc}"
                    ) from None
                except ClusterError:
                    self.abort()
                    raise
        finally:
            self.inflight = False

    def ensure_tables(self, digest: str, bundle: dict[str, np.ndarray]) -> None:
        """Make ``bundle`` resident on the worker, sending it at most once.

        A cheap ``HAS_TABLES`` probe resolves disagreements between this
        client's ``pushed`` view and the worker's actual cache (eviction,
        worker restart) without ever paying a redundant table transfer.
        """
        if digest in self.pushed:
            return
        msgtype, header, _ = self._call(
            wire.MsgType.HAS_TABLES, {"digest": digest}
        )
        if msgtype == wire.MsgType.TABLES_ACK and header.get("cached"):
            with self._lock:
                self.pushed.add(digest)
            return
        msgtype, header, _ = self._call(
            wire.MsgType.PUT_TABLES, {"digest": digest}, bundle
        )
        if msgtype != wire.MsgType.TABLES_ACK:
            raise ClusterError(
                f"worker {self} rejected tables: {header.get('error')}"
            )
        self.tables_sent += 1
        with self._lock:
            self.pushed.add(digest)

    def run_shard(
        self,
        digest: str,
        bundle: dict[str, np.ndarray],
        shard: Shard,
        config: LaunchConfig,
    ) -> ShardOutcome:
        """Execute one shard remotely (re-sending tables after eviction)."""
        header = {
            "digest": digest,
            "lo": shard.lo,
            "hi": shard.hi,
            "task": shard.index,
            "config": wire.config_to_wire(config),
        }
        # Trace propagation, gated on the worker's advertised features:
        # the ambient context (set by the scheduler's dispatch span)
        # crosses the wire as two ids; the worker's finished spans come
        # back in the reply and are adopted into the same tracer.
        ctx = current_context()
        if ctx is not None and wire.FEATURE_TRACE in self.features:
            header["trace"] = wire.trace_to_wire(ctx[0], ctx[1])
        for attempt in (0, 1):
            msgtype, reply, arrays = self._call(wire.MsgType.RUN_SHARD, header)
            if msgtype == wire.MsgType.SHARD_RESULT:
                inter = arrays.get("inter")
                if inter is None or len(inter) != shard.size:
                    raise ClusterError(
                        f"worker {self} returned a malformed shard result"
                    )
                spans = reply.get("spans")
                tracer = current_tracer()
                if spans and tracer is not None:
                    try:
                        tracer.adopt(spans)
                    except (KeyError, TypeError, ValueError):
                        pass  # malformed remote spans never fail a shard
                return ShardOutcome(
                    inter=inter.astype(np.int64, copy=False),
                    stats=KernelStats(**reply.get("stats", {})),
                )
            if (
                msgtype == wire.MsgType.ERROR
                and reply.get("kind") == "missing-tables"
                and attempt == 0
            ):
                # Evicted (or a fresh worker behind the same address):
                # re-send the bundle and retry once.
                with self._lock:
                    self.pushed.discard(digest)
                self.ensure_tables(digest, bundle)
                continue
            raise ClusterError(
                f"worker {self} failed shard [{shard.lo}, {shard.hi}): "
                f"{reply.get('error', f'frame {msgtype}')}"
            )
        raise ClusterError(f"worker {self} kept missing tables")  # pragma: no cover

    def stats(self) -> dict:
        """The worker's observability counters (``STATS`` round-trip)."""
        msgtype, header, _ = self._call(wire.MsgType.STATS, {})
        if msgtype != wire.MsgType.STATS_REPLY:
            raise ClusterError(
                f"worker {self} answered STATS with frame {msgtype}"
            )
        stats = header.get("stats")
        return stats if isinstance(stats, dict) else {}


def _table_arrays(table: EdgeTable, prefix: str) -> dict[str, np.ndarray]:
    return {f"{prefix}.{f}": getattr(table, f) for f in TABLE_FIELDS}


class ClusterBackend(BackendLifecycle):
    """Shard dispatch to remote ``repro worker`` processes.

    Registered as ``"cluster"`` via :mod:`repro.backends.cluster`.

    Parameters
    ----------
    hosts:
        Worker addresses (``"host:port"`` list or comma string).  Default
        comes from ``REPRO_CLUSTER_HOSTS``; with neither, the backend
        self-hosts a loopback cluster of ``loopback_workers`` local
        worker threads.
    min_pairs:
        Below this many pairs the request runs in-process (dispatch
        latency would dominate), identical to the multiprocess backend.
    shard_pairs:
        Pairs per shard; ``None`` asks the cost model per request.
    speculate:
        Enable straggler re-dispatch.
    shard_cache_bytes, merge_cache_bytes:
        Coordinator-side result caches, both off (``0``) by default and
        enabled by ``CompareOptions(cache=True)``.  The shard cache
        settles shards without dispatching them (keyed exactly like the
        workers' own result caches); the merge cache returns a fully
        assembled request straight from the bundle digest.
    """

    name = "cluster"
    description = "shards on remote workers over the binary wire protocol"

    def __init__(
        self,
        hosts=None,
        min_pairs: int = 256,
        shard_pairs: int | None = None,
        speculate: bool = True,
        speculation_delay: float = 0.2,
        loopback_workers: int | None = None,
        connect_timeout: float = 5.0,
        io_timeout: float = 60.0,
        shard_cache_bytes: int = 0,
        merge_cache_bytes: int = 0,
    ):
        if hosts is None:
            hosts = os.environ.get("REPRO_CLUSTER_HOSTS") or None
        self._explicit_hosts = hosts is not None
        self._addresses = parse_hosts(hosts)
        if min_pairs < 1:
            raise ClusterConfigError(
                f"min_pairs must be >= 1, got {min_pairs}"
            )
        if shard_pairs is not None and shard_pairs < 1:
            raise ClusterConfigError(
                f"shard_pairs must be >= 1 or None, got {shard_pairs}"
            )
        if loopback_workers is not None and loopback_workers < 1:
            raise ClusterConfigError(
                f"loopback_workers must be >= 1, got {loopback_workers}"
            )
        self.min_pairs = min_pairs
        self.shard_pairs = shard_pairs
        self.speculate = speculate
        self.speculation_delay = speculation_delay
        self.loopback_workers = loopback_workers
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._clients: list[WorkerClient] | None = None
        self._loopback = None
        self._shard_cache = (
            LRUCacheStore(shard_cache_bytes, name="coordinator.shard")
            if shard_cache_bytes > 0
            else None
        )
        self._merge_cache = (
            LRUCacheStore(merge_cache_bytes, name="coordinator.merge")
            if merge_cache_bytes > 0
            else None
        )
        self._lock = threading.Lock()
        # One remote dispatch at a time: scheduler threads own the worker
        # sockets for the duration of a request (mirrors the exclusive
        # device contract of the pipeline's GpuDevice).
        self._dispatch_lock = threading.Lock()
        #: Scheduler report of the most recent remote dispatch.
        self.last_report = None

    # ------------------------------------------------------------------
    # Capabilities / lifecycle
    # ------------------------------------------------------------------
    def capabilities(self) -> BackendCapabilities:
        n = len(self._addresses) or (
            self.loopback_workers or _default_loopback_workers()
        )
        return BackendCapabilities(
            persistent_pooling=True,
            stateful_lifecycle=True,
            configurable_workers=True,
            max_workers=n,
            remote=self._explicit_hosts,
            notes="hosts via REPRO_CLUSTER_HOSTS or hosts=...; "
            "loopback workers when unset",
        )

    def _ensure_clients(self) -> list[WorkerClient]:
        with self._lock:
            if self._clients is None:
                addresses = self._addresses
                if not addresses:
                    from repro.cluster.loopback import LoopbackCluster

                    self._loopback = LoopbackCluster(
                        self.loopback_workers or _default_loopback_workers()
                    )
                    addresses = [w.address for w in self._loopback.workers]
                self._clients = [
                    WorkerClient(
                        host, port, self.connect_timeout, self.io_timeout
                    )
                    for host, port in addresses
                ]
            return self._clients

    def warm(self) -> list[str]:
        """Connect and handshake every reachable worker; returns addresses.

        With explicitly configured hosts, zero reachable workers is a
        hard :class:`~repro.errors.ClusterError` — the service calls this
        at startup, and a cluster that cannot serve anything should fail
        there, not on the first request.
        """
        alive: list[str] = []
        for client in self._ensure_clients():
            try:
                client.connect()
                alive.append(str(client))
            except ClusterError:
                client.note_failure()
        if not alive and self._explicit_hosts:
            raise ClusterError(
                "no cluster workers reachable at "
                + ",".join(str(c) for c in self._clients)
            )
        return alive

    def close(self) -> None:
        """Drop every connection and any owned loopback workers."""
        with self._lock:
            clients, self._clients = self._clients, None
            loopback, self._loopback = self._loopback, None
        for client in clients or []:
            client.close()
        if loopback is not None:
            loopback.close()

    def cache_stats(self) -> dict[str, dict]:
        """Snapshots of the coordinator-side caches that are enabled."""
        out: dict[str, dict] = {}
        if self._shard_cache is not None:
            out["coordinator.shard"] = self._shard_cache.snapshot().as_dict()
        if self._merge_cache is not None:
            out["coordinator.merge"] = self._merge_cache.snapshot().as_dict()
        return out

    def clear_caches(self) -> None:
        """Drop every coordinator-side cached result."""
        if self._shard_cache is not None:
            self._shard_cache.clear()
        if self._merge_cache is not None:
            self._merge_cache.clear()

    def worker_stats(self) -> dict[str, dict]:
        """Per-worker observability counters, keyed by address.

        Queries each connected worker over ``STATS`` — the counters the
        workers always kept (shard-cache hits, shards run, table churn)
        but the coordinator used to drop.  Workers in health backoff or
        failing the round-trip are skipped, never raised: stats must
        stay readable while a request is degrading.
        """
        with self._lock:
            clients = list(self._clients or [])
        out: dict[str, dict] = {}
        for client in clients:
            if not client.available():
                continue
            try:
                out[str(client)] = client.stats()
            except ClusterError:
                continue
        return out

    @property
    def table_transfers(self) -> int:
        """Total table bundles actually transmitted (all workers)."""
        with self._lock:
            clients = list(self._clients or [])
        return sum(c.tables_sent for c in clients)

    # ------------------------------------------------------------------
    # The backend contract
    # ------------------------------------------------------------------
    def compare_pairs(
        self, pairs: Pairs, config: LaunchConfig | None = None
    ) -> BatchAreas:
        cfg = config or LaunchConfig()
        n = len(pairs)
        stats = KernelStats()
        if n == 0:
            zero = np.zeros(0, dtype=np.int64)
            return BatchAreas(zero, zero.copy(), zero.copy(), zero.copy(), stats)

        policy = shard_policy()
        kernel = ChunkKernel(policy, cfg)
        # Tracing: scheduler threads do not inherit this thread's
        # ContextVar, so capture the tracer and the parent span id here
        # and re-activate them inside the shard closures.
        tracer = current_tracer()
        ctx = current_context()
        trace_parent = ctx[1] if ctx is not None else None
        a_p, a_q, boxes, has_box = kernel.route_pairs(pairs)
        if tracer is not None:
            with tracer.span("cluster.build_tables", pairs=n):
                table_p = EdgeTable.build([p for p, _ in pairs])
                table_q = EdgeTable.build([q for _, q in pairs])
        else:
            table_p = EdgeTable.build([p for p, _ in pairs])
            table_q = EdgeTable.build([q for _, q in pairs])

        def local_run(shard: Shard) -> ShardOutcome:
            part = KernelStats()
            if tracer is not None:
                with activate(tracer, trace_parent):
                    with tracer.span(
                        "cluster.local_shard", lo=shard.lo, hi=shard.hi
                    ):
                        inter, _ = kernel.run_shard(
                            table_p, table_q, boxes, has_box,
                            shard.lo, shard.hi, part,
                        )
            else:
                inter, _ = kernel.run_shard(
                    table_p, table_q, boxes, has_box, shard.lo, shard.hi, part
                )
            return ShardOutcome(inter=inter, stats=part)

        if n < self.min_pairs:
            outcome = local_run(Shard(0, 0, n))
            stats.merge(outcome.stats)
            union = kernel.finalize_union(
                outcome.inter, None, a_p, a_q, has_box
            )
            return BatchAreas(outcome.inter, union, a_p, a_q, stats)

        bundle = {
            **_table_arrays(table_p, "p"),
            **_table_arrays(table_q, "q"),
            "boxes": boxes,
            "has_box": has_box,
        }
        digest = wire.bundle_digest(bundle)
        if self._merge_cache is not None:
            mkey = merge_key(digest, policy, cfg)
            cached = self._merge_cache.get(mkey)
            if tracer is not None:
                EVENTS.record(
                    "cache.lookup",
                    tier="coordinator.merge",
                    hit=cached is not None,
                    trace_id=tracer.trace_id,
                )
            if cached is not None:
                return copy_areas(cached)
        with self._dispatch_lock:
            clients = self._live_clients(digest, bundle)
            shards = self._plan_shards(pairs, cfg, n, max(1, len(clients)))

            if not clients:
                inter = np.zeros(n, dtype=np.int64)
                for shard in shards:
                    outcome = local_run(shard)
                    inter[shard.lo : shard.hi] = outcome.inter
                    stats.merge(outcome.stats)
                union = kernel.finalize_union(inter, None, a_p, a_q, has_box)
                return BatchAreas(inter, union, a_p, a_q, stats)

            def _call_remote(client: WorkerClient, shard: Shard) -> ShardOutcome:
                try:
                    outcome = client.run_shard(digest, bundle, shard, cfg)
                except ClusterError:
                    client.note_failure()
                    raise
                client.note_success()
                return outcome

            def remote_run(client: WorkerClient, shard: Shard) -> ShardOutcome:
                if tracer is not None:
                    # Scheduler worker threads start without the request
                    # context; re-establish it so the dispatch span (and
                    # the remote worker's spans, via the wire context)
                    # stitch under the request tree.
                    with activate(tracer, trace_parent):
                        with tracer.span(
                            "cluster.remote_shard",
                            worker=str(client),
                            lo=shard.lo,
                            hi=shard.hi,
                        ):
                            return _call_remote(client, shard)
                return _call_remote(client, shard)

            cache_lookup = cache_store = None
            if self._shard_cache is not None:

                def cache_lookup(shard: Shard) -> ShardOutcome | None:
                    hit = self._shard_cache.get(
                        shard_key(digest, shard.lo, shard.hi, policy, cfg)
                    )
                    if tracer is not None:
                        EVENTS.record(
                            "cache.lookup",
                            tier="coordinator.shard",
                            hit=hit is not None,
                            trace_id=tracer.trace_id,
                        )
                    if hit is None:
                        return None
                    return ShardOutcome(
                        inter=hit.inter.copy(),
                        stats=KernelStats(**hit.stats.as_dict()),
                    )

                def cache_store(shard: Shard, outcome: ShardOutcome) -> None:
                    entry = ShardOutcome(
                        inter=outcome.inter.copy(),
                        stats=KernelStats(**outcome.stats.as_dict()),
                    )
                    self._shard_cache.put(
                        shard_key(digest, shard.lo, shard.hi, policy, cfg),
                        entry,
                        entry.inter.nbytes + 256,
                    )

            scheduler = ShardScheduler(
                remote_run,
                local_run,
                speculate=self.speculate,
                speculation_delay=self.speculation_delay,
                cache_lookup=cache_lookup,
                cache_store=cache_store,
            )
            outcomes, report = scheduler.execute(shards, clients)
            self.last_report = report
            # Stale speculative calls may still hold a socket; reset
            # those connections so the next request starts clean
            # (worker-side table caches survive reconnects).
            for client in clients:
                if client.inflight:
                    client.abort()

        inter = np.zeros(n, dtype=np.int64)
        for shard in shards:  # deterministic merge order
            outcome = outcomes[shard.index]
            inter[shard.lo : shard.hi] = outcome.inter
            stats.merge(outcome.stats)
        union = kernel.finalize_union(inter, None, a_p, a_q, has_box)
        result = BatchAreas(inter, union, a_p, a_q, stats)
        if self._merge_cache is not None:
            entry = copy_areas(result)
            self._merge_cache.put(mkey, entry, areas_nbytes(entry))
        return result

    # ------------------------------------------------------------------
    def _live_clients(
        self, digest: str, bundle: dict[str, np.ndarray]
    ) -> list[WorkerClient]:
        """Connected workers with the tables resident (sent at most once).

        Probes and table pushes run concurrently (one thread per
        worker): the multi-MB PUT_TABLES of a new table version — and
        the connect timeout of a dead host — must cost one worker's
        latency, not the sum over the fleet.
        """
        candidates = [
            c for c in self._ensure_clients() if c.available()
        ]
        outcomes: dict[int, bool] = {}

        def push(idx: int, client: WorkerClient) -> None:
            try:
                client.ensure_tables(digest, bundle)
            except ClusterError:
                client.note_failure()
                outcomes[idx] = False
            else:
                client.note_success()
                outcomes[idx] = True

        if len(candidates) == 1:
            push(0, candidates[0])
        else:
            threads = [
                threading.Thread(target=push, args=(i, c), daemon=True)
                for i, c in enumerate(candidates)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return [c for i, c in enumerate(candidates) if outcomes.get(i)]

    def _plan_shards(
        self, pairs: Pairs, cfg: LaunchConfig, n: int, workers: int
    ) -> list[Shard]:
        if self.shard_pairs is not None:
            size = self.shard_pairs
        else:
            from repro.backends.auto import profile_pairs

            mean_edges, mean_pixels = profile_pairs(pairs)
            size = recommend_shard_pairs(
                n,
                mean_edges,
                mean_pixels,
                cfg.threshold,
                cfg.block_size,
                workers=workers,
            )
        return [
            Shard(index, lo, min(lo + size, n))
            for index, lo in enumerate(range(0, n, size))
        ]


def _default_loopback_workers() -> int:
    from repro.backends.multiprocess import default_workers

    return max(2, min(4, default_workers()))
