"""Loopback transport: a real TCP cluster inside one process.

CI (and the parity harness) cannot assume multi-host infrastructure, but
the cluster subsystem must still be exercised end to end — framing,
content-addressed caching, scheduling, failure paths.  A
:class:`LoopbackCluster` starts N :class:`~repro.cluster.worker.ShardWorker`
instances on ephemeral 127.0.0.1 ports, each serving in a daemon thread
behind a *real* socket, so every byte crosses the same code path a
multi-host deployment uses; only the network distance is fake.

Worker threads share the GIL, so loopback is a correctness transport,
not a performance one — throughput numbers come from
``benchmarks/test_cluster_scaling.py``, which spawns real ``repro
worker`` processes.
"""

from __future__ import annotations

from repro.cluster.worker import ShardWorker

__all__ = ["LoopbackCluster"]


class LoopbackCluster:
    """N in-process shard workers behind real loopback sockets."""

    def __init__(self, workers: int = 2, max_tables: int = 8):
        self.workers: list[ShardWorker] = []
        try:
            for _ in range(workers):
                self.workers.append(
                    ShardWorker(max_tables=max_tables).start()
                )
        except Exception:
            self.close()
            raise

    @property
    def hosts(self) -> list[str]:
        """``host:port`` strings for :class:`ClusterBackend`'s ``hosts``."""
        return [f"{h}:{p}" for h, p in (w.address for w in self.workers)]

    def close(self) -> None:
        for worker in self.workers:
            worker.stop()
        self.workers = []

    def __enter__(self) -> "LoopbackCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
