"""Shard scheduling: scatter, straggler speculation, first-result-wins.

Once a request's tables are resident on the workers, what remains is a
classic scatter-gather with two failure modes the transport layer must
own (Teodoro et al. and Leng et al. both report them dominating
multi-node runs):

* **dead workers** — a connection that errors mid-shard returns its
  shard to the pending queue and takes the worker out of this run; the
  remaining workers (or, when none remain, the coordinator itself)
  finish the request, so a kill never changes results or hangs a caller;
* **stragglers** — a worker that has drained the pending queue and finds
  shards still outstanding re-dispatches the longest-running one
  (bounded copies per shard).  Every execution of a shard computes the
  same bits — the kernel is deterministic — so *first result wins* is a
  deterministic merge, and the loser's work counters are discarded so
  the request's :class:`~repro.pixelbox.common.KernelStats` are
  identical to any local backend's.

The scheduler is transport-agnostic: it drives ``run(worker, shard)``
callables and never touches sockets, which is what makes it unit-testable
with plain functions standing in for remote workers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.obs.events import EVENTS
from repro.pixelbox.common import KernelStats

__all__ = ["Shard", "ShardOutcome", "ScheduleReport", "ShardScheduler"]

# A shard may run on at most this many workers at once (the original
# dispatch plus speculative copies).
_MAX_COPIES = 2


@dataclass(frozen=True, slots=True)
class Shard:
    """One contiguous slice of the request's pair indices."""

    index: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


@dataclass(slots=True)
class ShardOutcome:
    """The winning execution of one shard."""

    inter: np.ndarray
    stats: KernelStats


@dataclass(slots=True)
class ScheduleReport:
    """What one scatter-gather run did (surfaced for tests/metrics)."""

    shards: int = 0
    dispatches: int = 0
    speculative: int = 0
    worker_failures: int = 0
    local_shards: int = 0
    cache_hits: int = 0
    workers_used: list[str] = field(default_factory=list)


class _ShardState:
    __slots__ = ("shard", "running", "started", "done")

    def __init__(self, shard: Shard):
        self.shard = shard
        self.running = 0
        self.started: float | None = None
        self.done = False


class ShardScheduler:
    """Scatter ``shards`` across ``workers``; gather exactly one result each.

    Parameters
    ----------
    run:
        ``run(worker, shard) -> ShardOutcome`` — blocking remote call.
        Raising marks the worker failed for this run and requeues the
        shard.
    local_run:
        Fallback ``local_run(shard) -> ShardOutcome`` executed on the
        scheduling thread for shards no live worker can take.
    speculate:
        Enable straggler re-dispatch (on by default; the benchmark can
        disable it to measure pure scatter-gather).
    speculation_delay:
        A shard only becomes a speculation candidate once it has run at
        least this long *and* at least ``speculation_factor`` times the
        median completed-shard duration — an idle worker must not clone
        work that is merely milliseconds from finishing.
    cache_lookup, cache_store:
        Optional shard-result cache hooks.  ``cache_lookup(shard)``
        returning an outcome settles the shard before any dispatch
        (counted in ``ScheduleReport.cache_hits``); ``cache_store(shard,
        outcome)`` records each winning execution.  The scheduler stays
        transport-agnostic — key derivation lives with the caller, which
        knows the bundle digest and policy.
    """

    def __init__(
        self,
        run: Callable[[Any, Shard], ShardOutcome],
        local_run: Callable[[Shard], ShardOutcome],
        speculate: bool = True,
        speculation_delay: float = 0.2,
        speculation_factor: float = 2.0,
        cache_lookup: Callable[[Shard], ShardOutcome | None] | None = None,
        cache_store: Callable[[Shard, ShardOutcome], None] | None = None,
    ):
        self._run = run
        self._local_run = local_run
        self._speculate = speculate
        self._speculation_delay = speculation_delay
        self._speculation_factor = speculation_factor
        self._cache_lookup = cache_lookup
        self._cache_store = cache_store

    def execute(
        self, shards: list[Shard], workers: list[Any]
    ) -> tuple[dict[int, ShardOutcome], ScheduleReport]:
        """Run every shard to completion; returns outcomes by shard index."""
        report = ScheduleReport(shards=len(shards))
        results: dict[int, ShardOutcome] = {}
        if not shards:
            return results, report
        todo = list(shards)
        if self._cache_lookup is not None:
            todo = []
            for shard in shards:
                hit = self._cache_lookup(shard)
                if hit is not None:
                    results[shard.index] = hit
                    report.cache_hits += 1
                else:
                    todo.append(shard)
            if not todo:
                return results, report
        lock = threading.Condition()
        pending: list[_ShardState] = [_ShardState(s) for s in todo]
        states = list(pending)
        remaining = len(todo)
        durations: list[float] = []  # completed-shard wall times

        def take_next() -> _ShardState | None:
            """Next pending shard, else a speculation candidate, else None."""
            nonlocal remaining
            with lock:
                while True:
                    if remaining == 0:
                        return None
                    if pending:
                        # A state only re-enters pending after every copy
                        # failed (settle resets its clock).
                        state = pending.pop(0)
                        state.running += 1
                        state.started = time.monotonic()
                        report.dispatches += 1
                        EVENTS.record(
                            "shard.dispatch",
                            shard=state.shard.index,
                            lo=state.shard.lo,
                            hi=state.shard.hi,
                            copies=state.running,
                        )
                        return state
                    if self._speculate:
                        now = time.monotonic()
                        bar = self._speculation_delay
                        if durations:
                            median = sorted(durations)[len(durations) // 2]
                            bar = max(bar, self._speculation_factor * median)
                        candidates = [
                            s
                            for s in states
                            if not s.done
                            and 0 < s.running < _MAX_COPIES
                            and now - s.started >= bar
                        ]
                        if candidates:
                            state = min(
                                candidates,
                                key=lambda s: (s.started, s.shard.index),
                            )
                            state.running += 1
                            report.speculative += 1
                            report.dispatches += 1
                            EVENTS.record(
                                "shard.speculate",
                                shard=state.shard.index,
                                copies=state.running,
                            )
                            return state
                    # Nothing to take right now: wait for completions or
                    # failures to change the picture.
                    if not lock.wait(timeout=0.05):
                        continue

        def settle(state: _ShardState, outcome: ShardOutcome | None) -> None:
            """Record one execution's end (win, loss, or failure)."""
            nonlocal remaining
            won = False
            with lock:
                state.running -= 1
                if outcome is not None and not state.done:
                    state.done = True
                    won = True
                    results[state.shard.index] = outcome
                    if state.started is not None:
                        durations.append(time.monotonic() - state.started)
                    remaining -= 1
                elif outcome is None and not state.done:
                    if state.running == 0:
                        # Every copy failed: back to the queue.
                        state.started = None
                        pending.insert(0, state)
                        EVENTS.record(
                            "shard.redispatch", shard=state.shard.index
                        )
                lock.notify_all()
            if won and self._cache_store is not None:
                self._cache_store(state.shard, outcome)

        def worker_loop(worker: Any) -> None:
            while True:
                state = take_next()
                if state is None:
                    return
                try:
                    outcome = self._run(worker, state.shard)
                except Exception:  # noqa: BLE001 - any escape kills the
                    # worker for this run, never the request: the shard
                    # MUST be settled or the gather loop could wait on a
                    # copy no thread is running.
                    with lock:
                        report.worker_failures += 1
                    EVENTS.record(
                        "worker.failure",
                        worker=str(worker),
                        shard=state.shard.index,
                    )
                    settle(state, None)
                    return  # worker is out of this run
                settle(state, outcome)

        threads = []
        for worker in workers:
            t = threading.Thread(
                target=worker_loop, args=(worker,), daemon=True
            )
            t.start()
            threads.append(t)
            report.workers_used.append(str(worker))

        # Gather: wake on every completion; when every worker thread has
        # exited with shards still unfinished, finish them locally.
        while True:
            with lock:
                if remaining == 0:
                    break
                alive = any(t.is_alive() for t in threads)
                if not alive:
                    # No thread can still be executing anything, so a
                    # nonzero running count is stale bookkeeping from a
                    # thread that died without settling — include those
                    # shards too; waiting on them would hang forever.
                    leftovers = [s for s in states if not s.done]
                else:
                    lock.wait(timeout=0.05)
                    continue
            for state in leftovers:
                EVENTS.record(
                    "shard.local_fallback", shard=state.shard.index
                )
                outcome = self._local_run(state.shard)
                report.local_shards += 1
                settle(state, outcome)
        for t in threads:
            t.join(timeout=0.05)
        return results, report
