"""Length-prefixed binary wire protocol of the shard cluster.

The service front-end speaks JSON lines because humans and foreign
clients do; between the coordinator and its shard workers the traffic is
CSR edge tables and int64 area vectors, so the cluster speaks binary:

``frame := magic "RC" | version u8 | msgtype u8 | payload_len u32 | payload``
``payload := header_len u32 | header (UTF-8 JSON) | blob_0 | blob_1 | ...``

The JSON header carries the small structured fields (digests, shard
bounds, launch config, stats) plus a manifest describing each binary
blob — ``[name, dtype, shape, nbytes]`` in transmission order — so NumPy
arrays travel as raw bytes with zero re-encoding on either side.

Every read is defensive: a bad magic, an unknown version, an oversized
frame, a manifest that disagrees with the payload length — each raises
:class:`~repro.errors.ClusterProtocolError` instead of desynchronizing
the stream, so garbage from a confused client is classified as a clean
client error and the peer survives.

Table payloads are **content-addressed**: :func:`bundle_digest` hashes
the dtype/shape/bytes of every array, and that digest is the cache key
on the worker side — the reason the coordinator can ship the CSR tables
once per worker per table version instead of once per shard dispatch.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from typing import Any

import numpy as np

from repro.errors import ClusterProtocolError

__all__ = [
    "MsgType",
    "MAX_FRAME_BYTES",
    "FEATURE_TRACE",
    "bundle_digest",
    "pack_frame",
    "unpack_payload",
    "send_frame",
    "recv_frame",
    "config_to_wire",
    "config_from_wire",
    "trace_to_wire",
    "trace_from_wire",
]

_MAGIC = b"RC"
_VERSION = 1
_HEADER_STRUCT = struct.Struct(">2sBBI")

# One frame carries at most this many payload bytes (a whole-slide tile
# pair's tables are a few MB; a GiB means a corrupt length field).
MAX_FRAME_BYTES = 1 << 30


class MsgType:
    """Frame type tags (u8 on the wire)."""

    HELLO = 1
    HELLO_ACK = 2
    PUT_TABLES = 3
    TABLES_ACK = 4
    HAS_TABLES = 5
    RUN_SHARD = 6
    SHARD_RESULT = 7
    PING = 8
    PONG = 9
    STATS = 10
    STATS_REPLY = 11
    SHUTDOWN = 12
    ERROR = 13

    ALL = frozenset(range(1, 14))


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def bundle_digest(arrays: dict[str, np.ndarray]) -> str:
    """Content hash of an array bundle (the worker-side cache key).

    Covers names, dtypes, shapes, and raw bytes, so two requests with
    identical tables share one cache entry and any difference — even a
    config-induced start-box change — yields a new table version.
    """
    h = hashlib.sha256(b"repro-cluster-v1")
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(arr.dtype.str.encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def pack_frame(
    msgtype: int,
    header: dict[str, Any] | None = None,
    arrays: dict[str, np.ndarray] | None = None,
) -> bytes:
    """One complete wire frame for ``header`` + ``arrays``."""
    header = dict(header or {})
    blobs: list[bytes] = []
    manifest: list[list] = []
    for name, arr in (arrays or {}).items():
        arr = np.ascontiguousarray(arr)
        raw = arr.tobytes()
        manifest.append([name, arr.dtype.str, list(arr.shape), len(raw)])
        blobs.append(raw)
    header["arrays"] = manifest
    head = json.dumps(header, separators=(",", ":")).encode()
    payload = struct.pack(">I", len(head)) + head + b"".join(blobs)
    if len(payload) > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return (
        _HEADER_STRUCT.pack(_MAGIC, _VERSION, msgtype, len(payload)) + payload
    )


def unpack_payload(payload: bytes) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Decode one frame payload into ``(header, arrays)``."""
    if len(payload) < 4:
        raise ClusterProtocolError("truncated frame payload")
    (head_len,) = struct.unpack_from(">I", payload)
    if 4 + head_len > len(payload):
        raise ClusterProtocolError("frame header overruns payload")
    try:
        header = json.loads(payload[4 : 4 + head_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterProtocolError(f"unparseable frame header: {exc}") from None
    if not isinstance(header, dict):
        raise ClusterProtocolError("frame header must be a JSON object")
    manifest = header.pop("arrays", [])
    if not isinstance(manifest, list):
        raise ClusterProtocolError("frame manifest must be a list")
    arrays: dict[str, np.ndarray] = {}
    offset = 4 + head_len
    for entry in manifest:
        try:
            name, dtype, shape, nbytes = entry
            shape = tuple(int(s) for s in shape)
            nbytes = int(nbytes)
        except (TypeError, ValueError) as exc:
            raise ClusterProtocolError(
                f"malformed manifest entry {entry!r}: {exc}"
            ) from None
        if nbytes < 0 or offset + nbytes > len(payload):
            raise ClusterProtocolError("manifest blob overruns payload")
        try:
            dt = np.dtype(dtype)
            count = int(np.prod(shape, dtype=np.int64))
            if dt.hasobject or dt.itemsize * count != nbytes:
                raise ValueError(
                    f"dtype/shape disagree with {nbytes} blob bytes"
                )
            arrays[name] = (
                np.frombuffer(payload, dtype=dt, count=count, offset=offset)
                .reshape(shape)
                .copy()
            )
        except (TypeError, ValueError) as exc:
            raise ClusterProtocolError(
                f"undecodable blob {name!r}: {exc}"
            ) from None
        offset += nbytes
    return header, arrays


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(
    sock: socket.socket,
    msgtype: int,
    header: dict[str, Any] | None = None,
    arrays: dict[str, np.ndarray] | None = None,
) -> int:
    """Serialize and send one frame; returns the bytes transmitted."""
    frame = pack_frame(msgtype, header, arrays)
    sock.sendall(frame)
    return len(frame)


def recv_frame(
    sock: socket.socket,
) -> tuple[int, dict[str, Any], dict[str, np.ndarray]]:
    """Read one frame; returns ``(msgtype, header, arrays)``.

    Raises :class:`ClusterProtocolError` for anything that is not a
    well-formed frame and ``ConnectionError`` when the peer goes away.
    """
    head = _recv_exact(sock, _HEADER_STRUCT.size)
    magic, version, msgtype, length = _HEADER_STRUCT.unpack(head)
    if magic != _MAGIC:
        raise ClusterProtocolError(
            f"bad frame magic {magic!r} (not a repro-cluster peer?)"
        )
    if version != _VERSION:
        raise ClusterProtocolError(
            f"unsupported protocol version {version} (speaking {_VERSION})"
        )
    if msgtype not in MsgType.ALL:
        raise ClusterProtocolError(f"unknown message type {msgtype}")
    if length > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    header, arrays = unpack_payload(_recv_exact(sock, length))
    return msgtype, header, arrays


# ----------------------------------------------------------------------
# Launch-config transport
# ----------------------------------------------------------------------
_CONFIG_FIELDS = ("block_size", "pixel_threshold", "tight_mbr", "leaf_mode")


def config_to_wire(config) -> dict[str, Any]:
    """``LaunchConfig`` -> JSON-safe dict for the RUN_SHARD header."""
    return {f: getattr(config, f) for f in _CONFIG_FIELDS}


# ----------------------------------------------------------------------
# Trace-context transport (version-gated by capability advertisement)
# ----------------------------------------------------------------------
# Workers that understand trace propagation list this token in their
# HELLO_ACK ``features``; the coordinator only attaches a ``trace``
# header key (and only expects ``spans`` back) when the worker
# advertised it.  Old peers in either direction read headers with
# ``.get()`` and simply never see the extra keys — interop is free.
FEATURE_TRACE = "trace"


def trace_to_wire(trace_id: str, parent_id: str | None) -> dict[str, Any]:
    """A trace context as the RUN_SHARD header's ``trace`` value."""
    out: dict[str, Any] = {"id": trace_id}
    if parent_id is not None:
        out["parent"] = parent_id
    return out


def trace_from_wire(raw: Any) -> tuple[str, str | None] | None:
    """``trace`` header value -> ``(trace_id, parent_id)`` or ``None``.

    Malformed values are dropped, not fatal: tracing is observability,
    never worth failing a shard over.
    """
    if not isinstance(raw, dict):
        return None
    trace_id = raw.get("id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    parent = raw.get("parent")
    if parent is not None and not isinstance(parent, str):
        parent = None
    return (trace_id, parent)


def config_from_wire(raw: dict[str, Any] | None):
    """RUN_SHARD header dict -> ``LaunchConfig`` (validated)."""
    from repro.errors import ReproError
    from repro.pixelbox.common import LaunchConfig

    if raw is None:
        return LaunchConfig()
    if not isinstance(raw, dict) or set(raw) - set(_CONFIG_FIELDS):
        raise ClusterProtocolError(f"bad launch config on the wire: {raw!r}")
    try:
        return LaunchConfig(**raw)
    except (ReproError, TypeError) as exc:
        raise ClusterProtocolError(
            f"bad launch config on the wire: {exc}"
        ) from None
