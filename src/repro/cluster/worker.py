"""The shard worker: ``ChunkKernel.run_shard`` served over TCP.

A worker is deliberately dumb: it owns no scheduling policy, no pair
routing, no union algebra — exactly the same division of labor as the
multiprocess backend's pool workers, lifted onto a socket.  Its whole
contract is:

* **table cache** — ``PUT_TABLES`` installs a content-addressed array
  bundle (the CSR edge tables, start boxes, and routing mask of one
  request) under its digest; an LRU bound caps resident bundles, and a
  ``RUN_SHARD`` naming an evicted digest answers ``missing-tables`` so
  the coordinator re-sends instead of failing the request;
* **shard execution** — ``RUN_SHARD`` attaches the cached bundle and
  calls :meth:`repro.pixelbox.kernel.ChunkKernel.run_shard` under the
  shard policy over ``[lo, hi)``, returning the intersection slice plus
  the work counters.  No other kernel entry point exists here, so a
  remote shard is bit-for-bit one of the local backends' shards.

Each accepted connection is served by one thread, frames handled
sequentially per connection (the coordinator pipelines across workers,
not within one).  Protocol garbage answers with an ``ERROR`` frame when
a reply is still possible and always closes that connection — the
stream is out of sync — while the worker itself keeps serving everyone
else.
"""

from __future__ import annotations

import socket
import threading
from collections import OrderedDict

import numpy as np

from repro.cache import LRUCacheStore, copy_shard_result, shard_key, shard_result_nbytes
from repro.cluster import wire
from repro.errors import ClusterProtocolError, ReproError
from repro.obs.events import EVENTS
from repro.obs.trace import Tracer, activate
from repro.pixelbox.common import KernelStats
from repro.pixelbox.kernel import ChunkKernel, shard_policy
from repro.pixelbox.vectorized import EdgeTable

__all__ = ["DEFAULT_RESULT_CACHE_BYTES", "ShardWorker", "TABLE_FIELDS"]

# Default byte budget for the worker-side shard-result cache: big enough
# that speculation/re-dispatch of a live request always hits, small
# enough to be invisible next to the table cache itself.
DEFAULT_RESULT_CACHE_BYTES = 64 * 2**20

# Fields of one serialized EdgeTable, in manifest order (shared with the
# coordinator; mirrors the multiprocess backend's shared-memory layout).
TABLE_FIELDS = ("xs", "lo", "hi", "ys", "xlo", "xhi", "offsets")


def table_from_bundle(bundle: dict[str, np.ndarray], prefix: str) -> EdgeTable:
    """Rebuild one side's CSR edge table from a cached bundle."""
    return EdgeTable(*(bundle[f"{prefix}.{f}"] for f in TABLE_FIELDS))


class ShardWorker:
    """One cluster worker: table cache + ``run_shard`` over TCP.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    max_tables:
        LRU bound on resident table bundles.  Each bundle is one
        request's tables; a coordinator re-sends on ``missing-tables``,
        so eviction costs bandwidth, never correctness.
    substrate:
        What shards execute on: ``"auto"`` (default) uses the compiled
        (numba) kernel when the extra is installed on this host and the
        NumPy engines otherwise; ``"numpy"``/``"numba"`` pin it.
        Results are bit-for-bit identical either way — only wall-clock
        differs — so a heterogeneous cluster (some workers compiled,
        some not) stays exact.
    result_cache_bytes:
        Byte budget of the shard-result cache (LRU).  A ``RUN_SHARD``
        whose ``(bundle digest, range, policy, config)`` was computed
        before answers from the cache, which makes straggler
        speculation, failure re-dispatch, and service retries free.
        ``0`` disables result caching entirely.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_tables: int = 8,
        substrate: str = "auto",
        result_cache_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
    ):
        if max_tables < 1:
            raise ReproError(f"max_tables must be >= 1, got {max_tables}")
        if substrate not in ("auto", "numpy", "numba"):
            raise ReproError(
                f"substrate must be 'auto', 'numpy', or 'numba', got "
                f"{substrate!r}"
            )
        if substrate == "auto":
            from repro.backends.numba_backend import numba_unavailable_reason

            substrate = (
                "numba" if numba_unavailable_reason() is None else "numpy"
            )
        elif substrate == "numba":
            from repro.pixelbox import numba_kernel

            numba_kernel.require_numba()
        self.host = host
        self.substrate = substrate
        self.max_tables = max_tables
        self._tables: OrderedDict[str, dict[str, np.ndarray]] = OrderedDict()
        self._results = (
            LRUCacheStore(result_cache_bytes, name="worker.shard")
            if result_cache_bytes > 0
            else None
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        # Observability counters (asserted by the protocol tests).
        self.tables_received = 0
        self.tables_evicted = 0
        self.shards_run = 0
        self.shard_hits = 0
        self.protocol_errors = 0
        self._requested_port = port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid once listening)."""
        if self._listener is None:
            raise ReproError("worker is not listening yet")
        return self._listener.getsockname()[:2]

    def _bind(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(32)
        # Closing a listener does not wake a blocked accept() on Linux;
        # a short accept timeout lets the serve loop poll the stop flag
        # (accepted connections are blocking regardless).
        listener.settimeout(0.25)
        self._listener = listener

    def start(self) -> "ShardWorker":
        """Serve in a daemon thread (the loopback transport); returns self."""
        self._bind()
        self._thread = threading.Thread(
            target=self._serve_loop, name="repro-worker", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (the CLI path)."""
        self._bind()
        self._serve_loop()

    def stop(self) -> None:
        """Stop accepting, close the listener, and unblock the accept loop."""
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
            self._thread = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        listener = self._listener
        while not self._stop.is_set():
            try:
                conn, _addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:  # listener closed by stop()
                return
            conn.settimeout(None)  # connections block; only accept polls
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ] + [thread]

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                try:
                    msgtype, header, arrays = wire.recv_frame(conn)
                except ClusterProtocolError as exc:
                    # Garbage: answer cleanly if the socket still writes,
                    # then drop the connection — framing is unrecoverable.
                    with self._lock:
                        self.protocol_errors += 1
                    try:
                        wire.send_frame(
                            conn,
                            wire.MsgType.ERROR,
                            {"kind": "bad-request", "error": str(exc)},
                        )
                    except OSError:
                        pass
                    return
                except (ConnectionError, OSError):
                    return
                if not self._handle(conn, msgtype, header, arrays):
                    return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _handle(
        self,
        conn: socket.socket,
        msgtype: int,
        header: dict,
        arrays: dict[str, np.ndarray],
    ) -> bool:
        """Answer one frame; returns False to close the connection."""
        try:
            if msgtype == wire.MsgType.HELLO:
                wire.send_frame(
                    conn,
                    wire.MsgType.HELLO_ACK,
                    {
                        "version": 1,
                        "max_tables": self.max_tables,
                        "cached": self._cached_digests(),
                        # Capability advertisement: the coordinator only
                        # sends a trace context (and expects spans back)
                        # when this worker lists the feature.  Old
                        # coordinators ignore the key.
                        "features": [wire.FEATURE_TRACE],
                    },
                )
            elif msgtype == wire.MsgType.PING:
                wire.send_frame(conn, wire.MsgType.PONG, {})
            elif msgtype == wire.MsgType.STATS:
                wire.send_frame(
                    conn, wire.MsgType.STATS_REPLY, {"stats": self.stats()}
                )
            elif msgtype == wire.MsgType.HAS_TABLES:
                digest = header.get("digest")
                wire.send_frame(
                    conn,
                    wire.MsgType.TABLES_ACK,
                    {"digest": digest, "cached": self._touch(digest)},
                )
            elif msgtype == wire.MsgType.PUT_TABLES:
                self._put_tables(header, arrays)
                wire.send_frame(
                    conn,
                    wire.MsgType.TABLES_ACK,
                    {"digest": header.get("digest"), "cached": True},
                )
            elif msgtype == wire.MsgType.RUN_SHARD:
                self._run_shard(conn, header)
            elif msgtype == wire.MsgType.SHUTDOWN:
                wire.send_frame(conn, wire.MsgType.PONG, {})
                self.stop()
                return False
            else:
                raise ClusterProtocolError(
                    f"message type {msgtype} is not valid for a worker"
                )
        except (ClusterProtocolError, ReproError) as exc:
            with self._lock:
                self.protocol_errors += 1
            try:
                wire.send_frame(
                    conn,
                    wire.MsgType.ERROR,
                    {"kind": "bad-request", "error": str(exc)},
                )
            except OSError:
                return False
        except (ConnectionError, OSError):
            return False
        return True

    # ------------------------------------------------------------------
    # Table cache
    # ------------------------------------------------------------------
    def _cached_digests(self) -> list[str]:
        with self._lock:
            return list(self._tables)

    def _touch(self, digest: str | None) -> bool:
        with self._lock:
            if digest in self._tables:
                self._tables.move_to_end(digest)
                return True
            return False

    def _put_tables(self, header: dict, arrays: dict[str, np.ndarray]) -> None:
        digest = header.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ClusterProtocolError("PUT_TABLES needs a 'digest'")
        required = {f"p.{f}" for f in TABLE_FIELDS}
        required |= {f"q.{f}" for f in TABLE_FIELDS}
        required |= {"boxes", "has_box"}
        missing = required - set(arrays)
        if missing:
            raise ClusterProtocolError(
                f"PUT_TABLES bundle missing arrays: {sorted(missing)}"
            )
        with self._lock:
            self._tables[digest] = arrays
            self._tables.move_to_end(digest)
            self.tables_received += 1
            while len(self._tables) > self.max_tables:
                self._tables.popitem(last=False)
                self.tables_evicted += 1

    # ------------------------------------------------------------------
    # Shard execution
    # ------------------------------------------------------------------
    def _before_shard(self, header: dict) -> None:
        """Fault-injection hook for tests; production no-op."""

    def _run_shard(self, conn: socket.socket, header: dict) -> None:
        digest = header.get("digest")
        with self._lock:
            bundle = self._tables.get(digest)
            if bundle is not None:
                self._tables.move_to_end(digest)
        if bundle is None:
            wire.send_frame(
                conn,
                wire.MsgType.ERROR,
                {
                    "kind": "missing-tables",
                    "error": f"no cached tables for digest {digest!r}",
                    "digest": digest,
                },
            )
            return
        try:
            lo, hi = int(header["lo"]), int(header["hi"])
        except (KeyError, TypeError, ValueError):
            raise ClusterProtocolError(
                "RUN_SHARD needs integer 'lo' and 'hi'"
            ) from None
        n = len(bundle["has_box"])
        if not 0 <= lo <= hi <= n:
            raise ClusterProtocolError(
                f"shard [{lo}, {hi}) out of range for {n} pairs"
            )
        cfg = wire.config_from_wire(header.get("config"))
        self._before_shard(header)
        policy = shard_policy(substrate=self.substrate)
        key = shard_key(digest, lo, hi, policy, cfg)
        # Trace context shipped by a feature-aware coordinator: run the
        # shard under a local tracer seeded with the remote trace id and
        # return the finished span records in the reply header, where
        # the coordinator adopts them into one stitched tree.
        trace_ctx = wire.trace_from_wire(header.get("trace"))
        if trace_ctx is not None:
            trace_id, parent = trace_ctx
            tracer = Tracer(trace_id)
            with activate(tracer, parent):
                with tracer.span(
                    "worker.run_shard",
                    lo=lo,
                    hi=hi,
                    substrate=self.substrate,
                ) as span:
                    inter, stats_dict, hit = self._execute_shard(
                        bundle, lo, hi, policy, cfg, key
                    )
                    span.set(cache_hit=hit)
            EVENTS.record(
                "cache.lookup", tier="worker.shard", hit=hit,
                trace_id=trace_id,
            )
        else:
            tracer = None
            inter, stats_dict, hit = self._execute_shard(
                bundle, lo, hi, policy, cfg, key
            )
        reply = {
            "task": header.get("task"),
            "lo": lo,
            "hi": hi,
            "stats": stats_dict,
        }
        if tracer is not None:
            reply["spans"] = tracer.as_dicts()
        wire.send_frame(conn, wire.MsgType.SHARD_RESULT, reply, {"inter": inter})

    def _execute_shard(
        self, bundle: dict, lo: int, hi: int, policy, cfg, key: str
    ) -> tuple[np.ndarray, dict, bool]:
        """Serve one shard from the result cache or the kernel."""
        cached = self._results.get(key) if self._results is not None else None
        if cached is not None:
            inter, stats_dict = copy_shard_result(cached)
            with self._lock:
                self.shard_hits += 1
            return inter, stats_dict, True
        stats = KernelStats()
        kernel = ChunkKernel(policy, cfg)
        inter, _ = kernel.run_shard(
            table_from_bundle(bundle, "p"),
            table_from_bundle(bundle, "q"),
            bundle["boxes"],
            bundle["has_box"],
            lo,
            hi,
            stats,
        )
        stats_dict = stats.as_dict()
        with self._lock:
            self.shards_run += 1
        if self._results is not None:
            entry = copy_shard_result((inter, stats_dict))
            self._results.put(key, entry, shard_result_nbytes(entry))
        return inter, stats_dict, False

    def stats(self) -> dict:
        """Observability counters (also served over ``STATS``)."""
        with self._lock:
            cached = len(self._tables)
        out = {
            "cached_tables": cached,
            "tables_received": self.tables_received,
            "tables_evicted": self.tables_evicted,
            "shards_run": self.shards_run,
            "shard_hits": self.shard_hits,
            "protocol_errors": self.protocol_errors,
        }
        if self._results is not None:
            out["result_cache"] = self._results.snapshot().as_dict()
        return out
