"""Synthetic pathology data: nuclei shapes, tiles, and the 18-dataset suite.

Stands in for the paper's brain-tumor datasets (which are not publicly
available); calibrated to the published workload statistics — see
DESIGN.md's substitution table.
"""

from repro.data.datasets import (
    DEFAULT_SUITE_SCALE,
    DatasetSpec,
    generate_dataset,
    suite_specs,
)
from repro.data.perturb import PerturbModel
from repro.data.shapes import NucleusShape, rasterize_shape, sample_shape
from repro.data.stats import PolygonStats, dataset_stats, polygon_stats
from repro.data.synth import (
    SyntheticTile,
    TileSpec,
    generate_tile,
    generate_tile_pair,
)

__all__ = [
    "NucleusShape",
    "sample_shape",
    "rasterize_shape",
    "PerturbModel",
    "TileSpec",
    "SyntheticTile",
    "generate_tile",
    "generate_tile_pair",
    "DatasetSpec",
    "suite_specs",
    "generate_dataset",
    "DEFAULT_SUITE_SCALE",
    "PolygonStats",
    "polygon_stats",
    "dataset_stats",
]
