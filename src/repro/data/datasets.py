"""The 18-dataset synthetic suite mirroring the paper's evaluation data.

Paper §5.1: 18 real-world datasets from a brain tumor study; ~12 GiB of
raw text; average polygon ~150 pixels (sd ~100); around half a million
polygons per dataset on average; the smallest dataset has 20 polygon
files (~57k polygons), the largest 442 files (>4 million polygons).

This module defines a scaled replica: 18 specs whose *relative* sizes
follow the paper's description (a roughly geometric spread between the
named smallest and largest), scaled by ``scale`` so the default suite
generates in seconds instead of hours.  Generation is deterministic and
cached on disk in the :mod:`repro.io.tiles` layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.perturb import PerturbModel
from repro.data.synth import TileSpec, generate_tile
from repro.errors import DatasetError
from repro.io.polyfile import write_polygons
from repro.io.tiles import tile_name

__all__ = ["DatasetSpec", "suite_specs", "generate_dataset", "DEFAULT_SUITE_SCALE"]

DEFAULT_SUITE_SCALE = 0.02

# Paper-relative dataset sizes: (tiles, nuclei_per_tile_factor).  Tile
# counts follow the 20..442 file spread of §5.7; the third entry mirrors
# "oligoastroIII_1" (the profiling dataset with ~450k polygons per side).
_SUITE_TILES = [20, 36, 58, 74, 90, 110, 128, 150, 170, 196,
                224, 250, 278, 310, 340, 372, 406, 442]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """One dataset of the suite: many tiles, two result sets."""

    name: str
    tiles: int
    nuclei_per_tile: int
    tile_width: int = 512
    tile_height: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tiles < 1:
            raise DatasetError(f"dataset needs >= 1 tile, got {self.tiles}")
        if self.nuclei_per_tile < 1:
            raise DatasetError(
                f"dataset needs >= 1 nucleus per tile, got {self.nuclei_per_tile}"
            )

    @property
    def approx_polygons(self) -> int:
        """Rough polygon count per result set (overlaps merge a few)."""
        return self.tiles * self.nuclei_per_tile


def suite_specs(
    scale: float = DEFAULT_SUITE_SCALE, nuclei_per_tile: int = 48
) -> list[DatasetSpec]:
    """The 18 dataset specs at the given scale.

    ``scale`` multiplies tile counts (minimum 2 tiles); the default 0.02
    produces a laptop-size suite whose datasets keep the paper's relative
    ordering (the largest has ~22x the tiles of the smallest).
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    specs = []
    for i, tiles in enumerate(_SUITE_TILES):
        scaled = max(2, round(tiles * scale))
        specs.append(
            DatasetSpec(
                name=f"oligoastroIII_{i + 1}",
                tiles=scaled,
                nuclei_per_tile=nuclei_per_tile,
                seed=1000 + i,
            )
        )
    return specs


def generate_dataset(
    spec: DatasetSpec,
    root: str | Path,
    perturb: PerturbModel | None = None,
    force: bool = False,
) -> tuple[Path, Path]:
    """Materialize ``spec`` under ``root`` (idempotent unless ``force``).

    Returns ``(result_a_dir, result_b_dir)``.
    """
    root = Path(root)
    base = root / spec.name
    dir_a = base / "result_a"
    dir_b = base / "result_b"
    marker = base / ".complete"
    if marker.exists() and not force:
        return dir_a, dir_b
    dir_a.mkdir(parents=True, exist_ok=True)
    dir_b.mkdir(parents=True, exist_ok=True)
    # Tiles are laid out on a grid in the whole-slide coordinate space, so
    # polygons of different tiles never overlap spuriously when a whole
    # dataset is flattened into one table (the PostGIS-M comparison does
    # exactly that).
    grid_cols = max(1, int(spec.tiles ** 0.5 + 0.999))
    for t in range(spec.tiles):
        tile = generate_tile(
            TileSpec(
                width=spec.tile_width,
                height=spec.tile_height,
                nuclei=spec.nuclei_per_tile,
                seed=spec.seed * 100003 + t,
            ),
            perturb,
        )
        dx = (t % grid_cols) * spec.tile_width
        dy = (t // grid_cols) * spec.tile_height
        write_polygons(
            dir_a / tile_name(t), [p.translate(dx, dy) for p in tile.polygons_a]
        )
        write_polygons(
            dir_b / tile_name(t), [p.translate(dx, dy) for p in tile.polygons_b]
        )
    marker.write_text(f"tiles={spec.tiles}\n")
    return dir_a, dir_b
