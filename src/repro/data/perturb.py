"""Perturbation model: deriving the second segmentation result.

Cross-comparison in the paper evaluates how much two segmentations of the
*same* image differ (algorithm validation / parameter sensitivity, §2.1).
This model captures the dominant real-world differences between two runs:

* **boundary scale** — a different threshold grows or shrinks every
  boundary by a few percent (``grow_sd``);
* **localization jitter** — object centers move by a sub-pixel to
  few-pixel offset (``shift_sd``);
* **drop rate** — some objects are missed entirely (the paper's "missing
  polygons", excluded from J' but counted separately);
* **spurious rate** — some objects are hallucinated where the reference
  saw nothing.

The model is deterministic given the tile RNG, so datasets regenerate
bit-identically from their seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.shapes import NucleusShape, rasterize_shape, sample_shape
from repro.errors import DatasetError

__all__ = ["PerturbModel"]


@dataclass(frozen=True, slots=True)
class PerturbModel:
    """Stochastic transformation from result A's nuclei to result B's."""

    grow_sd: float = 0.06
    shift_sd: float = 0.8
    drop_rate: float = 0.04
    spurious_rate: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise DatasetError(f"drop rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.spurious_rate < 1.0:
            raise DatasetError(
                f"spurious rate must be in [0, 1), got {self.spurious_rate}"
            )

    def render(
        self,
        rng: np.random.Generator,
        shapes: list[NucleusShape],
        width: int,
        height: int,
    ) -> np.ndarray:
        """Rasterize the perturbed view of ``shapes`` onto a tile mask."""
        mask = np.zeros((height, width), dtype=bool)
        for shape in shapes:
            if rng.random() < self.drop_rate:
                continue
            grow = float(rng.normal(0.0, self.grow_sd))
            shift = (
                float(rng.normal(0.0, self.shift_sd)),
                float(rng.normal(0.0, self.shift_sd)),
            )
            mask |= rasterize_shape(shape, width, height, grow=grow, shift=shift)
        spurious = rng.binomial(max(len(shapes), 1), self.spurious_rate)
        for _ in range(spurious):
            cx = rng.uniform(2, width - 2)
            cy = rng.uniform(2, height - 2)
            ghost = sample_shape(rng, cx, cy, mean_radius=5.0, radius_sd=1.0)
            mask |= rasterize_shape(ghost, width, height)
        return mask
