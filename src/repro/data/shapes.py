"""Parametric nuclei shapes for the synthetic slide generator.

Segmented nuclei are roundish blobs with mild boundary irregularity
(paper Figure 3).  A nucleus is modeled as a star-convex shape in polar
form ``r(theta) = r0 * (1 + sum_k a_k * cos(k*theta + phi_k))`` — an
ellipse-like base with a few low-frequency harmonics — and rasterized on
the pixel grid by testing pixel centers against the radius function.

The default radius distribution is calibrated so rasterized areas match
the paper's dataset statistics (mean ~150 pixels, sd ~100; §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["NucleusShape", "sample_shape", "rasterize_shape"]

_HARMONICS = (2, 3, 5)


@dataclass(frozen=True, slots=True)
class NucleusShape:
    """A star-convex nucleus in polar form, centered at ``(cx, cy)``."""

    cx: float
    cy: float
    r0: float
    eccentricity: float
    angle: float
    amps: tuple[float, ...]
    phases: tuple[float, ...]

    def radius(self, theta: np.ndarray) -> np.ndarray:
        """Boundary radius at polar angle ``theta`` (vectorized)."""
        rel = theta - self.angle
        # Elliptic base radius.
        a = self.r0 * (1.0 + self.eccentricity)
        b = self.r0 / (1.0 + self.eccentricity)
        base = (a * b) / np.sqrt(
            (b * np.cos(rel)) ** 2 + (a * np.sin(rel)) ** 2
        )
        wobble = np.zeros_like(base)
        for k, amp, phase in zip(_HARMONICS, self.amps, self.phases):
            wobble += amp * np.cos(k * rel + phase)
        return base * np.maximum(1.0 + wobble, 0.1)


def sample_shape(
    rng: np.random.Generator,
    cx: float,
    cy: float,
    mean_radius: float = 6.5,
    radius_sd: float = 2.0,
    wobble: float = 0.08,
) -> NucleusShape:
    """Draw a random nucleus at ``(cx, cy)``.

    The defaults yield areas around 150 pixels with a long right tail,
    matching the paper's published dataset statistics.
    """
    if mean_radius <= 0:
        raise DatasetError(f"mean radius must be positive, got {mean_radius}")
    r0 = max(1.5, rng.normal(mean_radius, radius_sd))
    return NucleusShape(
        cx=cx,
        cy=cy,
        r0=float(r0),
        eccentricity=float(rng.uniform(0.0, 0.35)),
        angle=float(rng.uniform(0.0, np.pi)),
        amps=tuple(rng.uniform(0.0, wobble) for _ in _HARMONICS),
        phases=tuple(rng.uniform(0.0, 2 * np.pi) for _ in _HARMONICS),
    )


def rasterize_shape(
    shape: NucleusShape,
    width: int,
    height: int,
    grow: float = 0.0,
    shift: tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """Boolean mask of the shape on a ``height x width`` tile grid.

    ``grow`` scales the radius (the perturbation model's dilate/erode)
    and ``shift`` translates the center — both used to derive the second
    segmentation result from the same underlying nucleus.
    """
    cx = shape.cx + shift[0]
    cy = shape.cy + shift[1]
    reach = shape.r0 * 2.5 * (1.0 + abs(grow)) + 2
    x0 = max(int(cx - reach), 0)
    x1 = min(int(cx + reach) + 1, width)
    y0 = max(int(cy - reach), 0)
    y1 = min(int(cy + reach) + 1, height)
    if x0 >= x1 or y0 >= y1:
        return np.zeros((height, width), dtype=bool)
    xs = np.arange(x0, x1) + 0.5
    ys = np.arange(y0, y1) + 0.5
    dx = xs[None, :] - cx
    dy = ys[:, None] - cy
    dist = np.hypot(dx, dy)
    theta = np.arctan2(dy, dx)
    inside = dist < shape.radius(theta) * (1.0 + grow)
    mask = np.zeros((height, width), dtype=bool)
    mask[y0:y1, x0:x1] = inside
    return mask
