"""Dataset statistics: verifying the synthetic data matches the paper.

Paper §5.1 reports the workload characteristics that drive every
experiment: average polygon area ~150 pixels with standard deviation
~100, about half a million polygons per dataset.  These helpers compute
the same statistics for any polygon collection or generated dataset so
the calibration is checkable (and checked, in the test-suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geometry.polygon import RectilinearPolygon
from repro.io.polyfile import read_polygons
from repro.io.tiles import list_tile_files

__all__ = ["PolygonStats", "polygon_stats", "dataset_stats"]


@dataclass(frozen=True, slots=True)
class PolygonStats:
    """Summary statistics of a polygon population."""

    count: int
    area_mean: float
    area_sd: float
    area_max: int
    vertices_mean: float

    def __str__(self) -> str:
        return (
            f"{self.count} polygons, area {self.area_mean:.1f} "
            f"+/- {self.area_sd:.1f} px (max {self.area_max}), "
            f"{self.vertices_mean:.1f} vertices avg"
        )


def polygon_stats(polygons: list[RectilinearPolygon]) -> PolygonStats:
    """Statistics of an in-memory polygon list."""
    if not polygons:
        return PolygonStats(0, 0.0, 0.0, 0, 0.0)
    areas = np.array([p.area for p in polygons], dtype=np.float64)
    verts = np.array([len(p) for p in polygons], dtype=np.float64)
    return PolygonStats(
        count=len(polygons),
        area_mean=float(areas.mean()),
        area_sd=float(areas.std()),
        area_max=int(areas.max()),
        vertices_mean=float(verts.mean()),
    )


def dataset_stats(result_dir: str | Path) -> PolygonStats:
    """Statistics of one on-disk result set (all tile files)."""
    polygons: list[RectilinearPolygon] = []
    for path in list_tile_files(result_dir).values():
        polygons.extend(read_polygons(path))
    return polygon_stats(polygons)
