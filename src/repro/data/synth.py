"""Synthetic tile generation: two segmentation results per tile.

A tile holds a population of nuclei at random positions.  The *reference*
result (result A) rasterizes each nucleus as sampled; the *variant*
result (result B) re-renders the same nuclei through a perturbation model
(:mod:`repro.data.perturb`) that mimics what a different algorithm — or
the same algorithm with different parameters — produces: slightly
grown/shrunk boundaries, small offsets, missed objects, spurious objects.

Both masks are traced to rectilinear polygons with the library's own
segmentation tracer, so the synthetic data has exactly the geometry class
of the paper's data (integer vertices, axis-aligned edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.perturb import PerturbModel
from repro.data.shapes import NucleusShape, rasterize_shape, sample_shape
from repro.errors import DatasetError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import extract_polygons

__all__ = ["TileSpec", "SyntheticTile", "generate_tile", "generate_tile_pair"]

# Objects smaller than this are discarded by the tracer (speckle removal,
# same post-processing a segmentation pipeline applies).
_MIN_OBJECT_AREA = 12


@dataclass(frozen=True, slots=True)
class TileSpec:
    """Parameters of one synthetic tile."""

    width: int = 512
    height: int = 512
    nuclei: int = 60
    mean_radius: float = 6.5
    radius_sd: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width < 32 or self.height < 32:
            raise DatasetError("tile must be at least 32x32 pixels")
        if self.nuclei < 0:
            raise DatasetError(f"nuclei count must be >= 0, got {self.nuclei}")


@dataclass(slots=True)
class SyntheticTile:
    """One generated tile: shapes plus the two traced polygon sets."""

    spec: TileSpec
    shapes: list[NucleusShape] = field(default_factory=list)
    polygons_a: list[RectilinearPolygon] = field(default_factory=list)
    polygons_b: list[RectilinearPolygon] = field(default_factory=list)


def generate_tile(
    spec: TileSpec, perturb: PerturbModel | None = None
) -> SyntheticTile:
    """Generate one tile and both segmentation results."""
    rng = np.random.default_rng(spec.seed)
    model = perturb or PerturbModel()
    shapes = []
    for _ in range(spec.nuclei):
        cx = rng.uniform(2, spec.width - 2)
        cy = rng.uniform(2, spec.height - 2)
        shapes.append(
            sample_shape(
                rng, cx, cy,
                mean_radius=spec.mean_radius,
                radius_sd=spec.radius_sd,
            )
        )

    mask_a = np.zeros((spec.height, spec.width), dtype=bool)
    for shape in shapes:
        mask_a |= rasterize_shape(shape, spec.width, spec.height)

    mask_b = model.render(rng, shapes, spec.width, spec.height)

    polygons_a = extract_polygons(mask_a, min_area=_MIN_OBJECT_AREA)
    polygons_b = extract_polygons(mask_b, min_area=_MIN_OBJECT_AREA)
    return SyntheticTile(spec, shapes, polygons_a, polygons_b)


def generate_tile_pair(
    seed: int = 0,
    nuclei: int = 60,
    width: int = 512,
    height: int = 512,
) -> tuple[list[RectilinearPolygon], list[RectilinearPolygon]]:
    """Convenience: just the two polygon sets of one synthetic tile.

    >>> a, b = generate_tile_pair(seed=7, nuclei=20, width=256, height=256)
    >>> len(a) > 0 and len(b) > 0
    True
    """
    tile = generate_tile(TileSpec(width, height, nuclei, seed=seed))
    return tile.polygons_a, tile.polygons_b
