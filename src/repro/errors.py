"""Exception hierarchy for the SCCG reproduction.

Every package raises subclasses of :class:`ReproError` so applications can
catch library failures with a single ``except`` clause while still being
able to distinguish geometry problems from, say, pipeline misuse.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "RectilinearityError",
    "RingClosureError",
    "RasterError",
    "WktError",
    "ParseError",
    "IndexError_",
    "QueryError",
    "CatalogError",
    "KernelError",
    "BackendError",
    "CacheError",
    "DeviceError",
    "PipelineError",
    "BufferClosedError",
    "MigrationError",
    "RequestError",
    "SessionClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "ClusterError",
    "ClusterConfigError",
    "ClusterProtocolError",
    "DatasetError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GeometryError(ReproError):
    """Invalid geometric input (malformed polygon, empty box, ...)."""


class RectilinearityError(GeometryError):
    """A polygon violates the rectilinear (axis-aligned edges) contract."""


class RingClosureError(GeometryError):
    """A polygon ring is not closed or has too few vertices."""


class RasterError(GeometryError):
    """A raster mask cannot be converted to/from polygons."""


class WktError(GeometryError):
    """Malformed Well-Known-Text input."""


class ParseError(ReproError):
    """Malformed polygon file content."""


class IndexError_(ReproError):
    """Spatial index construction or query misuse."""


class QueryError(ReproError):
    """Invalid SDBMS query plan or expression."""


class CatalogError(ReproError):
    """Unknown table/column or duplicate registration in the catalog."""


class KernelError(ReproError):
    """PixelBox kernel misconfiguration (bad threshold, empty batch, ...)."""


class BackendError(KernelError):
    """An execution backend cannot run here (e.g. its optional compiled
    dependency is not installed); the message names the missing extra."""


class CacheError(ReproError):
    """Result-cache misuse (bad byte budget, malformed cache key)."""


class DeviceError(ReproError):
    """GPU simulator / device model misuse."""


class PipelineError(ReproError):
    """Pipeline assembly or runtime failure."""


class BufferClosedError(PipelineError):
    """A stage attempted to use an inter-stage buffer after shutdown."""


class MigrationError(PipelineError):
    """Dynamic task migration configuration error."""


class RequestError(ReproError):
    """Invalid :class:`repro.api.CompareRequest` / :class:`CompareOptions`."""


class SessionClosedError(ReproError):
    """A closed :class:`repro.Session` was asked to execute a request."""


class ServiceError(ReproError):
    """Comparison-service misuse or runtime failure."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request (queue at capacity)."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is shutting down."""


class ClusterError(ReproError):
    """Distributed shard-cluster failure (transport, scheduling, workers)."""


class ClusterConfigError(ClusterError):
    """Invalid cluster configuration (malformed host list, bad options)."""


class ClusterProtocolError(ClusterError):
    """Malformed or out-of-contract frame on the cluster wire protocol."""


class DatasetError(ReproError):
    """Synthetic dataset specification or generation failure."""


class ExperimentError(ReproError):
    """Experiment harness misuse (unknown experiment id, bad params)."""
