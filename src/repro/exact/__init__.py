"""Exact vector-geometry overlay — the GEOS/PostGIS baseline stand-in.

This package constructs exact intersection/union *geometry* of rectilinear
polygons with scalar, branch-heavy plane-sweep code, reproducing the cost
profile paper §2.3 measures for GEOS inside PostGIS.  It also serves as
the correctness oracle for every PixelBox implementation (paper §3.4).
"""

from repro.exact.boolean import (
    difference,
    intersection,
    intersection_area,
    subtract_box,
    union,
    union_area,
)
from repro.exact.decompose import decompose, decompose_edges
from repro.exact.measure import CoverageSegmentTree, union_area_of_boxes
from repro.exact.predicates import (
    boundaries_touch,
    interiors_intersect,
    st_contains,
    st_disjoint,
    st_equals,
    st_intersects,
    st_touches,
    st_within,
)
from repro.exact.region import RectRegion

__all__ = [
    "RectRegion",
    "decompose",
    "decompose_edges",
    "intersection",
    "union",
    "difference",
    "intersection_area",
    "union_area",
    "subtract_box",
    "union_area_of_boxes",
    "CoverageSegmentTree",
    "st_intersects",
    "st_disjoint",
    "st_touches",
    "st_contains",
    "st_within",
    "st_equals",
    "boundaries_touch",
    "interiors_intersect",
]
