"""Exact boolean overlay of rectilinear polygons.

These functions are the computational core of the SDBMS baseline: the
``ST_Intersection`` / ``ST_Union`` spatial operators that paper §2.3
profiles as ~90% of cross-comparing query time.  They construct the
*geometry* of the overlay (as a :class:`~repro.exact.region.RectRegion`)
before measuring it — exactly the work PixelBox is designed to avoid.

All arithmetic is integer and exact, so these results are the oracle the
PixelBox implementations are validated against (paper §3.4 does the same
cross-check against PostGIS).
"""

from __future__ import annotations

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.exact.decompose import decompose
from repro.exact.region import RectRegion

__all__ = [
    "intersection",
    "union",
    "difference",
    "intersection_area",
    "union_area",
    "subtract_box",
]


def intersection(p: RectilinearPolygon, q: RectilinearPolygon) -> RectRegion:
    """Overlay geometry of ``p AND q`` — the SDBMS ``ST_Intersection``."""
    if not p.mbr.intersects(q.mbr):
        return RectRegion.empty()
    out: list[Box] = []
    q_rects = decompose(q)
    for pr in decompose(p):
        for qr in q_rects:
            overlap = pr.intersect(qr)
            if overlap is not None:
                out.append(overlap)
    return RectRegion(out)


def union(p: RectilinearPolygon, q: RectilinearPolygon) -> RectRegion:
    """Overlay geometry of ``p OR q`` — the SDBMS ``ST_Union``.

    Built as ``p + (q \\ p)`` so the output rectangles stay disjoint.
    """
    p_rects = decompose(p)
    q_rects = decompose(q)
    out = list(p_rects)
    for qr in q_rects:
        out.extend(_subtract_all(qr, p_rects))
    return RectRegion(out)


def difference(p: RectilinearPolygon, q: RectilinearPolygon) -> RectRegion:
    """Overlay geometry of ``p AND NOT q``."""
    q_rects = decompose(q)
    out: list[Box] = []
    for pr in decompose(p):
        out.extend(_subtract_all(pr, q_rects))
    return RectRegion(out)


def intersection_area(p: RectilinearPolygon, q: RectilinearPolygon) -> int:
    """``ST_Area(ST_Intersection(p, q))`` without materializing the region.

    Still constructs and measures every overlap rectangle — the per-pair
    cost profile matches :func:`intersection`; only the allocation of the
    result object is skipped.
    """
    if not p.mbr.intersects(q.mbr):
        return 0
    total = 0
    q_rects = decompose(q)
    for pr in decompose(p):
        for qr in q_rects:
            overlap = pr.intersect(qr)
            if overlap is not None:
                total += overlap.size
    return total


def union_area(p: RectilinearPolygon, q: RectilinearPolygon) -> int:
    """``ST_Area(ST_Union(p, q))`` via the inclusion-exclusion identity."""
    return p.area + q.area - intersection_area(p, q)


# ----------------------------------------------------------------------
# Rectangle subtraction
# ----------------------------------------------------------------------
def subtract_box(rect: Box, cutter: Box) -> list[Box]:
    """``rect \\ cutter`` as at most four disjoint rectangles."""
    overlap = rect.intersect(cutter)
    if overlap is None:
        return [rect]
    pieces: list[Box] = []
    if rect.y0 < overlap.y0:  # strip below the overlap
        pieces.append(Box(rect.x0, rect.y0, rect.x1, overlap.y0))
    if overlap.y1 < rect.y1:  # strip above the overlap
        pieces.append(Box(rect.x0, overlap.y1, rect.x1, rect.y1))
    if rect.x0 < overlap.x0:  # strip left of the overlap
        pieces.append(Box(rect.x0, overlap.y0, overlap.x0, overlap.y1))
    if overlap.x1 < rect.x1:  # strip right of the overlap
        pieces.append(Box(overlap.x1, overlap.y0, rect.x1, overlap.y1))
    return pieces


def _subtract_all(rect: Box, cutters: list[Box]) -> list[Box]:
    """``rect \\ union(cutters)`` as disjoint rectangles."""
    remaining = [rect]
    for cutter in cutters:
        if not remaining:
            break
        next_remaining: list[Box] = []
        for piece in remaining:
            next_remaining.extend(subtract_box(piece, cutter))
        remaining = next_remaining
    return remaining
