"""Slab decomposition of rectilinear polygons into disjoint rectangles.

This is the entry point of the exact vector-geometry baseline (the GEOS
stand-in).  A rectilinear polygon is cut at every distinct horizontal-edge
y coordinate into *slabs*; inside one slab the polygon's cross-section is a
constant set of x intervals, recovered by pairing the vertical edges that
span the slab (even-odd rule).  The result is a set of disjoint,
y-aligned rectangles whose union is exactly the polygon.

The algorithm is intentionally scalar and branch-heavy — it is the profile
of general-purpose computational geometry code that the paper identifies
as the SDBMS bottleneck (§2.3).
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon

__all__ = ["decompose", "decompose_edges"]


def decompose(polygon: RectilinearPolygon) -> list[Box]:
    """Decompose ``polygon`` into disjoint slab rectangles.

    The output is canonical: slabs are emitted bottom-up and intervals
    left-to-right, so two polygons covering the same pixels decompose to
    the same rectangle list.
    """
    edges = [
        (int(x), int(y_lo), int(y_hi)) for x, y_lo, y_hi in polygon.vertical_edges
    ]
    return decompose_edges(edges)


def decompose_edges(vertical_edges: list[tuple[int, int, int]]) -> list[Box]:
    """Decompose a region given by its vertical boundary edges.

    Accepts the edge multiset of any parity-consistent region (a simple
    polygon, a self-touching ring, or a union of disjoint rings), which is
    what makes this routine reusable for region normalization.
    """
    if not vertical_edges:
        return []
    cuts = sorted({y for _, y_lo, y_hi in vertical_edges for y in (y_lo, y_hi)})
    rects: list[Box] = []
    for y_lo, y_hi in zip(cuts, cuts[1:]):
        spanning = sorted(
            x for x, e_lo, e_hi in vertical_edges if e_lo <= y_lo and y_hi <= e_hi
        )
        # Walk the sorted boundary x's flipping an inside/outside parity
        # bit.  Coincident edges (even multiplicity at one x) cancel — that
        # is how self-touching rings and shared rectangle borders merge
        # into maximal intervals, making the output canonical.
        inside_since: int | None = None
        i = 0
        while i < len(spanning):
            x = spanning[i]
            multiplicity = 1
            while i + multiplicity < len(spanning) and spanning[i + multiplicity] == x:
                multiplicity += 1
            if multiplicity % 2 == 1:
                if inside_since is None:
                    inside_since = x
                else:
                    rects.append(Box(inside_since, y_lo, x, y_hi))
                    inside_since = None
            i += multiplicity
        if inside_since is not None:
            raise GeometryError(
                f"unbalanced edges in slab [{y_lo}, {y_hi}); "
                "the boundary is not parity-consistent"
            )
    return rects
