"""Union area of many rectangles (Klee's measure problem, 2-D case).

Set-level Jaccard similarity ``J = |P n Q| / |P u Q|`` needs the area of
the union of an entire polygon set — hundreds of thousands of small
rectangles after decomposition.  This module implements the classic
sweepline solution: sweep a vertical line across x events, maintaining the
covered length of the y axis in a segment tree over the compressed y
coordinates.  Runs in ``O(n log n)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.box import Box

__all__ = ["union_area_of_boxes", "CoverageSegmentTree"]


class CoverageSegmentTree:
    """Counting segment tree over a fixed sorted coordinate grid.

    Supports adding/removing coverage of a coordinate interval and querying
    the total covered length, both in ``O(log n)``.  Standard component of
    the Bentley sweep for Klee's measure problem.
    """

    __slots__ = ("_coords", "_count", "_covered", "_n")

    def __init__(self, coords: Sequence[int]) -> None:
        uniq = sorted(set(coords))
        if len(uniq) < 2:
            raise GeometryError("segment tree needs at least two coordinates")
        self._coords = uniq
        self._n = len(uniq) - 1  # number of elementary intervals
        size = 4 * self._n
        self._count = [0] * size  # full-cover count per node
        self._covered = [0] * size  # covered length within node span

    @property
    def covered_length(self) -> int:
        """Total covered length across the whole coordinate range."""
        return self._covered[1]

    def add(self, lo: int, hi: int, delta: int) -> None:
        """Add ``delta`` (+1/-1) coverage to the interval ``[lo, hi)``.

        ``lo``/``hi`` must be coordinates present in the construction grid.
        """
        i = self._index(lo)
        j = self._index(hi)
        if i >= j:
            raise GeometryError(f"empty coverage interval [{lo}, {hi})")
        self._update(1, 0, self._n, i, j, delta)

    # ------------------------------------------------------------------
    def _index(self, coord: int) -> int:
        lo, hi = 0, len(self._coords)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._coords[mid] < coord:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self._coords) or self._coords[lo] != coord:
            raise GeometryError(f"coordinate {coord} not in segment tree grid")
        return lo

    def _update(self, node: int, lo: int, hi: int, i: int, j: int, delta: int) -> None:
        if j <= lo or hi <= i:
            return
        if i <= lo and hi <= j:
            self._count[node] += delta
            if self._count[node] < 0:
                raise GeometryError("coverage count went negative")
        else:
            mid = (lo + hi) // 2
            self._update(2 * node, lo, mid, i, j, delta)
            self._update(2 * node + 1, mid, hi, i, j, delta)
        if self._count[node] > 0:
            self._covered[node] = self._coords[hi] - self._coords[lo]
        elif hi - lo == 1:
            self._covered[node] = 0
        else:
            self._covered[node] = self._covered[2 * node] + self._covered[2 * node + 1]


def union_area_of_boxes(boxes: Iterable[Box]) -> int:
    """Exact area of the union of ``boxes`` via the Bentley sweep."""
    events: list[tuple[int, int, int, int]] = []  # (x, delta, y0, y1)
    ys: list[int] = []
    for box in boxes:
        events.append((box.x0, +1, box.y0, box.y1))
        events.append((box.x1, -1, box.y0, box.y1))
        ys.append(box.y0)
        ys.append(box.y1)
    if not events:
        return 0
    tree = CoverageSegmentTree(ys)
    order = np.lexsort(
        (
            [e[1] for e in events],
            [e[0] for e in events],
        )
    )
    area = 0
    prev_x: int | None = None
    for idx in order:
        x, delta, y0, y1 = events[int(idx)]
        if prev_x is not None and x > prev_x:
            area += (x - prev_x) * tree.covered_length
        tree.add(y0, y1, delta)
        prev_x = x
    return area
