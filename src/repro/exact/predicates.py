"""Exact spatial predicates over rectilinear polygons.

The SDBMS baseline exposes these as ``ST_Intersects``, ``ST_Touches``,
``ST_Contains``, ``ST_Within``, ``ST_Equals`` and ``ST_Disjoint``.
Predicate semantics follow OGC/PostGIS: *intersects* is true when the
closed point sets share at least one point (boundary touching counts),
*touches* when only boundaries meet.

Paper §3.4 sketches how PixelBox generalizes to these operators
(``ST_Contains`` via area equality, ``ST_Touches`` via edge tests); the
implementations here follow those sketches on the exact-geometry side.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.polygon import RectilinearPolygon
from repro.exact.boolean import intersection_area

__all__ = [
    "st_intersects",
    "st_disjoint",
    "st_touches",
    "st_contains",
    "st_within",
    "st_equals",
    "boundaries_touch",
    "interiors_intersect",
]


def interiors_intersect(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """True when the interiors share at least one pixel (area > 0)."""
    return intersection_area(p, q) > 0


def boundaries_touch(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """True when the boundary polylines share at least one point.

    Checked pairwise between edge families: perpendicular edges can cross
    or meet at a point; parallel collinear edges can overlap along a
    segment or meet at an endpoint.  All comparisons use closed intervals,
    matching the OGC boundary semantics.
    """
    pv, ph = p.vertical_edges, p.horizontal_edges
    qv, qh = q.vertical_edges, q.horizontal_edges
    return (
        _perpendicular_touch(pv, qh)
        or _perpendicular_touch(qv, ph)
        or _parallel_touch(pv, qv)
        or _parallel_touch(ph, qh)
    )


def st_intersects(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """OGC ``ST_Intersects``: closed point sets share at least one point."""
    if not p.mbr.intersects_or_touches(q.mbr):
        return False
    return interiors_intersect(p, q) or boundaries_touch(p, q)


def st_disjoint(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """OGC ``ST_Disjoint`` — the negation of :func:`st_intersects`."""
    return not st_intersects(p, q)


def st_touches(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """OGC ``ST_Touches``: boundaries meet, interiors do not."""
    if interiors_intersect(p, q):
        return False
    return boundaries_touch(p, q)


def st_contains(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """OGC ``ST_Contains``: every pixel of ``q`` lies inside ``p``.

    Uses the area identity from paper §3.4: ``q`` is contained when
    ``area(p n q) == area(q)``.
    """
    if not p.mbr.contains_box(q.mbr):
        return False
    return intersection_area(p, q) == q.area


def st_within(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """OGC ``ST_Within`` — the converse of :func:`st_contains`."""
    return st_contains(q, p)


def st_equals(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """OGC ``ST_Equals``: the polygons cover exactly the same pixels."""
    if p.area != q.area:
        return False
    return intersection_area(p, q) == p.area


# ----------------------------------------------------------------------
# Edge-family touch tests
# ----------------------------------------------------------------------
def _perpendicular_touch(vertical: np.ndarray, horizontal: np.ndarray) -> bool:
    """Any vertical edge meets any horizontal edge (closed intervals)?"""
    if len(vertical) == 0 or len(horizontal) == 0:
        return False
    vx = vertical[:, 0][:, None]
    v_lo = vertical[:, 1][:, None]
    v_hi = vertical[:, 2][:, None]
    hy = horizontal[:, 0][None, :]
    h_lo = horizontal[:, 1][None, :]
    h_hi = horizontal[:, 2][None, :]
    hit = (h_lo <= vx) & (vx <= h_hi) & (v_lo <= hy) & (hy <= v_hi)
    return bool(hit.any())


def _parallel_touch(a: np.ndarray, b: np.ndarray) -> bool:
    """Any two collinear parallel edges share at least a point?"""
    if len(a) == 0 or len(b) == 0:
        return False
    same_line = a[:, 0][:, None] == b[:, 0][None, :]
    overlap = (a[:, 1][:, None] <= b[:, 2][None, :]) & (
        b[:, 1][None, :] <= a[:, 2][:, None]
    )
    return bool((same_line & overlap).any())
