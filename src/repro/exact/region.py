"""Rectangle-set regions — the result geometry of exact boolean overlay.

``ST_Intersection``/``ST_Union`` in the SDBMS baseline return a
:class:`RectRegion`: a set of pairwise-disjoint axis-aligned rectangles.
A region is closed under the boolean algebra implemented in
:mod:`repro.exact.boolean` and knows its exact pixel area, which is what
``ST_Area`` consumes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import GeometryError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.exact.decompose import decompose, decompose_edges

__all__ = ["RectRegion"]


class RectRegion:
    """An immutable region represented as disjoint rectangles.

    The rectangle list is an implementation detail: two regions covering
    the same pixels are equal even when their rectangle lists differ,
    because equality compares the canonical slab normalization.
    """

    __slots__ = ("_rects", "_area", "_normalized")

    def __init__(self, rects: Iterable[Box], _normalized: bool = False) -> None:
        self._rects = tuple(rects)
        self._area: int | None = None
        self._normalized = _normalized

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "RectRegion":
        """The region covering no pixels."""
        return cls((), _normalized=True)

    @classmethod
    def from_polygon(cls, polygon: RectilinearPolygon) -> "RectRegion":
        """Slab decomposition of a polygon."""
        return cls(decompose(polygon), _normalized=True)

    @classmethod
    def from_box(cls, box: Box) -> "RectRegion":
        """A single-rectangle region."""
        return cls((box,), _normalized=True)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def rects(self) -> tuple[Box, ...]:
        """The disjoint rectangles making up the region."""
        return self._rects

    def __iter__(self) -> Iterator[Box]:
        return iter(self._rects)

    def __len__(self) -> int:
        return len(self._rects)

    def __bool__(self) -> bool:
        return bool(self._rects)

    @property
    def area(self) -> int:
        """Exact number of pixels covered."""
        if self._area is None:
            self._area = sum(r.size for r in self._rects)
        return self._area

    @property
    def mbr(self) -> Box | None:
        """Bounding box, or ``None`` for the empty region."""
        if not self._rects:
            return None
        return Box(
            min(r.x0 for r in self._rects),
            min(r.y0 for r in self._rects),
            max(r.x1 for r in self._rects),
            max(r.y1 for r in self._rects),
        )

    def contains_pixel(self, x: int, y: int) -> bool:
        """Membership test for a single pixel."""
        return any(r.contains_pixel(x, y) for r in self._rects)

    def to_mask(self, box: Box) -> np.ndarray:
        """Boolean mask of the region clipped to ``box``."""
        out = np.zeros((box.height, box.width), dtype=bool)
        for r in self._rects:
            clip = r.intersect(box)
            if clip is not None:
                out[
                    clip.y0 - box.y0 : clip.y1 - box.y0,
                    clip.x0 - box.x0 : clip.x1 - box.x0,
                ] = True
        return out

    # ------------------------------------------------------------------
    # Canonical form & equality
    # ------------------------------------------------------------------
    def normalized(self) -> "RectRegion":
        """Canonical slab form: equal regions normalize identically."""
        if self._normalized:
            return self
        edges: list[tuple[int, int, int]] = []
        for r in self._rects:
            edges.append((r.x0, r.y0, r.y1))
            edges.append((r.x1, r.y0, r.y1))
        # The rects are disjoint but may share edges; coincident left/right
        # edges cancel under the even-odd pairing in decompose_edges, so
        # feeding the raw edge multiset yields the merged canonical form.
        return RectRegion(decompose_edges(edges), _normalized=True)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectRegion):
            return NotImplemented
        return self.normalized().rects == other.normalized().rects

    def __hash__(self) -> int:
        return hash(self.normalized().rects)

    def __repr__(self) -> str:
        return f"RectRegion({len(self._rects)} rects, area={self.area})"

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_disjoint(self) -> None:
        """Raise :class:`GeometryError` when two rectangles overlap.

        O(n^2); meant for tests and debugging, not hot paths.
        """
        rects = self._rects
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                if rects[i].intersects(rects[j]):
                    raise GeometryError(
                        f"rectangles {i} and {j} overlap: "
                        f"{rects[i]} vs {rects[j]}"
                    )
