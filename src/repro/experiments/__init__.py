"""Experiment harness: one module per paper table/figure.

Use :func:`repro.experiments.registry.run_experiment` or the CLI
(``repro run fig7``).  Each module documents the paper's expected result
in its docstring and in the returned ``paper_expectation``.
"""

from repro.experiments import (  # noqa: F401 - re-exported for the registry
    common,
    fig2_profiling,
    fig7_speedup,
    fig8_sampling,
    fig9_optimizations,
    fig10_threshold,
    fig11_migration,
    fig12_datasets,
    table1_pipeline,
)
from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
