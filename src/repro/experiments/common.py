"""Shared plumbing for the paper-experiment harness.

Every experiment module exposes ``run(quick=...) -> ExperimentResult``;
the result carries the same rows/series the paper's table or figure
reports plus a note comparing against the paper's numbers.  Workloads are
generated once into a cache directory and reused across experiments and
benchmark runs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.datasets import DatasetSpec, generate_dataset
from repro.geometry.polygon import RectilinearPolygon
from repro.index.join import mbr_pair_join
from repro.io.polyfile import read_polygons
from repro.io.tiles import list_tile_files

__all__ = [
    "ExperimentResult",
    "data_root",
    "profiling_dataset",
    "load_result_sets",
    "filtered_pairs",
    "representative_pairs",
    "time_call",
    "geometric_mean",
]


@dataclass(slots=True)
class ExperimentResult:
    """Rows of one reproduced table/figure plus presentation helpers."""

    name: str
    headers: list[str]
    rows: list[list[object]]
    paper_expectation: str
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Fixed-width table, ready to print."""
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in self.rows))
            if self.rows
            else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.name} =="]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        lines.append(f"paper: {self.paper_expectation}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def data_root() -> Path:
    """Workload cache directory (override with ``REPRO_DATA_DIR``)."""
    root = Path(os.environ.get("REPRO_DATA_DIR", Path.cwd() / ".repro-data"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def profiling_dataset(quick: bool = True) -> tuple[Path, Path]:
    """The "oligoastroIII_1" analog used by the single-dataset experiments."""
    tiles = 6 if quick else 16
    spec = DatasetSpec(
        name=f"profiling_{tiles}t",
        tiles=tiles,
        nuclei_per_tile=48,
        tile_width=512,
        tile_height=512,
        seed=42,
    )
    return generate_dataset(spec, data_root())


def pipeline_dataset(quick: bool = True) -> tuple[Path, Path]:
    """Denser multi-tile dataset for the framework experiments.

    The pipeline/migration measurements (Table 1, Figure 11) need enough
    per-stage work for thread startup and launch overheads to amortize;
    this dataset has more tiles and ~3x the polygon density of the
    profiling dataset.
    """
    tiles = 12 if quick else 28
    spec = DatasetSpec(
        name=f"pipeline_{tiles}t",
        tiles=tiles,
        nuclei_per_tile=140,
        tile_width=640,
        tile_height=640,
        seed=77,
    )
    return generate_dataset(spec, data_root())


def load_result_sets(
    dir_a: Path, dir_b: Path
) -> tuple[list[RectilinearPolygon], list[RectilinearPolygon]]:
    """Flatten both result sets of a dataset into polygon lists."""
    polys_a = [
        p for f in list_tile_files(dir_a).values() for p in read_polygons(f)
    ]
    polys_b = [
        p for f in list_tile_files(dir_b).values() for p in read_polygons(f)
    ]
    return polys_a, polys_b


def filtered_pairs(
    dir_a: Path, dir_b: Path
) -> list[tuple[RectilinearPolygon, RectilinearPolygon]]:
    """All MBR-intersecting pairs of a dataset (the kernel workload)."""
    polys_a, polys_b = load_result_sets(dir_a, dir_b)
    return mbr_pair_join(polys_a, polys_b).pairs(polys_a, polys_b)


def representative_pairs(
    quick: bool = True, limit: int | None = None
) -> list[tuple[RectilinearPolygon, RectilinearPolygon]]:
    """The stress-test pair subset (paper: 15,724 pairs from two files)."""
    dir_a, dir_b = profiling_dataset(quick)
    pairs = filtered_pairs(dir_a, dir_b)
    if limit is not None:
        pairs = pairs[:limit]
    return pairs


def time_call(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` (with one warmup call)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the paper's Figure 12 summary statistic)."""
    arr = np.asarray(values, dtype=np.float64)
    if len(arr) == 0 or np.any(arr <= 0):
        return 0.0
    return float(np.exp(np.log(arr).mean()))
