"""Figure 10: sensitivity of the pixelization threshold ``T`` (§5.4).

Paper result (block size 64): performance is sub-optimal when ``T`` is
very small (sampling boxes are over-partitioned) or very large (the
pixelization procedure processes too many pixels); the best ``T`` lies
between n^2/8 = 512 and n^2 = 4096 at every scale factor.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    representative_pairs,
    time_call,
)
from repro.pixelbox.common import LaunchConfig, Method
from repro.pixelbox.engine import compute_pairs

__all__ = ["run", "THRESHOLDS"]

THRESHOLDS = (16, 64, 256, 512, 1024, 2048, 4096, 16384, 65536)


def run(quick: bool = True) -> ExperimentResult:
    """Sweep ``T`` at block size 64 for several scale factors."""
    base_pairs = representative_pairs(quick, limit=200 if quick else 1000)
    scale_factors = (1, 3, 5) if quick else (1, 2, 3, 4, 5)
    rows: list[list[object]] = []
    for sf in scale_factors:
        pairs = [(p.scale(sf), q.scale(sf)) for p, q in base_pairs]
        row: list[object] = [f"SF{sf}"]
        for threshold in THRESHOLDS:
            cfg = LaunchConfig(block_size=64, pixel_threshold=threshold)
            row.append(
                time_call(lambda: compute_pairs(pairs, Method.PIXELBOX, cfg))
            )
        rows.append(row)
    return ExperimentResult(
        name="Figure 10 — pixelization threshold sensitivity (seconds)",
        headers=["scale"] + [f"T={t}" for t in THRESHOLDS],
        rows=rows,
        paper_expectation=(
            "sub-optimal at the extremes; best T in [n^2/8, n^2] = "
            "[512, 4096] for block size 64"
        ),
        notes=[
            f"workload: {len(base_pairs)} pairs",
        ],
    )
