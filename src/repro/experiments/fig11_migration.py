"""Figure 11: benefit of dynamic task migration in three configurations.

Paper result (throughput with migration, normalized to without):
Config-I (T1500 workstation, one GTX 580) ~1.5x — the aggregator cannot
keep the GPU busy, so parser tasks migrate onto it; Config-II (EC2, two
M2050s) ~1.4x — same direction, weaker because the CPUs are stronger;
Config-III (EC2, one deliberately slowed GPU) ~1.14x — the GPU becomes
the bottleneck and aggregator tasks migrate to the CPUs.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, pipeline_dataset
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import PipelineOptions, run_pipelined
from repro.pipeline.migration import MigrationConfig

__all__ = ["run", "CONFIGS"]

# (label, device factory, pipeline knobs) per platform configuration.
# Config-I models the paper's 4-core workstation: CPU-side stages are
# scarce (one parser worker), so an under-utilized GPU can absorb parse
# work.  Config-II has two devices.  Config-III slows the single device
# down (a GPU shared with other applications, §5.6), reversing the
# migration direction.
CONFIGS = [
    (
        "Config-I (1 GPU)",
        lambda: [GpuDevice("gpu0", launch_overhead=0.002)],
        {"parser_workers": 1},
    ),
    (
        "Config-II (2 GPUs)",
        lambda: [
            GpuDevice("gpu0", launch_overhead=0.002),
            GpuDevice("gpu1", launch_overhead=0.002),
        ],
        {"parser_workers": 1},
    ),
    (
        "Config-III (1 slowed GPU)",
        lambda: [GpuDevice("gpu0", launch_overhead=0.004, slowdown=8.0)],
        {"buffer_capacity": 4},
    ),
]


def run(quick: bool = True) -> ExperimentResult:
    """Measure throughput with and without migration per configuration."""
    dir_a, dir_b = pipeline_dataset(quick)
    rows: list[list[object]] = []
    details: list[str] = []
    for label, device_factory, knobs in CONFIGS:
        off = run_pipelined(
            dir_a, dir_b,
            PipelineOptions(devices=device_factory(), migration=None, **knobs),
        )
        on = run_pipelined(
            dir_a, dir_b,
            PipelineOptions(
                devices=device_factory(),
                migration=MigrationConfig(cpu_workers=2),
                **knobs,
            ),
        )
        gain = on.throughput / off.throughput if off.throughput else 0.0
        rows.append(
            [label, off.throughput / 1e6, on.throughput / 1e6, gain]
        )
        details.append(
            f"{label}: migrated {on.timers.migrated_gpu_tasks} parser "
            f"task(s) to GPU, {on.timers.migrated_cpu_tasks} aggregator "
            f"task(s) to CPU"
        )
    return ExperimentResult(
        name="Figure 11 — dynamic task migration (normalized throughput)",
        headers=[
            "configuration", "off (MB/s)", "on (MB/s)", "on/off",
        ],
        rows=rows,
        paper_expectation=(
            "Config-I ~1.5x, Config-II ~1.4x, Config-III ~1.14x"
        ),
        notes=details,
    )
