"""Figure 12: SCCG vs parallelized PostGIS over the 18-dataset suite.

Paper result: SCCG (one GTX 580 + 4-core CPU) against PostGIS-M (two
4-core CPUs, 16 query streams) achieves between 13x and 44x per-dataset
speedup, geometric mean >18x; in absolute terms, 64 s for SCCG vs 1120 s
for PostGIS-M over all 18 datasets.
"""

from __future__ import annotations

import time

from repro.data.datasets import generate_dataset, suite_specs
from repro.experiments.common import (
    ExperimentResult,
    data_root,
    geometric_mean,
    load_result_sets,
)
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import PipelineOptions, run_pipelined
from repro.pipeline.migration import MigrationConfig
from repro.sdbms.parallel import parallel_cross_compare

__all__ = ["run"]


def run(quick: bool = True, workers: int = 4) -> ExperimentResult:
    """Cross-compare every suite dataset with both systems."""
    scale = 0.012 if quick else 0.025
    specs = suite_specs(scale=scale, nuclei_per_tile=90)
    if quick:
        specs = specs[::3]  # every third dataset keeps the size spread
    rows: list[list[object]] = []
    speedups: list[float] = []
    total_sccg = 0.0
    total_postgis = 0.0
    for spec in specs:
        dir_a, dir_b = generate_dataset(spec, data_root())
        polys_a, polys_b = load_result_sets(dir_a, dir_b)

        start = time.perf_counter()
        postgis = parallel_cross_compare(
            polys_a, polys_b, workers=workers, streams=16
        )
        t_postgis = time.perf_counter() - start

        options = PipelineOptions(
            devices=[GpuDevice(launch_overhead=0.002)],
            migration=MigrationConfig(cpu_workers=2),
        )
        sccg = run_pipelined(dir_a, dir_b, options)
        t_sccg = sccg.wall_seconds

        agree = abs(postgis.jaccard_mean - sccg.jaccard_mean) < 1e-9
        speedup = t_postgis / t_sccg if t_sccg > 0 else 0.0
        speedups.append(speedup)
        total_sccg += t_sccg
        total_postgis += t_postgis
        rows.append(
            [
                spec.name,
                spec.tiles,
                sccg.count_a,
                t_postgis,
                t_sccg,
                speedup,
                "yes" if agree else "NO",
            ]
        )
    rows.append(
        [
            "geometric mean",
            "",
            "",
            total_postgis,
            total_sccg,
            geometric_mean(speedups),
            "",
        ]
    )
    return ExperimentResult(
        name="Figure 12 — SCCG vs PostGIS-M over the dataset suite",
        headers=[
            "dataset", "tiles", "polygons", "PostGIS-M (s)", "SCCG (s)",
            "speedup", "J' agree",
        ],
        rows=rows,
        paper_expectation=(
            "per-dataset speedups 13x-44x, geometric mean >18x "
            "(1120 s vs 64 s in total)"
        ),
        notes=[
            f"PostGIS-M: {workers} worker processes, 16 query streams; "
            "SCCG: pipelined, 1 device, migration on",
        ],
    )
