"""Figure 2: execution-time decomposition of cross-comparing queries.

Paper result (single PostGIS core, the oligoastroIII_1 dataset):
the unoptimized query spends 21.8% in ``ST_Intersects``, 37.4% computing
areas of intersection and 36.7% areas of union; the optimized query
spends ~90% in the area of intersection alone; index build/search stay
under 6% in both.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    load_result_sets,
    profiling_dataset,
)
from repro.sdbms.profiler import Bucket
from repro.sdbms.queries import run_cross_compare

__all__ = ["run"]

_BUCKETS = [
    Bucket.INDEX_BUILD,
    Bucket.INDEX_SEARCH,
    Bucket.ST_INTERSECTS,
    Bucket.AREA_OF_INTERSECTION,
    Bucket.AREA_OF_UNION,
    Bucket.ST_AREA,
    Bucket.OTHER,
]


def run(quick: bool = True) -> ExperimentResult:
    """Profile both Figure 1 queries and decompose their execution time."""
    dir_a, dir_b = profiling_dataset(quick)
    polys_a, polys_b = load_result_sets(dir_a, dir_b)

    unopt = run_cross_compare(polys_a, polys_b, optimized=False)
    opt = run_cross_compare(polys_a, polys_b, optimized=True)
    dec_u = unopt.profiler.decomposition()
    dec_o = opt.profiler.decomposition()

    rows = [
        [name, 100 * dec_u.get(name, 0.0), 100 * dec_o.get(name, 0.0)]
        for name in _BUCKETS
    ]
    rows.append(
        ["(total seconds)", unopt.profiler.wall_total, opt.profiler.wall_total]
    )
    return ExperimentResult(
        name="Figure 2 — SDBMS query time decomposition (%)",
        headers=["component", "unoptimized", "optimized"],
        rows=rows,
        paper_expectation=(
            "unoptimized: ST_Intersects 21.8%, AreaOfInter 37.4%, "
            "AreaOfUnion 36.7%; optimized: AreaOfInter ~90%; index <6%"
        ),
        notes=[
            f"similarity agreement: J'={unopt.jaccard_mean:.4f} (unopt) "
            f"vs {opt.jaccard_mean:.4f} (opt)",
        ],
    )
