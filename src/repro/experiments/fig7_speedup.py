"""Figure 7: GEOS vs PixelBox-CPU-S vs PixelBox on all filtered pairs.

Paper result: computing areas of intersection and union for 619,609
filtered pairs takes GEOS over 430 s on one core; PixelBox-CPU-S reduces
that to ~290 s (algorithmic improvement alone, ~1.5x); PixelBox on the
GTX 580 finishes in 3.6 s — two orders of magnitude over GEOS.
"""

from __future__ import annotations

from repro.exact.boolean import intersection_area
from repro.experiments.common import (
    ExperimentResult,
    representative_pairs,
    time_call,
)
from repro.pixelbox.api import batch_areas
from repro.pixelbox.cpu import PixelBoxCpu

__all__ = ["run"]


def run(quick: bool = True) -> ExperimentResult:
    """Time the three implementation tiers on the same pair workload."""
    pairs = representative_pairs(quick, limit=400 if quick else None)

    def geos_baseline() -> None:
        for p, q in pairs:
            intersection_area(p, q)

    cpu = PixelBoxCpu(mode="scalar", workers=1)

    t_geos = time_call(geos_baseline, repeats=1 if quick else 2)
    t_cpu = time_call(lambda: cpu.compute_many(pairs), repeats=1 if quick else 2)
    t_gpu = time_call(lambda: batch_areas(pairs), repeats=3)

    rows = [
        ["GEOS (exact overlay)", t_geos, 1.0],
        ["PixelBox-CPU-S", t_cpu, t_geos / t_cpu],
        ["PixelBox (device)", t_gpu, t_geos / t_gpu],
    ]
    return ExperimentResult(
        name="Figure 7 — areas of intersection/union over all filtered pairs",
        headers=["implementation", "seconds", "speedup vs GEOS"],
        rows=rows,
        paper_expectation=(
            "GEOS 430 s; PixelBox-CPU-S 290 s (1.5x); PixelBox 3.6 s (~120x)"
        ),
        notes=[
            f"workload: {len(pairs)} MBR-intersecting pairs",
            "absolute times are NumPy-substrate-scaled; the ordering and "
            "orders-of-magnitude gap are the reproduced shape",
        ],
    )
