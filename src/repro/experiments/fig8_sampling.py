"""Figure 8: PixelOnly vs PixelBox-NoSep vs PixelBox across scale factors.

Paper result: PixelOnly's time grows rapidly with the polygon scale
factor; the sampling-box variants degrade only slightly.  At SF 1 NoSep
cuts 28% and PixelBox 34% off PixelOnly; by SF 5 NoSep halves PixelOnly
and PixelBox cuts a further 73% off NoSep.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    representative_pairs,
    time_call,
)
from repro.pixelbox.common import LaunchConfig, Method
from repro.pixelbox.engine import compute_pairs

__all__ = ["run", "SCALE_FACTORS"]

SCALE_FACTORS = (1, 2, 3, 4, 5)


def run(quick: bool = True) -> ExperimentResult:
    """Sweep the scale factor over the three algorithm variants."""
    base_pairs = representative_pairs(quick, limit=300 if quick else 1500)
    cfg = LaunchConfig()
    rows: list[list[object]] = []
    for sf in SCALE_FACTORS:
        pairs = [(p.scale(sf), q.scale(sf)) for p, q in base_pairs]
        t_po = time_call(lambda: compute_pairs(pairs, Method.PIXEL_ONLY, cfg))
        t_ns = time_call(lambda: compute_pairs(pairs, Method.NOSEP, cfg))
        t_pb = time_call(lambda: compute_pairs(pairs, Method.PIXELBOX, cfg))
        rows.append([f"SF{sf}", t_po, t_ns, t_pb, t_ns / t_po, t_pb / t_po])
    return ExperimentResult(
        name="Figure 8 — sampling boxes and indirect union vs pixelization",
        headers=[
            "scale", "PixelOnly (s)", "NoSep (s)", "PixelBox (s)",
            "NoSep/PixelOnly", "PixelBox/PixelOnly",
        ],
        rows=rows,
        paper_expectation=(
            "PixelOnly degrades rapidly with SF; NoSep and PixelBox only "
            "slightly; PixelBox < NoSep < PixelOnly (at SF5, NoSep -50% vs "
            "PixelOnly and PixelBox -73% vs NoSep)"
        ),
        notes=[
            f"workload: {len(base_pairs)} pairs, coordinates scaled by SF",
            "on this substrate the sampling-box recursion engages once a "
            "pair MBR exceeds T=n^2/2 (SF>=4 for the calibrated data); the "
            "paper's real datasets contain a large-pair tail that engages "
            "it at SF1 already",
        ],
    )
