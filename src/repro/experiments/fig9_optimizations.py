"""Figure 9: effect of the implementation optimizations (§3.3).

Paper result (normalized to PixelBox-NoOpt): enabling bank-conflict
avoidance, then loop unrolling, then shared-memory vertex staging raises
the speedup to 1.14x at SF1 and 1.30x at SF5; bank-conflict avoidance has
the smallest individual effect because pushes are rare next to position
computations.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, representative_pairs
from repro.gpu.cost import OptimizationFlags
from repro.gpu.device import GTX580
from repro.gpu.simt_kernel import collect_block_counts
from repro.gpu.simulator import simulate_device
from repro.pixelbox.common import LaunchConfig

__all__ = ["run", "VARIANTS"]

VARIANTS = [
    OptimizationFlags(False, False, False),
    OptimizationFlags(True, False, False),
    OptimizationFlags(True, True, False),
    OptimizationFlags(True, True, True),
]


def run(quick: bool = True) -> ExperimentResult:
    """Price one count collection under the four optimization variants."""
    base_pairs = representative_pairs(quick, limit=150 if quick else 600)
    cfg = LaunchConfig()
    rows: list[list[object]] = []
    for sf in (1, 3, 5):
        pairs = [(p.scale(sf), q.scale(sf)) for p, q in base_pairs]
        counts = [collect_block_counts(p, q, cfg) for p, q in pairs]
        reports = [simulate_device(counts, GTX580, f, cfg) for f in VARIANTS]
        base_ms = reports[0].device_ms
        rows.append(
            [f"SF{sf}"] + [base_ms / r.device_ms for r in reports]
        )
    return ExperimentResult(
        name="Figure 9 — implementation optimizations (speedup vs NoOpt)",
        headers=["scale"] + [f.label for f in VARIANTS],
        rows=rows,
        paper_expectation=(
            "NoOpt < NBC < NBC-UR < NBC-UR-SM; total 1.14x (SF1) to 1.30x "
            "(SF5); bank-conflict avoidance smallest effect"
        ),
        notes=[
            "speedups from the SIMT cycle model on the GTX 580 device "
            "spec; the replayed kernels' areas are validated against the "
            "NumPy engine in the test-suite",
        ],
    )
