"""Experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    fig2_profiling,
    fig7_speedup,
    fig8_sampling,
    fig9_optimizations,
    fig10_threshold,
    fig11_migration,
    fig12_datasets,
    table1_pipeline,
)
from repro.experiments.common import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_names"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2": fig2_profiling.run,
    "fig7": fig7_speedup.run,
    "fig8": fig8_sampling.run,
    "fig9": fig9_optimizations.run,
    "fig10": fig10_threshold.run,
    "table1": table1_pipeline.run,
    "fig11": fig11_migration.run,
    "fig12": fig12_datasets.run,
}


def experiment_names() -> list[str]:
    """All registered experiment ids, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(name: str, quick: bool = True) -> ExperimentResult:
    """Run one experiment by id (``fig2`` ... ``fig12``, ``table1``)."""
    if name not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](quick=quick)
