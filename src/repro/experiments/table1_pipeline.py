"""Table 1: execution schemes vs single-core PostGIS (§5.5).

Paper result (speedups over PostGIS-S): NoPipe-S 37x, NoPipe-M 64x,
Pipelined 76x.  NoPipe-M loses to the pipeline because its uncoordinated
streams serialize on the GPU (CPU cores were only ~50% utilized);
the pipeline's single aggregator batches input and consolidates kernel
launches.
"""

from __future__ import annotations

import time

from repro.experiments.common import (
    ExperimentResult,
    load_result_sets,
    pipeline_dataset,
)
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import (
    PipelineOptions,
    run_nopipe_multi,
    run_nopipe_single,
    run_pipelined,
)
from repro.sdbms.queries import run_cross_compare

__all__ = ["run"]


def _options() -> PipelineOptions:
    return PipelineOptions(devices=[GpuDevice(launch_overhead=0.002)])


def run(quick: bool = True) -> ExperimentResult:
    """Time the four execution schemes on one dataset."""
    dir_a, dir_b = pipeline_dataset(quick)
    polys_a, polys_b = load_result_sets(dir_a, dir_b)

    start = time.perf_counter()
    postgis = run_cross_compare(polys_a, polys_b, optimized=True)
    t_postgis = time.perf_counter() - start

    out_s = run_nopipe_single(dir_a, dir_b, _options())
    out_m = run_nopipe_multi(dir_a, dir_b, _options(), streams=4)
    out_p = run_pipelined(dir_a, dir_b, _options())

    rows = [
        ["PostGIS-S", t_postgis, 1.0],
        ["NoPipe-S", out_s.wall_seconds, t_postgis / out_s.wall_seconds],
        ["NoPipe-M", out_m.wall_seconds, t_postgis / out_m.wall_seconds],
        ["Pipelined", out_p.wall_seconds, t_postgis / out_p.wall_seconds],
    ]
    return ExperimentResult(
        name="Table 1 — execution schemes (speedup vs PostGIS-S)",
        headers=["scheme", "seconds", "speedup"],
        rows=rows,
        paper_expectation="NoPipe-S 37x, NoPipe-M 64x, Pipelined 76x",
        notes=[
            f"similarity agreement: PostGIS J'={postgis.jaccard_mean:.4f}, "
            f"Pipelined J'={out_p.jaccard_mean:.4f}",
            f"device launches: NoPipe-S {out_s.device_stats[0][3]}, "
            f"NoPipe-M {out_m.device_stats[0][3]}, "
            f"Pipelined {out_p.device_stats[0][3]} "
            "(batching consolidates launches)",
            f"GPU lock wait: NoPipe-M {out_m.device_stats[0][2]:.3f}s vs "
            f"Pipelined {out_p.device_stats[0][2]:.3f}s (contention)",
        ],
    )
