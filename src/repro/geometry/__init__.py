"""Integer pixel-grid geometry substrate.

Everything the paper computes lives on the pixel grid of a scanned slide:
polygons are rectilinear with integer vertices, areas are exact pixel
counts, and MBRs are integer boxes.  This package provides those
primitives plus lossless conversions between binary masks and polygons.
"""

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import (
    extract_polygons,
    fill_holes,
    label_components,
    parity_fill,
    polygon_to_mask,
    trace_mask,
)
from repro.geometry.wkt import polygon_from_wkt, polygon_to_wkt

__all__ = [
    "Box",
    "RectilinearPolygon",
    "polygon_to_mask",
    "parity_fill",
    "trace_mask",
    "extract_polygons",
    "fill_holes",
    "label_components",
    "polygon_from_wkt",
    "polygon_to_wkt",
]
