"""Axis-aligned integer boxes (MBRs and sampling boxes).

Coordinate model
----------------
The whole library works on the pixel grid of the source image.  A *pixel*
``(x, y)`` is the half-open unit cell ``[x, x+1) x [y, y+1)`` whose center is
``(x + 0.5, y + 0.5)``.  A :class:`Box` with corners ``(x0, y0, x1, y1)``
covers the pixels ``x0 <= x < x1`` and ``y0 <= y < y1``; geometrically it is
the rectangle ``[x0, x1] x [y0, y1]``.  Under this convention the number of
pixels inside a box is ``width * height`` and boxes tile the plane without
double counting.

Boxes are immutable value objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError

__all__ = ["Box"]


@dataclass(frozen=True, slots=True)
class Box:
    """A non-empty axis-aligned box on the pixel grid."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise GeometryError(
                f"box must have positive extent, got ({self.x0}, {self.y0}, "
                f"{self.x1}, {self.y1})"
            )

    # ------------------------------------------------------------------
    # Size queries
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Extent along x, in pixels."""
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        """Extent along y, in pixels."""
        return self.y1 - self.y0

    @property
    def size(self) -> int:
        """Number of pixels covered — ``BoxSize`` in the paper's Algorithm 1."""
        return self.width * self.height

    @property
    def center_pixel(self) -> tuple[int, int]:
        """The pixel containing the geometric center of the box.

        Lemma 1 tests the *geometric center*; since polygon boundaries run
        along integer grid lines, the center pixel's center point
        ``(cx + 0.5, cy + 0.5)`` is strictly off every boundary line, which
        removes all degenerate cases from the parity test.
        """
        return (self.x0 + self.width // 2, self.y0 + self.height // 2)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Box") -> "Box | None":
        """Intersection with ``other``, or ``None`` when they share no pixel."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Box(x0, y0, x1, y1)

    def intersects(self, other: "Box") -> bool:
        """MBR-overlap predicate — PostGIS's ``&&`` operator."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersects_or_touches(self, other: "Box") -> bool:
        """Closed-rectangle overlap: true even when only edges/corners meet.

        This is the MBR pre-filter for the OGC ``ST_Intersects`` predicate,
        whose semantics include boundary contact.
        """
        return (
            self.x0 <= other.x1
            and other.x0 <= self.x1
            and self.y0 <= other.y1
            and other.y0 <= self.y1
        )

    def cover(self, other: "Box") -> "Box":
        """Smallest box containing both operands (MBR union)."""
        return Box(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def contains_box(self, other: "Box") -> bool:
        """True when every pixel of ``other`` is covered by ``self``."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def contains_pixel(self, x: int, y: int) -> bool:
        """True when pixel ``(x, y)`` lies inside the box."""
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    # ------------------------------------------------------------------
    # Subdivision (sampling boxes)
    # ------------------------------------------------------------------
    def split(self, nx: int, ny: int) -> list["Box"]:
        """Partition into at most ``nx * ny`` non-empty sub-boxes.

        This is ``SubSampBox`` from Algorithm 1: the box is divided into a
        near-uniform ``nx x ny`` grid.  When the box is narrower than the
        requested grid the degenerate slices are dropped, so the returned
        boxes always tile ``self`` exactly.
        """
        if nx <= 0 or ny <= 0:
            raise GeometryError(f"split grid must be positive, got {nx}x{ny}")
        xs = _cuts(self.x0, self.x1, nx)
        ys = _cuts(self.y0, self.y1, ny)
        return [
            Box(xs[i], ys[j], xs[i + 1], ys[j + 1])
            for j in range(len(ys) - 1)
            for i in range(len(xs) - 1)
        ]

    def translate(self, dx: int, dy: int) -> "Box":
        """The box shifted by ``(dx, dy)``."""
        return Box(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def scale(self, factor: int) -> "Box":
        """The box with all corner coordinates multiplied by ``factor``."""
        if factor <= 0:
            raise GeometryError(f"scale factor must be positive, got {factor}")
        return Box(
            self.x0 * factor, self.y0 * factor, self.x1 * factor, self.y1 * factor
        )

    def as_tuple(self) -> tuple[int, int, int, int]:
        """``(x0, y0, x1, y1)`` as a plain tuple."""
        return (self.x0, self.y0, self.x1, self.y1)


def _cuts(lo: int, hi: int, parts: int) -> list[int]:
    """Split ``[lo, hi)`` into at most ``parts`` non-empty integer ranges.

    Uses the proportional cut ``lo + i * span // parts`` — the same
    formula as the array-based splitter in
    :mod:`repro.pixelbox.vectorized`, so every implementation produces an
    identical subdivision tree.
    """
    span = hi - lo
    return sorted({lo + (i * span) // parts for i in range(parts + 1)})
