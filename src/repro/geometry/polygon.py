"""Rectilinear polygons with integer vertices.

Polygons segmented from raster pathology images are a special form of
rectilinear polygon (paper §3.1): vertex coordinates are integers and every
edge is horizontal or vertical, because the segmented boundary follows pixel
grid lines.  This module is the library-wide representation of such
polygons.

A polygon is stored as a closed ring of ``n`` vertices (the closing edge
from the last vertex back to the first is implicit).  Counter-clockwise
rings have positive signed area; the mask tracer in
:mod:`repro.geometry.raster` produces counter-clockwise outer rings.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import RectilinearityError, RingClosureError
from repro.geometry.box import Box

__all__ = ["RectilinearPolygon"]


class RectilinearPolygon:
    """An immutable simple rectilinear polygon on the pixel grid.

    Parameters
    ----------
    vertices:
        Sequence of ``(x, y)`` integer pairs or an ``(n, 2)`` array.  The
        ring must not repeat the first vertex at the end; consecutive
        vertices (including last -> first) must differ in exactly one
        coordinate, and edge directions must alternate between horizontal
        and vertical.
    validate:
        Skip structural validation when ``False`` — used internally by
        constructors that produce rings that are correct by construction.
    """

    __slots__ = ("_vertices", "__dict__")

    def __init__(
        self, vertices: Sequence[tuple[int, int]] | np.ndarray, validate: bool = True
    ) -> None:
        arr = np.asarray(vertices, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise RingClosureError(
                f"vertices must be an (n, 2) array, got shape {arr.shape}"
            )
        arr = arr.copy()
        arr.setflags(write=False)
        self._vertices = arr
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        v = self._vertices
        n = len(v)
        if n < 4:
            raise RingClosureError(f"a rectilinear ring needs >= 4 vertices, got {n}")
        if bool(np.array_equal(v[0], v[-1])):
            # Rings are implicitly closed; an explicit closing vertex is the
            # most common input error and would create a zero-length edge.
            # Re-visiting a vertex elsewhere is legal: the boundary of a
            # pinched region passes through its pinch vertex twice.
            raise RingClosureError(
                "ring must not repeat the first vertex at the end "
                "(rings are implicitly closed)"
            )
        if n % 2 != 0:
            raise RectilinearityError(
                f"a rectilinear ring has an even vertex count, got {n}"
            )
        deltas = np.roll(v, -1, axis=0) - v
        moves_x = deltas[:, 0] != 0
        moves_y = deltas[:, 1] != 0
        if np.any(moves_x & moves_y):
            bad = int(np.flatnonzero(moves_x & moves_y)[0])
            raise RectilinearityError(f"edge starting at vertex {bad} is diagonal")
        if np.any(~moves_x & ~moves_y):
            bad = int(np.flatnonzero(~moves_x & ~moves_y)[0])
            raise RectilinearityError(f"edge starting at vertex {bad} has zero length")
        if np.any(moves_x == np.roll(moves_x, -1)):
            bad = int(np.flatnonzero(moves_x == np.roll(moves_x, -1))[0])
            raise RectilinearityError(
                f"edges around vertex {bad} do not alternate horizontal/vertical"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> np.ndarray:
        """Read-only ``(n, 2)`` int64 vertex array."""
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for x, y in self._vertices:
            yield (int(x), int(y))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectilinearPolygon):
            return NotImplemented
        return self._vertices.shape == other._vertices.shape and bool(
            np.array_equal(self._vertices, other._vertices)
        )

    def __hash__(self) -> int:
        return hash(self._vertices.tobytes())

    def __repr__(self) -> str:
        return (
            f"RectilinearPolygon({len(self)} vertices, area={self.area}, "
            f"mbr={self.mbr.as_tuple()})"
        )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @cached_property
    def signed_area(self) -> int:
        """Shoelace signed area; positive for counter-clockwise rings.

        This is ``PolyArea`` from Algorithm 1:
        ``A = 1/2 * sum(x_i * y_{i+1} - x_{i+1} * y_i)``.  For rectilinear
        integer rings the doubled sum is always even, so the result is an
        exact integer equal to the number of pixels enclosed (signed).
        """
        v = self._vertices
        x, y = v[:, 0], v[:, 1]
        x2, y2 = np.roll(x, -1), np.roll(y, -1)
        doubled = np.sum(x * y2 - x2 * y, dtype=np.int64)
        return int(doubled) // 2

    @cached_property
    def area(self) -> int:
        """Unsigned area in pixels — ``ST_Area`` of this polygon."""
        return abs(self.signed_area)

    @cached_property
    def mbr(self) -> Box:
        """Minimum bounding rectangle."""
        v = self._vertices
        return Box(
            int(v[:, 0].min()),
            int(v[:, 1].min()),
            int(v[:, 0].max()),
            int(v[:, 1].max()),
        )

    @cached_property
    def vertical_edges(self) -> np.ndarray:
        """``(k, 3)`` array of vertical edges as ``(x, y_lo, y_hi)``.

        ``y_lo < y_hi`` regardless of the ring's traversal direction.  Only
        vertical edges matter for the horizontal-ray parity test used
        throughout the library.
        """
        v = self._vertices
        w = np.roll(v, -1, axis=0)
        is_vert = v[:, 0] == w[:, 0]
        xs = v[is_vert, 0]
        y_a, y_b = v[is_vert, 1], w[is_vert, 1]
        return np.column_stack([xs, np.minimum(y_a, y_b), np.maximum(y_a, y_b)])

    @cached_property
    def horizontal_edges(self) -> np.ndarray:
        """``(k, 3)`` array of horizontal edges as ``(y, x_lo, x_hi)``."""
        v = self._vertices
        w = np.roll(v, -1, axis=0)
        is_horz = v[:, 1] == w[:, 1]
        ys = v[is_horz, 1]
        x_a, x_b = v[is_horz, 0], w[is_horz, 0]
        return np.column_stack([ys, np.minimum(x_a, x_b), np.maximum(x_a, x_b)])

    @property
    def orientation(self) -> int:
        """``+1`` for counter-clockwise rings, ``-1`` for clockwise."""
        return 1 if self.signed_area > 0 else -1

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def contains_pixel(self, x: int, y: int) -> bool:
        """Parity (ray-casting) test for the pixel ``(x, y)``.

        A horizontal ray is cast from the pixel center ``(x+0.5, y+0.5)``
        towards ``-x`` and crossings with vertical edges are counted
        (paper §3.1 / Figure 4(b)).  Centers sit strictly between grid
        lines, so a crossing with edge ``(xe, y_lo, y_hi)`` happens exactly
        when ``xe <= x`` and ``y_lo <= y < y_hi`` — no degenerate cases.
        """
        edges = self.vertical_edges
        hit = (edges[:, 0] <= x) & (edges[:, 1] <= y) & (y < edges[:, 2])
        return bool(np.count_nonzero(hit) % 2)

    def contains_point(self, px: float, py: float) -> bool:
        """Parity test for an arbitrary point strictly off the grid lines."""
        edges = self.vertical_edges
        hit = (edges[:, 0] < px) & (edges[:, 1] < py) & (py < edges[:, 2])
        return bool(np.count_nonzero(hit) % 2)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translate(self, dx: int, dy: int) -> "RectilinearPolygon":
        """The polygon shifted by ``(dx, dy)``."""
        return RectilinearPolygon(
            self._vertices + np.array([dx, dy], dtype=np.int64), validate=False
        )

    def scale(self, factor: int) -> "RectilinearPolygon":
        """Multiply every coordinate by ``factor``.

        This is the paper's §5.2 "scale factor" stress transformation: a
        factor of ``s`` grows the pixel count by ``s**2`` while keeping the
        vertex count unchanged.
        """
        if factor <= 0:
            raise RectilinearityError(f"scale factor must be positive, got {factor}")
        return RectilinearPolygon(self._vertices * np.int64(factor), validate=False)

    def reversed(self) -> "RectilinearPolygon":
        """The same ring traversed in the opposite direction."""
        return RectilinearPolygon(self._vertices[::-1], validate=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_box(cls, box: Box) -> "RectilinearPolygon":
        """The counter-clockwise rectangle ring covering ``box``."""
        return cls(
            [
                (box.x0, box.y0),
                (box.x1, box.y0),
                (box.x1, box.y1),
                (box.x0, box.y1),
            ],
            validate=False,
        )

    @classmethod
    def from_pairs(cls, flat: Iterable[int]) -> "RectilinearPolygon":
        """Build from a flat ``x0 y0 x1 y1 ...`` coordinate iterable."""
        coords = list(flat)
        if len(coords) % 2 != 0:
            raise RingClosureError("flat coordinate list has odd length")
        arr = np.asarray(coords, dtype=np.int64).reshape(-1, 2)
        return cls(arr)
