"""Conversions between binary pixel masks and rectilinear polygons.

Segmentation algorithms emit object boundaries traced on the pixel grid
(paper §3.1, Figure 3).  This module provides both directions:

* :func:`polygon_to_mask` — rasterize a polygon back to the boolean mask of
  pixels it encloses, using the same crossing-parity semantics as the
  PixelBox pixelization test.  This is the ground truth every area
  computation in the library is validated against.
* :func:`trace_mask` / :func:`extract_polygons` — trace the boundary loops
  of a mask into rectilinear rings, the way a segmentation pipeline
  produces its polygon output.

Mask convention: ``mask[y, x]`` is pixel ``(x + origin_x, y + origin_y)``;
row index is the y coordinate (y grows upwards in image terms — the
orientation is irrelevant to areas, only consistency matters).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import RasterError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon

__all__ = [
    "polygon_to_mask",
    "parity_fill",
    "trace_mask",
    "extract_polygons",
    "fill_holes",
    "label_components",
]


# ----------------------------------------------------------------------
# Polygon -> mask
# ----------------------------------------------------------------------
def parity_fill(
    vertical_edges: np.ndarray, box: Box, out: np.ndarray | None = None
) -> np.ndarray:
    """Crossing-parity fill of a polygon over ``box``.

    For pixel center ``(x+0.5, y+0.5)`` the ray towards ``-x`` crosses the
    vertical edge ``(xe, y_lo, y_hi)`` exactly when ``xe <= x`` and
    ``y_lo <= y < y_hi``.  Instead of testing every pixel against every
    edge, each edge toggles a parity bit for the pixel columns to its right
    (one scatter per edge) and a single XOR-scan along x resolves the
    parity for every pixel — the same result as the per-pixel ray cast of
    paper §3.1, computed with two passes over the box.

    Parameters
    ----------
    vertical_edges:
        ``(k, 3)`` array of ``(x, y_lo, y_hi)`` vertical edges.
    box:
        Region of interest; the returned mask has shape
        ``(box.height, box.width)``.
    out:
        Optional pre-allocated uint8 scratch array of that shape.
    """
    h, w = box.height, box.width
    if out is None:
        flips = np.zeros((h, w), dtype=np.uint8)
    else:
        if out.shape != (h, w):
            raise RasterError(f"scratch shape {out.shape} != box shape {(h, w)}")
        flips = out
        flips[:] = 0
    for xe, y_lo, y_hi in vertical_edges:
        y0 = max(int(y_lo) - box.y0, 0)
        y1 = min(int(y_hi) - box.y0, h)
        if y0 >= y1:
            continue
        col = max(int(xe) - box.x0, 0)
        if col >= w:
            continue
        flips[y0:y1, col] ^= 1
    np.bitwise_xor.accumulate(flips, axis=1, out=flips)
    return flips.astype(bool, copy=False)


def polygon_to_mask(
    polygon: RectilinearPolygon, box: Box | None = None
) -> np.ndarray:
    """Boolean mask of the pixels enclosed by ``polygon`` within ``box``.

    ``box`` defaults to the polygon's MBR.  Pixels of the polygon that fall
    outside ``box`` are clipped away.
    """
    region = polygon.mbr if box is None else box
    return parity_fill(polygon.vertical_edges, region)


# ----------------------------------------------------------------------
# Mask -> polygons
# ----------------------------------------------------------------------
# Directions are encoded as (dx, dy); LEFT_TURN[d] rotates 90 degrees
# counter-clockwise, which at a saddle vertex keeps the trace hugging the
# same corner so that loops never cross themselves.
_LEFT_TURN = {(1, 0): (0, 1), (0, 1): (-1, 0), (-1, 0): (0, -1), (0, -1): (1, 0)}


def _boundary_edges(mask: np.ndarray) -> dict[tuple[int, int], list[tuple[int, int]]]:
    """Directed unit boundary edges of ``mask``, keyed by start vertex.

    Every edge keeps the interior on its left, so outer boundaries come out
    counter-clockwise (positive shoelace) and hole boundaries clockwise.
    """
    h, w = mask.shape
    padded = np.zeros((h + 2, w + 2), dtype=bool)
    padded[1:-1, 1:-1] = mask
    inside = padded[1:-1, 1:-1]
    ys, xs = np.nonzero(inside)
    edges: dict[tuple[int, int], list[tuple[int, int]]] = {}

    def add(x0: int, y0: int, dx: int, dy: int) -> None:
        edges.setdefault((x0, y0), []).append((dx, dy))

    top_open = ~padded[2:, 1:-1][ys, xs]
    bottom_open = ~padded[:-2, 1:-1][ys, xs]
    left_open = ~padded[1:-1, :-2][ys, xs]
    right_open = ~padded[1:-1, 2:][ys, xs]
    for x, y, t, b, l, r in zip(
        xs.tolist(), ys.tolist(), top_open.tolist(), bottom_open.tolist(),
        left_open.tolist(), right_open.tolist()
    ):
        if b:
            add(x, y, 1, 0)  # bottom edge, +x, interior above
        if r:
            add(x + 1, y, 0, 1)  # right edge, +y, interior to the left
        if t:
            add(x + 1, y + 1, -1, 0)  # top edge, -x, interior below
        if l:
            add(x, y + 1, 0, -1)  # left edge, -y, interior to the right
    return edges


def _compress_ring(points: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge runs of collinear unit steps into maximal edges."""
    ring: list[tuple[int, int]] = []
    n = len(points)
    for i in range(n):
        prev = points[i - 1]
        cur = points[i]
        nxt = points[(i + 1) % n]
        d_in = (cur[0] - prev[0], cur[1] - prev[1])
        d_out = (nxt[0] - cur[0], nxt[1] - cur[1])
        turn_in = (d_in[0] and 1) or 0, (d_in[1] and 1) or 0
        turn_out = (d_out[0] and 1) or 0, (d_out[1] and 1) or 0
        if turn_in != turn_out:
            ring.append(cur)
    return ring


def trace_mask(
    mask: np.ndarray, origin: tuple[int, int] = (0, 0)
) -> tuple[list[RectilinearPolygon], list[RectilinearPolygon]]:
    """Trace all boundary loops of ``mask`` into rectilinear rings.

    Returns ``(outers, holes)``: counter-clockwise outer rings and
    clockwise hole rings.  At saddle vertices (two diagonal inside cells)
    the tracer turns left, which splits the boundary into loops that touch
    at the vertex but never cross.
    """
    if mask.ndim != 2:
        raise RasterError(f"mask must be 2-D, got shape {mask.shape}")
    ox, oy = origin
    edges = _boundary_edges(mask)
    # Pair every incoming edge with its outgoing successor up front.  At a
    # regular vertex there is a single choice; at a saddle vertex the
    # left-turn partner is always present, and pairing globally (instead of
    # while walking) guarantees loops never cross no matter where a walk
    # starts.
    visited: set[tuple[int, int, int, int]] = set()
    outers: list[RectilinearPolygon] = []
    holes: list[RectilinearPolygon] = []

    def successor(vertex: tuple[int, int], direction: tuple[int, int]):
        end = (vertex[0] + direction[0], vertex[1] + direction[1])
        options = edges.get(end)
        if not options:
            raise RasterError(f"boundary trace broke at vertex {end}")
        if len(options) == 1:
            return end, options[0]
        left = _LEFT_TURN[direction]
        if left not in options:
            raise RasterError(f"inconsistent saddle at vertex {end}")
        return end, left

    for start_vertex in sorted(edges):
        for start_dir in edges[start_vertex]:
            if (*start_vertex, *start_dir) in visited:
                continue
            ring_points: list[tuple[int, int]] = []
            vertex, direction = start_vertex, start_dir
            while (*vertex, *direction) not in visited:
                visited.add((*vertex, *direction))
                ring_points.append(vertex)
                vertex, direction = successor(vertex, direction)
            ring = _compress_ring(ring_points)
            poly = RectilinearPolygon(
                [(x + ox, y + oy) for x, y in ring], validate=False
            )
            if poly.signed_area > 0:
                outers.append(poly)
            else:
                holes.append(poly)
    return outers, holes


def extract_polygons(
    mask: np.ndarray,
    origin: tuple[int, int] = (0, 0),
    fill_interior_holes: bool = True,
    min_area: int = 1,
) -> list[RectilinearPolygon]:
    """Segment ``mask`` into object polygons, the library's "segmentation".

    Parameters
    ----------
    mask:
        Boolean pixel mask.
    origin:
        ``(x, y)`` offset added to every vertex — the tile position within
        the whole-slide image.
    fill_interior_holes:
        When ``True`` (default) interior holes are filled first so every
        returned polygon is simply connected, which matches how nuclei
        segmentations are post-processed in practice.  When ``False`` a
        mask with holes raises :class:`~repro.errors.RasterError`.
    min_area:
        Objects smaller than this many pixels are dropped (speckle
        removal).
    """
    work = fill_holes(mask) if fill_interior_holes else np.asarray(mask, dtype=bool)
    outers, holes = trace_mask(work, origin)
    if holes and not fill_interior_holes:
        raise RasterError(
            f"mask has {len(holes)} interior hole(s); pass "
            "fill_interior_holes=True to fill them"
        )
    return [p for p in outers if p.area >= min_area]


# ----------------------------------------------------------------------
# Mask utilities
# ----------------------------------------------------------------------
def fill_holes(mask: np.ndarray) -> np.ndarray:
    """Fill interior holes: pixels not 4-connected to the mask border.

    Equivalent to ``scipy.ndimage.binary_fill_holes`` but self-contained;
    the test-suite cross-checks the two implementations.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise RasterError(f"mask must be 2-D, got shape {mask.shape}")
    h, w = mask.shape
    outside = np.zeros((h + 2, w + 2), dtype=bool)
    blocked = np.zeros((h + 2, w + 2), dtype=bool)
    blocked[1:-1, 1:-1] = mask
    queue: deque[tuple[int, int]] = deque([(0, 0)])
    outside[0, 0] = True
    while queue:
        y, x = queue.popleft()
        for ny, nx in ((y - 1, x), (y + 1, x), (y, x - 1), (y, x + 1)):
            if 0 <= ny < h + 2 and 0 <= nx < w + 2:
                if not outside[ny, nx] and not blocked[ny, nx]:
                    outside[ny, nx] = True
                    queue.append((ny, nx))
    return ~outside[1:-1, 1:-1]


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected component labelling.

    Returns ``(labels, count)`` with labels in ``1..count`` and ``0`` for
    background — a minimal stand-in for ``scipy.ndimage.label`` used by the
    synthetic data generator and the test-suite.
    """
    mask = np.asarray(mask, dtype=bool)
    labels = np.zeros(mask.shape, dtype=np.int32)
    h, w = mask.shape
    current = 0
    for sy in range(h):
        for sx in range(w):
            if mask[sy, sx] and labels[sy, sx] == 0:
                current += 1
                queue: deque[tuple[int, int]] = deque([(sy, sx)])
                labels[sy, sx] = current
                while queue:
                    y, x = queue.popleft()
                    for ny, nx in ((y - 1, x), (y + 1, x), (y, x - 1), (y, x + 1)):
                        if 0 <= ny < h and 0 <= nx < w:
                            if mask[ny, nx] and labels[ny, nx] == 0:
                                labels[ny, nx] = current
                                queue.append((ny, nx))
    return labels, current


def mask_bbox(mask: np.ndarray, origin: tuple[int, int] = (0, 0)) -> Box | None:
    """MBR of the true pixels of ``mask``, or ``None`` for an empty mask."""
    ys, xs = np.nonzero(np.asarray(mask, dtype=bool))
    if len(xs) == 0:
        return None
    ox, oy = origin
    return Box(
        int(xs.min()) + ox,
        int(ys.min()) + oy,
        int(xs.max()) + 1 + ox,
        int(ys.max()) + 1 + oy,
    )
