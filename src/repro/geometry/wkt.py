"""Minimal Well-Known-Text support for rectilinear polygons.

The paper's raw data are text polygon files; pathology toolchains exchange
them as WKT ``POLYGON`` literals (the PostGIS loader in §2.2 consumes the
same).  Only single-ring ``POLYGON`` geometries with integer coordinates
are supported — exactly the shapes this library works with.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import WktError
from repro.geometry.polygon import RectilinearPolygon

__all__ = ["polygon_to_wkt", "polygon_from_wkt"]

_WKT_RE = re.compile(
    r"^\s*POLYGON\s*\(\s*\(\s*(?P<body>[-0-9,.\s]+?)\s*\)\s*\)\s*$",
    re.IGNORECASE,
)


def polygon_to_wkt(polygon: RectilinearPolygon) -> str:
    """Serialize to ``POLYGON ((x y, x y, ...))`` with an explicit closure.

    WKT rings repeat the first vertex at the end; the library's internal
    representation does not, so the closing vertex is added here and
    stripped again by :func:`polygon_from_wkt`.
    """
    coords = ", ".join(f"{x} {y}" for x, y in polygon)
    first = polygon.vertices[0]
    return f"POLYGON (({coords}, {int(first[0])} {int(first[1])}))"


def polygon_from_wkt(text: str) -> RectilinearPolygon:
    """Parse a single-ring ``POLYGON`` WKT literal.

    Raises
    ------
    WktError
        On malformed syntax, non-integer coordinates, unclosed rings, or
        multi-ring polygons.
    """
    match = _WKT_RE.match(text)
    if match is None:
        if re.search(r"\)\s*,\s*\(", text):
            raise WktError("multi-ring POLYGON geometries are not supported")
        raise WktError(f"not a POLYGON WKT literal: {text[:60]!r}")
    pairs = []
    for token in match.group("body").split(","):
        parts = token.split()
        if len(parts) != 2:
            raise WktError(f"bad coordinate pair {token!r}")
        try:
            x, y = (_as_int(parts[0]), _as_int(parts[1]))
        except ValueError as exc:
            raise WktError(f"non-integer coordinate in {token!r}") from exc
        pairs.append((x, y))
    if len(pairs) < 5:
        raise WktError(f"ring needs >= 4 distinct vertices, got {len(pairs) - 1}")
    if pairs[0] != pairs[-1]:
        raise WktError("WKT ring is not closed (first vertex != last vertex)")
    return RectilinearPolygon(np.asarray(pairs[:-1], dtype=np.int64))


def _as_int(token: str) -> int:
    """Parse an integer, accepting the ``12.0`` float spelling."""
    value = float(token)
    if not value.is_integer():
        raise ValueError(token)
    return int(value)
