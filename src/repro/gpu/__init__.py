"""SIMT GPU simulator: device models, bank conflicts, cycle costing.

Used by the architecture-level experiments (Figure 9's implementation
optimizations, the §5.4 block-size observation).  The wall-clock
experiments run on the NumPy device engine instead; see DESIGN.md's
substitution table.
"""

from repro.gpu.cost import CostModel, CycleBreakdown, OptimizationFlags
from repro.gpu.device import GTX580, TESLA_M2050, DeviceSpec
from repro.gpu.memory import (
    AOS_RECORD_WORDS,
    SAMPLING_BOX_WORDS,
    aos_push_addresses,
    conflict_ways,
    soa_push_addresses,
)
from repro.gpu.simt_kernel import BlockCounts, collect_block_counts, evaluate_cycles
from repro.gpu.simulator import SimtReport, simulate_device

__all__ = [
    "DeviceSpec",
    "GTX580",
    "TESLA_M2050",
    "OptimizationFlags",
    "CostModel",
    "CycleBreakdown",
    "conflict_ways",
    "aos_push_addresses",
    "soa_push_addresses",
    "SAMPLING_BOX_WORDS",
    "AOS_RECORD_WORDS",
    "BlockCounts",
    "collect_block_counts",
    "evaluate_cycles",
    "simulate_device",
]
