"""Cost-model calibration: fit measured constants for this host.

The recommenders in :mod:`repro.gpu.cost` price executors in *modeled*
ALU cycles; the spin-up and dispatch charges they weigh those cycles
against are educated guesses.  This module measures the real quantities
the backend-scaling and service-throughput benchmarks track —

* how many modeled cycles the vectorized engine retires per wall second
  (the seconds-to-cycles bridge),
* what one worker-process spin-up actually costs,
* what one remote shard dispatch round trip actually costs —

and writes them to a JSON profile.  Point ``REPRO_COST_PROFILE`` at the
file (or call :func:`repro.gpu.cost.set_calibration`) and
``recommend_backend`` / ``recommend_batch_pairs`` /
``recommend_shard_pairs`` use the measured constants.  With the
variable unset they keep the modeled defaults — calibration never
becomes a runtime dependency — while a variable naming a missing or
malformed profile raises :class:`~repro.errors.DeviceError` loudly
(a configured profile that silently degraded to modeled policy would
be worse than none).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.backends import get_backend, profile_pairs
from repro.gpu.cost import (
    CostCalibration,
    estimate_comparison_cycles,
)
from repro.pixelbox.common import LaunchConfig

__all__ = ["run_calibration", "write_profile"]


def _calibration_workload(pairs_target: int):
    """Pathology-scale pairs (the backend-scaling benchmark's shape)."""
    from repro.data.synth import generate_tile_pair
    from repro.index.join import mbr_pair_join

    pairs = []
    seed = 7100
    while len(pairs) < pairs_target:
        set_a, set_b = generate_tile_pair(
            seed=seed, nuclei=200, width=384, height=384
        )
        join = mbr_pair_join(set_a, set_b)
        pairs.extend(join.pairs(set_a, set_b))
        seed += 1
    return pairs[:pairs_target]


def _measure_cycles_per_second(pairs, repeats: int) -> float:
    """Modeled cycles the vectorized engine retires per wall second."""
    backend = get_backend("vectorized")
    cfg = LaunchConfig()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        backend.compare_pairs(pairs, cfg)
        best = min(best, time.perf_counter() - t0)
    mean_edges, mean_pixels = profile_pairs(pairs)
    modeled = estimate_comparison_cycles(
        len(pairs), mean_edges, mean_pixels, cfg.threshold, cfg.block_size
    )
    return modeled / max(best, 1e-9)


def _measure_spinup_seconds(workers: int) -> float:
    """Wall seconds to fork/spawn one pooled worker process."""
    with get_backend(
        "multiprocess", workers=workers, persistent=True
    ) as backend:
        t0 = time.perf_counter()
        pids = backend.warm()
        elapsed = time.perf_counter() - t0
    return elapsed / max(len(pids), 1)


def _measure_dispatch_seconds(pairs, rounds: int) -> float:
    """Wall seconds of one warm remote shard dispatch (tables resident).

    Runs a tiny shard through a loopback worker repeatedly; with the
    tables cached after the first round, what remains is exactly the
    per-shard overhead the coordinator pays: RUN_SHARD framing, the
    round trip, scheduling — plus a few pairs of compute, subtracted
    out via the cycle model below.
    """
    from repro.cluster import ClusterBackend

    probe = pairs[:8]
    with ClusterBackend(
        loopback_workers=1, min_pairs=1, shard_pairs=len(probe)
    ) as backend:
        backend.compare_pairs(probe)  # pay the table transfer once
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            backend.compare_pairs(probe)
            best = min(best, time.perf_counter() - t0)
    return best


def _measure_compiled(pairs, repeats: int, cycles_per_second: float):
    """``(speedup, warmup_cycles)`` of the compiled substrate, if present.

    Returns ``None`` when the ``repro[numba]`` extra is not installed;
    the profile then keeps the modeled defaults.  The first compiled
    call pays JIT compilation — that wall time, bridged through the
    cycles-per-second constant, is exactly the warm-up charge
    ``recommend_backend`` amortizes against.
    """
    from repro.backends.numba_backend import numba_unavailable_reason

    if numba_unavailable_reason() is not None:
        return None
    cfg = LaunchConfig()
    with get_backend("numba") as compiled:
        t0 = time.perf_counter()
        compiled.compare_pairs(pairs[:2], cfg)  # JIT compilation happens here
        warmup_seconds = time.perf_counter() - t0
        best_compiled = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            compiled.compare_pairs(pairs, cfg)
            best_compiled = min(best_compiled, time.perf_counter() - t0)
    backend = get_backend("vectorized")
    best_numpy = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        backend.compare_pairs(pairs, cfg)
        best_numpy = min(best_numpy, time.perf_counter() - t0)
    speedup = max(1.0, best_numpy / max(best_compiled, 1e-9))
    warmup_cycles = max(1.0, warmup_seconds * cycles_per_second)
    return speedup, warmup_cycles


def run_calibration(quick: bool = False) -> CostCalibration:
    """Measure this host's constants; returns the fitted profile."""
    pairs = _calibration_workload(200 if quick else 1500)
    repeats = 1 if quick else 3
    cycles_per_second = _measure_cycles_per_second(pairs, repeats)
    spinup_seconds = _measure_spinup_seconds(workers=1 if quick else 2)
    dispatch_seconds = _measure_dispatch_seconds(pairs, rounds=2 if quick else 5)

    mean_edges, mean_pixels = profile_pairs(pairs[:8])
    cfg = LaunchConfig()
    probe_cycles = estimate_comparison_cycles(
        8, mean_edges, mean_pixels, cfg.threshold, cfg.block_size
    )
    dispatch_cycles = max(
        1.0, dispatch_seconds * cycles_per_second - probe_cycles
    )
    compiled = _measure_compiled(pairs, repeats, cycles_per_second)
    extra = {}
    if compiled is not None:
        extra = {
            "compiled_speedup": compiled[0],
            "compiled_warmup_cycles": compiled[1],
        }
    return CostCalibration(
        cycles_per_second=cycles_per_second,
        process_spinup_cycles=max(1.0, spinup_seconds * cycles_per_second),
        shard_dispatch_cycles=dispatch_cycles,
        source=f"{platform.node()} {time.strftime('%Y-%m-%d')} "
        f"({'quick' if quick else 'full'})",
        **extra,
    )


def write_profile(profile: CostCalibration, path: str | Path) -> Path:
    """Persist ``profile`` as the JSON file the cost model loads."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(profile.as_dict(), indent=2) + "\n")
    return out
