"""Cycle cost model for the PixelBox SIMT kernel.

The model charges warp-issue cycles for ALU work, memory accesses (global
vs shared, with bank-conflict serialization), loop overhead (removable by
unrolling), and block-wide synchronization.  Absolute cycle counts are
*modeled*, not measured from silicon; the experiments that use them
(Figure 9, §5.4) only interpret normalized ratios, which depend on the
*relative* weights the paper's optimizations change.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DeviceError
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import (
    aos_push_addresses,
    conflict_ways,
    SAMPLING_BOX_WORDS,
    soa_push_addresses,
)

__all__ = [
    "OptimizationFlags",
    "CostModel",
    "CostCalibration",
    "CycleBreakdown",
    "estimate_comparison_cycles",
    "compiled_substrate_available",
    "recommend_backend",
    "recommend_batch_pairs",
    "recommend_shard_pairs",
    "load_calibration",
    "set_calibration",
    "active_calibration",
    "clear_calibration",
]

# ALU cycles per edge test in the pixel/box position loops (compare +
# select + accumulate).
_EDGE_TEST_ALU = 4
# Loop bookkeeping cycles per iteration (index increment + branch).
_LOOP_OVERHEAD = 2
# Unroll factor used by the optimized implementation (§3.3).
_UNROLL = 4


@dataclass(frozen=True, slots=True)
class OptimizationFlags:
    """Which of §3.3's implementation optimizations are enabled.

    The four variants of Figure 9 map to::

        PixelBox-NoOpt        OptimizationFlags(False, False, False)
        PixelBox-NBC          OptimizationFlags(True,  False, False)
        PixelBox-NBC-UR       OptimizationFlags(True,  True,  False)
        PixelBox-NBC-UR-SM    OptimizationFlags(True,  True,  True)
    """

    avoid_bank_conflicts: bool = True
    loop_unrolling: bool = True
    shared_mem_vertices: bool = True

    @property
    def label(self) -> str:
        """Figure 9's variant name."""
        if not self.avoid_bank_conflicts:
            return "PixelBox-NoOpt"
        if not self.loop_unrolling:
            return "PixelBox-NBC"
        if not self.shared_mem_vertices:
            return "PixelBox-NBC-UR"
        return "PixelBox-NBC-UR-SM"


@dataclass(slots=True)
class CycleBreakdown:
    """Where a block's cycles went."""

    alu: float = 0.0
    loop_overhead: float = 0.0
    global_mem: float = 0.0
    shared_mem: float = 0.0
    sync: float = 0.0
    stack: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.alu
            + self.loop_overhead
            + self.global_mem
            + self.shared_mem
            + self.sync
            + self.stack
        )

    def add(self, other: "CycleBreakdown") -> None:
        self.alu += other.alu
        self.loop_overhead += other.loop_overhead
        self.global_mem += other.global_mem
        self.shared_mem += other.shared_mem
        self.sync += other.sync
        self.stack += other.stack


class CostModel:
    """Charges cycles for the PixelBox kernel's primitive operations."""

    def __init__(self, device: DeviceSpec, flags: OptimizationFlags) -> None:
        self.device = device
        self.flags = flags
        # Serialization factor of one sampling-box push (per field write).
        if flags.avoid_bank_conflicts:
            addrs = [
                soa_push_addresses(device.warp_size, f)
                for f in range(SAMPLING_BOX_WORDS)
            ]
        else:
            addrs = [
                aos_push_addresses(device.warp_size, f)
                for f in range(SAMPLING_BOX_WORDS)
            ]
        self._push_ways = [
            conflict_ways(a, device.shared_mem_banks) for a in addrs
        ]

    # ------------------------------------------------------------------
    # Primitive charges
    # ------------------------------------------------------------------
    def edge_loop(self, iterations: float, edges: int) -> CycleBreakdown:
        """Cycles for ``iterations`` runs of the edge-test loop.

        Each iteration tests ``edges`` polygon edges: one edge load (from
        shared memory if the vertices were staged there, global
        otherwise), `_EDGE_TEST_ALU` ALU cycles, and per-edge loop
        bookkeeping that unrolling divides by the unroll factor.
        """
        out = CycleBreakdown()
        out.alu = iterations * edges * _EDGE_TEST_ALU
        overhead = _LOOP_OVERHEAD / (_UNROLL if self.flags.loop_unrolling else 1)
        out.loop_overhead = iterations * edges * overhead
        access = iterations * edges
        if self.flags.shared_mem_vertices:
            out.shared_mem = access * self.device.shared_access_cycles
        else:
            out.global_mem = access * self.device.global_access_cycles
        return out

    def vertex_staging(self, edges: int) -> CycleBreakdown:
        """One-time cost of copying the vertex data into shared memory."""
        out = CycleBreakdown()
        if self.flags.shared_mem_vertices:
            out.global_mem = edges * self.device.global_access_cycles
            out.shared_mem = edges * self.device.shared_access_cycles
        return out

    def stack_push(self, count: int = 1) -> CycleBreakdown:
        """``count`` warp-wide sampling-box pushes (5 field writes each)."""
        out = CycleBreakdown()
        per_push = sum(
            ways * self.device.shared_access_cycles for ways in self._push_ways
        )
        out.stack = count * per_push
        return out

    def stack_pop(self, count: int = 1) -> CycleBreakdown:
        """``count`` box pops (broadcast read, conflict-free)."""
        out = CycleBreakdown()
        out.stack = count * SAMPLING_BOX_WORDS * self.device.shared_access_cycles
        return out

    def synchronize(self, count: int = 1) -> CycleBreakdown:
        """``count`` block-wide barriers (line 17 of Algorithm 1)."""
        out = CycleBreakdown()
        out.sync = count * self.device.sync_cycles
        return out


# ----------------------------------------------------------------------
# Calibration: measured constants override the modeled defaults
# ----------------------------------------------------------------------
# The spin-up and dispatch charges below are *modeled*; on a real host
# ``tools/calibrate_cost.py`` (or ``repro calibrate``) fits them from the
# backend-scaling and service-throughput trajectories and writes a JSON
# profile.  When a profile is active the recommenders use its constants;
# when absent they fall back to the modeled values, so calibration is an
# accuracy upgrade, never a dependency.

# Modeled speedup of the compiled (numba) substrate over the NumPy
# engines: machine code over the same plan trades array-program overhead
# for tight loops across all cores.  Calibration replaces it with the
# measured ratio on hosts that have the extra installed.
_COMPILED_SPEEDUP = 8.0
# First use of the compiled kernel pays JIT compilation (or cache load);
# a workload must dwarf that charge before "numba" is worth recommending.
_COMPILED_WARMUP_CYCLES = 1.0e9
_COMPILED_AMORTIZATION = 2.0


@dataclass(frozen=True, slots=True)
class CostCalibration:
    """Measured cost constants fitted by ``repro calibrate``.

    Attributes
    ----------
    cycles_per_second:
        How many modeled ALU cycles this host retires per wall second on
        the vectorized engine — the bridge between measured seconds and
        every modeled charge in this module.
    process_spinup_cycles:
        Measured worker-process spin-up, in modeled cycles.
    shard_dispatch_cycles:
        Measured per-shard remote dispatch overhead (serialize + RTT +
        scheduling), in modeled cycles.
    compiled_speedup:
        Measured throughput ratio of the compiled (numba) substrate over
        the vectorized engine on this host (modeled default when the
        extra was absent during calibration).
    compiled_warmup_cycles:
        Measured JIT warm-up of the compiled kernel, in modeled cycles.
    source:
        Provenance note (host, date) carried from the profile.
    """

    cycles_per_second: float
    process_spinup_cycles: float
    shard_dispatch_cycles: float
    compiled_speedup: float = _COMPILED_SPEEDUP
    compiled_warmup_cycles: float = _COMPILED_WARMUP_CYCLES
    source: str = "calibrated"

    def as_dict(self) -> dict:
        return {
            "cycles_per_second": self.cycles_per_second,
            "process_spinup_cycles": self.process_spinup_cycles,
            "shard_dispatch_cycles": self.shard_dispatch_cycles,
            "compiled_speedup": self.compiled_speedup,
            "compiled_warmup_cycles": self.compiled_warmup_cycles,
            "source": self.source,
        }


def load_calibration(path: str | Path) -> CostCalibration:
    """Read a calibration profile written by ``tools/calibrate_cost.py``."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DeviceError(f"unreadable cost profile {path}: {exc}") from None
    try:
        cal = CostCalibration(
            cycles_per_second=float(raw["cycles_per_second"]),
            process_spinup_cycles=float(raw["process_spinup_cycles"]),
            shard_dispatch_cycles=float(raw["shard_dispatch_cycles"]),
            compiled_speedup=float(
                raw.get("compiled_speedup", _COMPILED_SPEEDUP)
            ),
            compiled_warmup_cycles=float(
                raw.get("compiled_warmup_cycles", _COMPILED_WARMUP_CYCLES)
            ),
            source=str(raw.get("source", str(path))),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DeviceError(f"malformed cost profile {path}: {exc}") from None
    if min(
        cal.cycles_per_second,
        cal.process_spinup_cycles,
        cal.shard_dispatch_cycles,
        cal.compiled_speedup,
        cal.compiled_warmup_cycles,
    ) <= 0:
        raise DeviceError(f"cost profile {path} has non-positive constants")
    return cal


_UNLOADED = object()
_active_calibration: object = _UNLOADED


def active_calibration() -> CostCalibration | None:
    """The process-wide calibration profile, if any.

    Resolved once from the ``REPRO_COST_PROFILE`` environment variable
    (a profile path); ``None`` means the modeled constants apply.
    """
    global _active_calibration
    if _active_calibration is _UNLOADED:
        path = os.environ.get("REPRO_COST_PROFILE")
        _active_calibration = load_calibration(path) if path else None
    return _active_calibration  # type: ignore[return-value]


def set_calibration(calibration: CostCalibration | None) -> None:
    """Install (or with ``None`` disable) the process-wide profile."""
    global _active_calibration
    _active_calibration = calibration


def clear_calibration() -> None:
    """Forget the cached profile; the next use re-reads the environment."""
    global _active_calibration
    _active_calibration = _UNLOADED


# ----------------------------------------------------------------------
# Workload-level cost estimation (execution-backend selection)
# ----------------------------------------------------------------------
# A forked worker process costs roughly this many modeled ALU cycles to
# spin up (interpreter fork + pool plumbing); sharding only pays off once
# each worker amortizes it many times over.
_PROCESS_SPINUP_CYCLES = 2.0e8
# Workers must amortize their spin-up by at least this factor before the
# multiprocess backend is recommended.
_SPINUP_AMORTIZATION = 4.0
# Branching factor of the sampling-box subdivision per level is the block
# size; a level's frontier shrinks roughly by the decided fraction.
_LEVEL_DECIDED_FRACTION = 0.5


def estimate_comparison_cycles(
    n_pairs: int,
    mean_edges: float,
    mean_mbr_pixels: float,
    pixel_threshold: int,
    block_size: int = 64,
) -> float:
    """Modeled ALU cycles for one batched PixelBox comparison.

    The estimate prices the two compute phases of the algorithm with the
    same per-edge-test constant the SIMT model charges:

    * **pixelization** — leaves are smaller than the threshold ``T``;
      subdivision decides large uniform areas without pixel work, so the
      pixelized area per pair is the MBR capped at ``T`` per surviving
      leaf chain, growing with the number of subdivision levels;
    * **classification** — each level classifies ``block_size`` sub-boxes
      against every edge; the level count is logarithmic in the
      MBR-to-threshold ratio.

    Absolute numbers are modeled, not measured — callers compare them
    against each other and against fixed spin-up charges, exactly how
    the rest of this module is used.
    """
    if n_pairs <= 0:
        return 0.0
    pixels = max(mean_mbr_pixels, 1.0)
    threshold = max(pixel_threshold, 1)
    levels = 0.0
    remaining = pixels
    while remaining > threshold and levels < 32:
        levels += 1.0
        remaining /= block_size
    leaf_pixels = min(pixels, threshold * (1.0 + levels * _LEVEL_DECIDED_FRACTION))
    pixelize = leaf_pixels * mean_edges * _EDGE_TEST_ALU
    classify = levels * block_size * mean_edges * _EDGE_TEST_ALU
    return n_pairs * (pixelize + classify)


def compiled_substrate_available() -> bool:
    """Whether the compiled (numba) substrate can run in this process."""
    try:
        from repro.backends.numba_backend import numba_unavailable_reason
    except ImportError:  # pragma: no cover - defensive
        return False
    return numba_unavailable_reason() is None


def recommend_backend(
    n_pairs: int,
    mean_edges: float,
    mean_mbr_pixels: float,
    pixel_threshold: int,
    block_size: int = 64,
    workers: int = 1,
    calibration: CostCalibration | None = None,
    compiled: bool | None = None,
) -> str:
    """Backend choice for a workload profile (pair count + edge density).

    Policy only — every backend returns bit-identical results, so a
    misprediction costs time, never correctness:

    * workloads that dwarf the JIT warm-up charge, when the compiled
      substrate is usable -> ``"numba"`` (machine code over all cores
      beats forked NumPy workers without any process spin-up);
    * heavy workloads that amortize process spin-up -> ``"multiprocess"``;
    * subdivision-dominated workloads (MBRs far above the pixelization
      threshold, where the batch path's skip-subdivision policy never
      applies) -> ``"vectorized"``;
    * everything else -> ``"batch"``, the production default.

    ``calibration`` (default: :func:`active_calibration`) replaces the
    modeled spin-up/warm-up charges with this host's measured ones.
    ``compiled`` pins the compiled substrate as usable (``True``) or not
    (``False``); ``None`` probes for the installed extra.
    """
    cal = calibration if calibration is not None else active_calibration()
    spinup = cal.process_spinup_cycles if cal else _PROCESS_SPINUP_CYCLES
    warmup = cal.compiled_warmup_cycles if cal else _COMPILED_WARMUP_CYCLES
    cycles = estimate_comparison_cycles(
        n_pairs, mean_edges, mean_mbr_pixels, pixel_threshold, block_size
    )
    if compiled is None:
        compiled = compiled_substrate_available()
    if compiled and cycles > warmup * _COMPILED_AMORTIZATION:
        return "numba"
    if workers > 1 and cycles > spinup * _SPINUP_AMORTIZATION * workers:
        return "multiprocess"
    if mean_mbr_pixels > 4 * pixel_threshold:
        return "vectorized"
    return "batch"


# Modeled cycle budget of one coalesced service dispatch.  The budget
# bounds the latency a small request can inherit from riding in a large
# merged batch: a dispatch stops absorbing requests once its modeled
# compute reaches this many cycles.  Sized to a few times the spin-up
# charge so pooled workers stay well amortized per dispatch.
_DISPATCH_CYCLE_BUDGET = 4.0 * _PROCESS_SPINUP_CYCLES
# Coalesced-dispatch bounds: never merge below the floor (per-dispatch
# bookkeeping would dominate), never above the cap (peak-memory bound of
# the level-synchronous engines' working set).
_MIN_DISPATCH_PAIRS = 64
_MAX_DISPATCH_PAIRS = 65536


def recommend_batch_pairs(
    mean_edges: float,
    mean_mbr_pixels: float,
    pixel_threshold: int,
    block_size: int = 64,
    cycle_budget: float | None = None,
    calibration: CostCalibration | None = None,
) -> int:
    """Pair budget for one coalesced dispatch of the comparison service.

    The service's micro-batching coalescer merges small concurrent
    requests into one backend launch; this policy sizes that launch from
    the same cycle model :func:`recommend_backend` prices executors
    with.  Dense workloads (many edges, large MBRs) get small merged
    batches — each pair is expensive, so latency-bounding the dispatch
    matters; sparse workloads coalesce aggressively.

    The default budget is a few times the worker spin-up charge (the
    calibrated one when a profile is active), keeping pooled workers
    well amortized per dispatch.
    """
    if cycle_budget is None:
        cal = calibration if calibration is not None else active_calibration()
        spinup = cal.process_spinup_cycles if cal else _PROCESS_SPINUP_CYCLES
        cycle_budget = 4.0 * spinup
    per_pair = estimate_comparison_cycles(
        1, mean_edges, mean_mbr_pixels, pixel_threshold, block_size
    )
    if per_pair <= 0:
        return _MAX_DISPATCH_PAIRS
    budget = int(cycle_budget / per_pair)
    return max(_MIN_DISPATCH_PAIRS, min(_MAX_DISPATCH_PAIRS, budget))


# ----------------------------------------------------------------------
# Remote shard sizing (cluster coordinator)
# ----------------------------------------------------------------------
# One remote shard dispatch costs roughly this many modeled cycles
# (RUN_SHARD/SHARD_RESULT round trip + scheduling) once the tables are
# resident on the worker; a shard must amortize it well before remote
# sharding beats keeping the pairs local.
_SHARD_DISPATCH_CYCLES = 2.0e7
_SHARD_AMORTIZATION = 8.0
# The coordinator over-partitions each request so stragglers can be
# speculated and a dead worker's loss stays small — but not so finely
# that dispatch overhead dominates.
_SHARDS_PER_WORKER = 4


def recommend_shard_pairs(
    n_pairs: int,
    mean_edges: float,
    mean_mbr_pixels: float,
    pixel_threshold: int,
    block_size: int = 64,
    workers: int = 1,
    calibration: CostCalibration | None = None,
    substrate: str = "numpy",
) -> int:
    """Pairs per remote shard for one cluster dispatch.

    Balances two pressures: each shard's modeled compute should exceed
    the per-shard dispatch charge by ``_SHARD_AMORTIZATION``x (transport
    must stay a rounding error), while the request should still split
    into about ``_SHARDS_PER_WORKER`` shards per worker so the scheduler
    has slack for speculation and re-dispatch.

    ``substrate="numba"`` prices shard compute at the compiled substrate's
    speed: each pair costs less, so shards must grow to keep dispatch
    overhead amortized.
    """
    if n_pairs <= 0:
        return 1
    cal = calibration if calibration is not None else active_calibration()
    dispatch = cal.shard_dispatch_cycles if cal else _SHARD_DISPATCH_CYCLES
    per_pair = estimate_comparison_cycles(
        1, mean_edges, mean_mbr_pixels, pixel_threshold, block_size
    )
    if substrate == "numba":
        speedup = cal.compiled_speedup if cal else _COMPILED_SPEEDUP
        per_pair /= max(speedup, 1.0)
    if per_pair <= 0:
        floor = n_pairs
    else:
        floor = max(1, math.ceil(dispatch * _SHARD_AMORTIZATION / per_pair))
    target = max(1, math.ceil(n_pairs / (max(1, workers) * _SHARDS_PER_WORKER)))
    return min(n_pairs, max(floor, target))
