"""Device models for the SIMT simulator.

The paper evaluates on an NVIDIA GTX 580 (Fermi GF110) and Tesla M2050
(Fermi GF100).  The simulator needs only the architectural parameters
that the paper's optimizations interact with: warp width, shared-memory
banking, SM count and occupancy limits, and the latency gap between
global and shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError

__all__ = ["DeviceSpec", "GTX580", "TESLA_M2050"]


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """Architectural parameters of a simulated GPU."""

    name: str
    sm_count: int
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    shared_mem_banks: int = 32
    shared_mem_per_sm: int = 48 * 1024
    clock_mhz: int = 1500
    # Amortized cycle cost of one global-memory access (latency partially
    # hidden by warp interleaving) vs a conflict-free shared access.
    global_access_cycles: int = 2
    shared_access_cycles: int = 1
    sync_cycles: int = 4

    def __post_init__(self) -> None:
        if self.sm_count < 1:
            raise DeviceError(f"sm_count must be >= 1, got {self.sm_count}")
        if self.warp_size < 1:
            raise DeviceError(f"warp_size must be >= 1, got {self.warp_size}")
        if self.shared_mem_banks < 1:
            raise DeviceError("shared_mem_banks must be >= 1")

    def blocks_resident(self, block_size: int, shared_bytes: int) -> int:
        """Concurrent blocks per SM under thread/block/shared-mem limits.

        This is the occupancy calculation behind the paper's §5.4
        observation that block sizes >= 256 degrade performance: fewer
        blocks fit per multiprocessor and partitioning gets coarser.
        """
        if block_size < 1:
            raise DeviceError(f"block size must be >= 1, got {block_size}")
        by_threads = self.max_threads_per_sm // block_size
        by_shared = (
            self.shared_mem_per_sm // shared_bytes if shared_bytes > 0 else
            self.max_blocks_per_sm
        )
        return max(1, min(by_threads, by_shared, self.max_blocks_per_sm))


GTX580 = DeviceSpec(name="GeForce GTX 580", sm_count=16, clock_mhz=1544)
TESLA_M2050 = DeviceSpec(name="Tesla M2050", sm_count=14, clock_mhz=1150)
