"""Shared-memory bank-conflict model.

Fermi shared memory is striped across 32 four-byte banks; a warp's access
is serialized by the maximum number of *distinct words* that fall in the
same bank (threads reading the same word broadcast for free).  The
PixelBox implementation detail this model captures: pushing sampling
boxes as array-of-structures records makes every thread hit the same few
banks (stride = padded record size), while the paper's five separate
sub-stacks (structure-of-arrays) give stride-1, conflict-free pushes
(§3.3, "Avoid memory bank conflicts").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.errors import DeviceError

__all__ = ["conflict_ways", "aos_push_addresses", "soa_push_addresses",
           "SAMPLING_BOX_WORDS", "AOS_RECORD_WORDS"]

# A sampling-box record: x0, y0, x1, y1, continue-flag.
SAMPLING_BOX_WORDS = 5
# AoS records are padded to the next power of two for aligned access.
AOS_RECORD_WORDS = 8


def conflict_ways(addresses: Iterable[int], banks: int = 32) -> int:
    """Serialization factor of one warp access (1 = conflict-free).

    ``addresses`` are word addresses, one per active thread.  Words in the
    same bank serialize unless they are the *same* word (broadcast).
    """
    if banks < 1:
        raise DeviceError(f"banks must be >= 1, got {banks}")
    per_bank: dict[int, set[int]] = defaultdict(set)
    for addr in addresses:
        per_bank[addr % banks].add(addr)
    if not per_bank:
        return 1
    return max(len(words) for words in per_bank.values())


def aos_push_addresses(warp_size: int, field: int) -> list[int]:
    """Word addresses when thread ``t`` writes field ``field`` of record ``t``.

    Array-of-structures layout: record ``t`` starts at ``t * 8`` (padded),
    so a warp writing one field strides by 8 words — a 8-way conflict on a
    32-bank device.
    """
    return [t * AOS_RECORD_WORDS + field for t in range(warp_size)]


def soa_push_addresses(warp_size: int, field: int, capacity: int = 1024) -> list[int]:
    """Word addresses with five separate sub-stacks (structure-of-arrays).

    Field ``f`` lives in its own array; thread ``t`` writes word
    ``f * capacity + t`` — stride 1 within the warp, conflict-free.
    """
    return [field * capacity + t for t in range(warp_size)]
