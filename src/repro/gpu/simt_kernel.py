"""PixelBox on the SIMT simulator (Algorithm 1 with a cycle meter).

The simulator separates *what the kernel does* from *what it costs*:

1. :func:`collect_block_counts` replays Algorithm 1 for each polygon pair
   (one thread block per pair) and records the primitive-operation counts
   — pixelization iterations, edge tests, partitioning steps, stack
   pushes/pops, barriers.  Counts depend only on the launch
   configuration, never on the optimization flags.
2. :func:`evaluate_cycles` prices those counts under a
   :class:`~repro.gpu.cost.CostModel` for a given optimization-flag set.
   Evaluating four flag sets over one count collection reproduces the
   four implementation variants of Figure 9 exactly as the paper built
   them — same algorithm, different implementation costs.

Areas computed during the replay are asserted against the NumPy engine in
the test-suite, so the cycle meter is attached to a *correct* execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.gpu.cost import CostModel, CycleBreakdown, OptimizationFlags
from repro.gpu.device import DeviceSpec
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.sampling import box_contribute, box_continue, box_position

__all__ = ["BlockCounts", "collect_block_counts", "evaluate_cycles"]


@dataclass(slots=True)
class BlockCounts:
    """Primitive-operation counts of one thread block (one polygon pair)."""

    edges_p: int = 0
    edges_q: int = 0
    vertex_ops: int = 0
    pixel_iterations: int = 0
    classify_steps: int = 0
    warp_pushes: int = 0
    pops: int = 0
    syncs: int = 0
    intersection_area: int = 0
    union_area: int = 0

    @property
    def edges(self) -> int:
        """Edges tested per pixel/box (both polygons)."""
        return self.edges_p + self.edges_q


def collect_block_counts(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    config: LaunchConfig | None = None,
) -> BlockCounts:
    """Replay Algorithm 1 for one pair and return its operation counts."""
    cfg = config or LaunchConfig()
    n = cfg.block_size
    # Cost is accounted in *warp rows*: a block-wide round issues
    # ceil(n / warp_size) warps in lockstep whether or not every thread
    # has work — the idle-thread waste behind the paper's §5.4
    # observation that oversized blocks degrade performance.
    warps_per_round = -(-n // 32)
    counts = BlockCounts(
        edges_p=len(p.vertical_edges), edges_q=len(q.vertical_edges)
    )
    # Lines 11-12: per-thread partial polygon areas (strided over ring
    # vertices; ceil(V / n) parallel rounds).
    counts.vertex_ops += (
        -(-len(p.vertices) // n) + (-(-len(q.vertices) // n))
    ) * warps_per_round

    inter = 0
    stack: list[Box] = [p.mbr.cover(q.mbr)]
    nx, ny = cfg.grid
    while stack:
        box = stack.pop()
        counts.pops += 1
        counts.syncs += 1  # line 17
        if box.size < cfg.threshold or box.size == 1:
            # Lines 22-28: strided pixelization, ceil(px / n) rounds.
            counts.pixel_iterations += (-(-box.size // n)) * warps_per_round
            inter += _leaf_intersection(p, q, box)
            continue
        # Lines 30-39: one sub-box per thread, then a warp-wide push.
        children = box.split(nx, ny)
        counts.classify_steps += warps_per_round
        counts.warp_pushes += -(-len(children) // 32)
        for child in children:
            phi1 = box_position(child, p)
            phi2 = box_position(child, q)
            if box_continue(phi1, phi2):
                stack.append(child)
            elif box_contribute(phi1, phi2):
                inter += child.size
    counts.intersection_area = inter
    counts.union_area = p.area + q.area - inter
    return counts


def _leaf_intersection(
    p: RectilinearPolygon, q: RectilinearPolygon, box: Box
) -> int:
    """Exact intersection pixels of a leaf box (replay correctness)."""
    from repro.geometry.raster import parity_fill
    import numpy as np

    mask_p = parity_fill(p.vertical_edges, box)
    mask_q = parity_fill(q.vertical_edges, box)
    return int(np.count_nonzero(mask_p & mask_q))


def evaluate_cycles(
    counts: list[BlockCounts],
    device: DeviceSpec,
    flags: OptimizationFlags,
    config: LaunchConfig | None = None,
) -> tuple[float, CycleBreakdown]:
    """Total block cycles of a batch under one optimization-flag set.

    Returns ``(total_cycles, breakdown)``; scheduling across SMs (and the
    conversion to device time) is the simulator's job.
    """
    cfg = config or LaunchConfig()
    model = CostModel(device, flags)
    breakdown = CycleBreakdown()
    for block in counts:
        # Vertex staging + PolyArea.
        breakdown.add(model.vertex_staging(block.edges))
        breakdown.add(model.edge_loop(block.vertex_ops, 1))
        # Pixelization rounds test every pixel against both edge lists.
        breakdown.add(model.edge_loop(block.pixel_iterations, block.edges))
        # Sampling-box classification: each thread walks both edge lists
        # once per partitioning step (plus the center-parity pass).
        breakdown.add(model.edge_loop(block.classify_steps, block.edges))
        breakdown.add(model.stack_push(block.warp_pushes))
        breakdown.add(model.stack_pop(block.pops))
        breakdown.add(model.synchronize(block.syncs))
    return breakdown.total, breakdown
