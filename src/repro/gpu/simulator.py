"""Device-level scheduling: blocks onto multiprocessors, cycles into time.

One polygon pair is one thread block (Algorithm 1).  Blocks are assigned
to the least-loaded SM; each SM interleaves the blocks resident on it, so
its wall cycles are its total block cycles divided by how many blocks fit
concurrently (the occupancy limit).  Device time is the busiest SM's wall
cycles over the clock — a makespan model, sufficient for the normalized
comparisons the experiments make.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpu.cost import CostModel, CycleBreakdown, OptimizationFlags
from repro.gpu.device import DeviceSpec
from repro.gpu.simt_kernel import BlockCounts
from repro.pixelbox.common import LaunchConfig

__all__ = ["SimtReport", "simulate_device"]

# Shared memory per block: the sampling-box stack (five sub-stacks) plus
# staged vertex data when that optimization is on.
_STACK_BYTES = 4 * 1024
_VERTEX_STAGE_BYTES = 1024


@dataclass(frozen=True, slots=True)
class SimtReport:
    """Outcome of simulating one kernel launch."""

    variant: str
    blocks: int
    total_cycles: float
    device_ms: float
    occupancy: int
    breakdown: CycleBreakdown

    def __str__(self) -> str:
        return (
            f"{self.variant}: {self.blocks} blocks, "
            f"{self.total_cycles:,.0f} cycles, {self.device_ms:.3f} ms "
            f"(occupancy {self.occupancy} blocks/SM)"
        )


def simulate_device(
    counts: list[BlockCounts],
    device: DeviceSpec,
    flags: OptimizationFlags,
    config: LaunchConfig | None = None,
) -> SimtReport:
    """Schedule one launch and convert cycles to device milliseconds."""
    cfg = config or LaunchConfig()
    if not counts:
        raise DeviceError("cannot simulate an empty launch")
    model = CostModel(device, flags)
    shared_bytes = _STACK_BYTES + (
        _VERTEX_STAGE_BYTES if flags.shared_mem_vertices else 0
    )
    occupancy = device.blocks_resident(cfg.block_size, shared_bytes)

    breakdown = CycleBreakdown()
    block_cycles: list[float] = []
    for block in counts:
        cycles = CycleBreakdown()
        cycles.add(model.vertex_staging(block.edges))
        cycles.add(model.edge_loop(block.vertex_ops, 1))
        cycles.add(model.edge_loop(block.pixel_iterations, block.edges))
        cycles.add(model.edge_loop(block.classify_steps, block.edges))
        cycles.add(model.stack_push(block.warp_pushes))
        cycles.add(model.stack_pop(block.pops))
        cycles.add(model.synchronize(block.syncs))
        block_cycles.append(cycles.total)
        breakdown.add(cycles)

    # Greedy makespan: each block goes to the least-loaded SM.
    sm_loads = [0.0] * device.sm_count
    heap = [(0.0, i) for i in range(device.sm_count)]
    heapq.heapify(heap)
    for cycles in sorted(block_cycles, reverse=True):
        load, idx = heapq.heappop(heap)
        load += cycles
        sm_loads[idx] = load
        heapq.heappush(heap, (load, idx))
    makespan = max(sm_loads) / occupancy
    device_ms = makespan / (device.clock_mhz * 1e3)
    return SimtReport(
        variant=flags.label,
        blocks=len(counts),
        total_cycles=breakdown.total,
        device_ms=device_ms,
        occupancy=occupancy,
        breakdown=breakdown,
    )
