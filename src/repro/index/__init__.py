"""Spatial indexing substrate: Hilbert curve, R-tree, and the MBR join.

The pipeline's builder stage bulk-loads a Hilbert R-tree per tile; the
filter stage probes it to produce the polygon-pair batches the PixelBox
aggregator consumes (paper §4.1).
"""

from repro.index.hilbert import d_to_xy, hilbert_keys, xy_to_d
from repro.index.hilbert_rtree import DEFAULT_ORDER, bulk_load, bulk_load_polygons
from repro.index.join import (
    PairJoinResult,
    mbr_pair_join,
    mbr_pair_join_bruteforce,
)
from repro.index.rtree import DEFAULT_FANOUT, RTree, RTreeNode

__all__ = [
    "xy_to_d",
    "d_to_xy",
    "hilbert_keys",
    "RTree",
    "RTreeNode",
    "DEFAULT_FANOUT",
    "DEFAULT_ORDER",
    "bulk_load",
    "bulk_load_polygons",
    "PairJoinResult",
    "mbr_pair_join",
    "mbr_pair_join_bruteforce",
]
