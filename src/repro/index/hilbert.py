"""Hilbert space-filling curve (2-D).

The builder stage uses a Hilbert R-tree (paper §4.1, citing Kamel &
Faloutsos) because bulk-loading small polygons in Hilbert order is fast
and yields well-clustered leaves.  This module provides the curve itself:
a bijection between ``(x, y)`` cells of a ``2**order x 2**order`` grid and
positions along the curve.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_

__all__ = ["xy_to_d", "d_to_xy", "hilbert_keys"]


def xy_to_d(order: int, x: int, y: int) -> int:
    """Curve position of cell ``(x, y)`` on a ``2**order`` grid."""
    _check(order, x, y)
    rx = ry = 0
    d = 0
    s = 1 << (order - 1)
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def d_to_xy(order: int, d: int) -> tuple[int, int]:
    """Cell coordinates of curve position ``d`` (inverse of xy_to_d)."""
    side = 1 << order
    if not 0 <= d < side * side:
        raise IndexError_(f"curve position {d} out of range for order {order}")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return (x, y)


def hilbert_keys(order: int, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorized ``xy_to_d`` for arrays of cell coordinates.

    Coordinates outside the grid are clamped — the curve is used as a
    sort key, so clamping only affects clustering quality at the image
    fringe, never correctness.
    """
    side = 1 << order
    x = np.clip(np.asarray(xs, dtype=np.int64), 0, side - 1).copy()
    y = np.clip(np.asarray(ys, dtype=np.int64), 0, side - 1).copy()
    d = np.zeros_like(x)
    s = side // 2
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant (vectorized form of _rotate).
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x, y = (np.where(swap, y_f, x_f), np.where(swap, x_f, y_f))
        s //= 2
    return d


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant so the curve orientation is preserved."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return (x, y)


def _check(order: int, x: int, y: int) -> None:
    if order < 1 or order > 31:
        raise IndexError_(f"hilbert order must be in [1, 31], got {order}")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise IndexError_(
            f"cell ({x}, {y}) outside the 2^{order} grid"
        )
