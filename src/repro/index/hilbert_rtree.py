"""Hilbert R-tree bulk loading (Kamel & Faloutsos, VLDB'94).

The pipeline's builder stage indexes every parsed tile with this loader
(paper §4.1: "Since polygons are small, Hilbert R-Tree is used to
accelerate index building").  Entries are sorted by the Hilbert key of
their MBR center and packed bottom-up into full nodes, producing a
balanced tree in O(n log n) with excellent leaf clustering for the
MBR-join that follows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.index.hilbert import hilbert_keys
from repro.index.rtree import DEFAULT_FANOUT, RTree, RTreeNode

__all__ = ["bulk_load", "bulk_load_polygons", "DEFAULT_ORDER"]

# 2^17 = 131072 cells per axis — covers whole-slide images (~100k pixels).
DEFAULT_ORDER = 17


def bulk_load(
    boxes: list[Box],
    fanout: int = DEFAULT_FANOUT,
    order: int = DEFAULT_ORDER,
) -> RTree:
    """Build a packed R-tree over ``boxes`` (payloads are list indices)."""
    tree = RTree(fanout=fanout)
    if not boxes:
        return tree
    cx = np.array([(b.x0 + b.x1) // 2 for b in boxes], dtype=np.int64)
    cy = np.array([(b.y0 + b.y1) // 2 for b in boxes], dtype=np.int64)
    keys = hilbert_keys(order, cx, cy)
    rank = np.argsort(keys, kind="stable")

    # Pack leaves in Hilbert order.
    level: list[RTreeNode] = []
    for lo in range(0, len(rank), fanout):
        idx = rank[lo : lo + fanout]
        node = RTreeNode(
            is_leaf=True, entries=[(boxes[int(i)], int(i)) for i in idx]
        )
        node.recompute_mbr()
        level.append(node)

    # Pack parents bottom-up until a single root remains.
    while len(level) > 1:
        parents: list[RTreeNode] = []
        for lo in range(0, len(level), fanout):
            node = RTreeNode(is_leaf=False, children=level[lo : lo + fanout])
            node.recompute_mbr()
            parents.append(node)
        level = parents

    tree.root = level[0]
    tree._size = len(boxes)
    return tree


def bulk_load_polygons(
    polygons: list[RectilinearPolygon],
    fanout: int = DEFAULT_FANOUT,
    order: int = DEFAULT_ORDER,
) -> RTree:
    """Bulk-load the MBRs of ``polygons`` (payload ``i`` = polygon ``i``)."""
    if fanout < 4:
        raise IndexError_(f"fanout must be >= 4, got {fanout}")
    return bulk_load([p.mbr for p in polygons], fanout=fanout, order=order)
