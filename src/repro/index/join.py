"""MBR pair join — the pipeline's filter stage.

Given two polygon sets segmented from the same tile, emit every pair whose
MBRs overlap (the ``&&`` join predicate of the optimized query in Figure
1(b)).  The left set probes a Hilbert R-tree built over the right set;
the output array of pair indices is exactly the input batch the PixelBox
aggregator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.polygon import RectilinearPolygon
from repro.index.hilbert_rtree import bulk_load_polygons
from repro.index.rtree import RTree

__all__ = ["PairJoinResult", "mbr_pair_join", "mbr_pair_join_bruteforce"]


@dataclass(slots=True)
class PairJoinResult:
    """Candidate pairs from the MBR join.

    ``left_idx[k]``/``right_idx[k]`` index the input polygon lists;
    :meth:`pairs` materializes the polygon tuples for a kernel call.
    """

    left_idx: np.ndarray
    right_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.left_idx)

    def pairs(
        self,
        left: list[RectilinearPolygon],
        right: list[RectilinearPolygon],
    ) -> list[tuple[RectilinearPolygon, RectilinearPolygon]]:
        """Materialize ``(p, q)`` polygon tuples for the kernel."""
        return [
            (left[int(i)], right[int(j)])
            for i, j in zip(self.left_idx, self.right_idx)
        ]


def mbr_pair_join(
    left: list[RectilinearPolygon],
    right: list[RectilinearPolygon],
    tree: RTree | None = None,
) -> PairJoinResult:
    """Index nested-loop join on MBR overlap.

    Parameters
    ----------
    left, right:
        The two polygon sets (e.g. the two segmentation results of one
        tile).
    tree:
        Optional pre-built index over ``right`` (the builder stage's
        output); built on the fly when omitted.
    """
    if tree is None:
        tree = bulk_load_polygons(right)
    lefts: list[int] = []
    rights: list[int] = []
    for i, poly in enumerate(left):
        for j in tree.search(poly.mbr):
            lefts.append(i)
            rights.append(j)
    return PairJoinResult(
        np.asarray(lefts, dtype=np.int64), np.asarray(rights, dtype=np.int64)
    )


def mbr_pair_join_bruteforce(
    left: list[RectilinearPolygon],
    right: list[RectilinearPolygon],
) -> PairJoinResult:
    """O(n*m) reference join used to validate the index path."""
    lefts: list[int] = []
    rights: list[int] = []
    for i, p in enumerate(left):
        p_mbr = p.mbr
        for j, q in enumerate(right):
            if p_mbr.intersects(q.mbr):
                lefts.append(i)
                rights.append(j)
    return PairJoinResult(
        np.asarray(lefts, dtype=np.int64), np.asarray(rights, dtype=np.int64)
    )
