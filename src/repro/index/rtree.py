"""R-tree over integer boxes: search, insertion, and validation.

The filter stage performs MBR-overlap joins (the ``&&`` operator of the
optimized query, Figure 1(b)); the SDBMS uses the same tree for its
GiST-style index scans.  Bulk loading in Hilbert order lives in
:mod:`repro.index.hilbert_rtree`; this module is the tree structure
itself plus a classic quadratic-split insert path for incremental use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import IndexError_
from repro.geometry.box import Box

__all__ = ["RTree", "RTreeNode", "DEFAULT_FANOUT"]

DEFAULT_FANOUT = 16


@dataclass(slots=True)
class RTreeNode:
    """One R-tree node; leaves store ``(box, payload)`` entries."""

    is_leaf: bool
    mbr: Box | None = None
    children: list["RTreeNode"] = field(default_factory=list)
    entries: list[tuple[Box, int]] = field(default_factory=list)

    def recompute_mbr(self) -> None:
        """Tighten the node MBR over its children/entries."""
        boxes: list[Box]
        if self.is_leaf:
            boxes = [b for b, _ in self.entries]
        else:
            boxes = [c.mbr for c in self.children if c.mbr is not None]
        if not boxes:
            self.mbr = None
            return
        mbr = boxes[0]
        for box in boxes[1:]:
            mbr = mbr.cover(box)
        self.mbr = mbr


class RTree:
    """An R-tree keyed by :class:`~repro.geometry.box.Box` with int payloads.

    >>> tree = RTree()
    >>> tree.insert(Box(0, 0, 2, 2), 0)
    >>> tree.insert(Box(5, 5, 8, 8), 1)
    >>> tree.search(Box(1, 1, 6, 6))
    [0, 1]
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise IndexError_(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self.root = RTreeNode(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, box: Box) -> list[int]:
        """Payloads whose boxes overlap ``box`` (the ``&&`` test), sorted."""
        out: list[int] = []
        self._search(self.root, box, out)
        out.sort()
        return out

    def _search(self, node: RTreeNode, box: Box, out: list[int]) -> None:
        if node.mbr is None or not node.mbr.intersects(box):
            return
        if node.is_leaf:
            out.extend(pid for b, pid in node.entries if b.intersects(box))
            return
        for child in node.children:
            self._search(child, box, out)

    def iter_leaf_entries(self) -> Iterator[tuple[Box, int]]:
        """All ``(box, payload)`` entries, tree order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        levels = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Insertion (quadratic split)
    # ------------------------------------------------------------------
    def insert(self, box: Box, payload: int) -> None:
        """Insert one entry, splitting nodes that exceed the fanout."""
        split = self._insert(self.root, box, payload)
        if split is not None:
            old_root = self.root
            self.root = RTreeNode(is_leaf=False, children=[old_root, split])
            self.root.recompute_mbr()
        self._size += 1

    def _insert(self, node: RTreeNode, box: Box, payload: int) -> RTreeNode | None:
        if node.is_leaf:
            node.entries.append((box, payload))
            node.mbr = box if node.mbr is None else node.mbr.cover(box)
            if len(node.entries) > self.fanout:
                return self._split_leaf(node)
            return None
        child = _choose_subtree(node.children, box)
        split = self._insert(child, box, payload)
        node.mbr = box if node.mbr is None else node.mbr.cover(box)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.fanout:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: RTreeNode) -> RTreeNode:
        groups = _quadratic_split(node.entries, key=lambda e: e[0])
        node.entries = groups[0]
        node.recompute_mbr()
        other = RTreeNode(is_leaf=True, entries=groups[1])
        other.recompute_mbr()
        return other

    def _split_internal(self, node: RTreeNode) -> RTreeNode:
        groups = _quadratic_split(node.children, key=lambda c: c.mbr)
        node.children = groups[0]
        node.recompute_mbr()
        other = RTreeNode(is_leaf=False, children=groups[1])
        other.recompute_mbr()
        return other

    # ------------------------------------------------------------------
    # Validation (tests/debugging)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check MBR containment and leaf-depth uniformity."""
        depths: set[int] = set()
        self._validate(self.root, 1, depths)
        if len(depths) > 1:
            raise IndexError_(f"leaves at different depths: {sorted(depths)}")

    def _validate(self, node: RTreeNode, depth: int, depths: set[int]) -> None:
        if node.is_leaf:
            depths.add(depth)
            for box, _ in node.entries:
                if node.mbr is None or not node.mbr.contains_box(box):
                    raise IndexError_("leaf MBR does not cover an entry")
            return
        if not node.children:
            raise IndexError_("internal node with no children")
        for child in node.children:
            if child.mbr is not None:
                if node.mbr is None or not node.mbr.contains_box(child.mbr):
                    raise IndexError_("node MBR does not cover a child")
            self._validate(child, depth + 1, depths)


def _enlargement(mbr: Box, box: Box) -> int:
    """Area growth of ``mbr`` if extended to cover ``box``."""
    return mbr.cover(box).size - mbr.size


def _choose_subtree(children: list[RTreeNode], box: Box) -> RTreeNode:
    """Guttman's ChooseLeaf: least enlargement, ties by smaller area."""
    best = None
    best_key: tuple[int, int] | None = None
    for child in children:
        if child.mbr is None:
            continue
        key = (_enlargement(child.mbr, box), child.mbr.size)
        if best_key is None or key < best_key:
            best, best_key = child, key
    if best is None:
        raise IndexError_("internal node with no usable children")
    return best


def _quadratic_split(items: list, key) -> tuple[list, list]:
    """Guttman's quadratic split into two balanced groups."""
    if len(items) < 2:
        raise IndexError_("cannot split fewer than two items")
    # Pick the two seeds wasting the most area if grouped together.
    worst = -1
    seeds = (0, 1)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            waste = key(items[i]).cover(key(items[j])).size
            waste -= key(items[i]).size + key(items[j]).size
            if waste > worst:
                worst, seeds = waste, (i, j)
    group_a = [items[seeds[0]]]
    group_b = [items[seeds[1]]]
    mbr_a = key(items[seeds[0]])
    mbr_b = key(items[seeds[1]])
    rest = [it for k, it in enumerate(items) if k not in seeds]
    min_fill = max(1, len(items) // 3)
    for item in rest:
        remaining = len(rest) - (len(group_a) + len(group_b) - 2)
        if len(group_a) + remaining <= min_fill:
            group_a.append(item)
            mbr_a = mbr_a.cover(key(item))
            continue
        if len(group_b) + remaining <= min_fill:
            group_b.append(item)
            mbr_b = mbr_b.cover(key(item))
            continue
        grow_a = _enlargement(mbr_a, key(item))
        grow_b = _enlargement(mbr_b, key(item))
        if grow_a < grow_b or (grow_a == grow_b and mbr_a.size <= mbr_b.size):
            group_a.append(item)
            mbr_a = mbr_a.cover(key(item))
        else:
            group_b.append(item)
            mbr_b = mbr_b.cover(key(item))
    return group_a, group_b