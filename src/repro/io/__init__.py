"""Polygon file IO: the text format, CPU parsers, and the GPU parser."""

from repro.io.parser_cpu import parse_fsm, parse_vectorized, tokenize_numbers
from repro.io.parser_gpu import gpu_parse
from repro.io.polyfile import (
    format_polygon,
    parse_line,
    read_polygons,
    write_polygons,
)
from repro.io.tiles import TilePair, list_tile_files, pair_result_sets, tile_name

__all__ = [
    "write_polygons",
    "read_polygons",
    "format_polygon",
    "parse_line",
    "parse_fsm",
    "parse_vectorized",
    "tokenize_numbers",
    "gpu_parse",
    "TilePair",
    "tile_name",
    "list_tile_files",
    "pair_result_sets",
]
