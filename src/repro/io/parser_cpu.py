"""CPU text parsers for polygon files.

Two implementations of the pipeline's parser stage (paper §4.1, stage 1):

* :func:`parse_fsm` — a character-at-a-time finite state machine, the
  structure the paper ascribes to text parsing ("text parsing requires
  implementing a finite state machine, which has been shown not very
  efficient for parallel execution").  Scalar reference.
* :func:`parse_vectorized` — the production parser: tokenizes the whole
  byte buffer with NumPy array operations (digit-run detection +
  positional accumulation), so large parses run in C and release the GIL
  for genuine multi-worker parser scaling.

Both return identical polygon lists for identical input; the GPU parser
(:mod:`repro.io.parser_gpu`) wraps the vectorized kernel behind the
device, which is why its throughput is only comparable to the CPU's —
exactly the paper's observation.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ParseError
from repro.geometry.polygon import RectilinearPolygon

__all__ = ["parse_fsm", "parse_vectorized", "tokenize_numbers"]

_OUTSIDE = 0
_IN_NUMBER = 1
_COMMENT = 2


def parse_fsm(text: str | bytes) -> list[RectilinearPolygon]:
    """Finite-state-machine parser (scalar reference implementation)."""
    if isinstance(text, bytes):
        text = text.decode("ascii")
    polygons: list[RectilinearPolygon] = []
    state = _OUTSIDE
    value = 0
    coords: list[int] = []
    lineno = 1

    def flush_line() -> None:
        nonlocal coords
        if not coords:
            return
        if len(coords) % 2 != 0:
            raise ParseError(f"line {lineno}: odd coordinate count")
        if len(coords) < 8:
            raise ParseError(f"line {lineno}: only {len(coords) // 2} vertices")
        try:
            polygons.append(
                RectilinearPolygon(
                    np.asarray(coords, dtype=np.int64).reshape(-1, 2)
                )
            )
        except Exception as exc:
            raise ParseError(f"line {lineno}: {exc}") from exc
        coords = []

    for ch in text:
        if state == _COMMENT:
            if ch == "\n":
                state = _OUTSIDE
                lineno += 1
            continue
        if ch.isdigit():
            if state == _IN_NUMBER:
                value = value * 10 + ord(ch) - 48
            else:
                state = _IN_NUMBER
                value = ord(ch) - 48
            continue
        if state == _IN_NUMBER:
            coords.append(value)
            state = _OUTSIDE
        if ch == "\n":
            flush_line()
            lineno += 1
        elif ch == "#":
            if coords:
                raise ParseError(f"line {lineno}: comment after data")
            state = _COMMENT
        elif ch not in (",", " ", "\t", "\r"):
            raise ParseError(f"line {lineno}: unexpected character {ch!r}")
    if state == _IN_NUMBER:
        coords.append(value)
    flush_line()
    return polygons


def tokenize_numbers(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized integer tokenizer.

    Parameters
    ----------
    data:
        uint8 view of the file bytes.

    Returns
    -------
    values, positions:
        The integer value of every digit run and the byte offset where
        each run starts (both int64, in file order).
    """
    digits = (data >= 48) & (data <= 57)
    if not digits.any():
        return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    prev = np.zeros_like(digits)
    prev[1:] = digits[:-1]
    starts = digits & ~prev
    start_pos = np.flatnonzero(starts)
    token_count = len(start_pos)
    # Token id per digit char, then offset of each digit within its token.
    token_of = np.cumsum(starts) - 1
    digit_pos = np.flatnonzero(digits)
    token_ids = token_of[digit_pos]
    offsets = digit_pos - start_pos[token_ids]
    # Positional accumulation: value = sum(digit * 10 ** (len - 1 - off)).
    lengths = np.bincount(token_ids, minlength=token_count)
    if np.any(lengths > 18):
        raise ParseError("integer literal longer than 18 digits")
    powers = 10 ** (lengths[token_ids] - 1 - offsets).astype(np.int64)
    contrib = (data[digit_pos].astype(np.int64) - 48) * powers
    values = np.zeros(token_count, dtype=np.int64)
    np.add.at(values, token_ids, contrib)
    return values, start_pos


def parse_vectorized(raw: bytes | str | Path) -> list[RectilinearPolygon]:
    """Vectorized parser over the whole byte buffer (production path).

    Accepts raw bytes/str content or a filesystem path.
    """
    if isinstance(raw, Path):
        raw = raw.read_bytes()
    elif isinstance(raw, str):
        raw = raw.encode("ascii")
    data = np.frombuffer(raw, dtype=np.uint8)
    if len(data) == 0:
        return []

    # Blank out comment spans so their digits are not tokenized.
    data = _strip_comments(data)
    values, positions = tokenize_numbers(data)

    newlines = np.flatnonzero(data == 10)
    line_of = np.searchsorted(newlines, positions)
    polygons: list[RectilinearPolygon] = []
    if len(values) == 0:
        return polygons
    boundaries = np.flatnonzero(np.diff(line_of)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(values)]])
    for s, e in zip(starts, ends):
        count = e - s
        if count % 2 != 0:
            raise ParseError(
                f"line {int(line_of[s]) + 1}: odd coordinate count"
            )
        if count < 8:
            raise ParseError(
                f"line {int(line_of[s]) + 1}: only {count // 2} vertices"
            )
        try:
            polygons.append(
                RectilinearPolygon(values[s:e].reshape(-1, 2).copy())
            )
        except Exception as exc:
            raise ParseError(f"line {int(line_of[s]) + 1}: {exc}") from exc
    return polygons


def _strip_comments(data: np.ndarray) -> np.ndarray:
    """Replace ``# ...`` comment spans with spaces.

    Comments are rare (file headers), so each span is blanked with one
    slice write: find the ``#``, find the next newline, overwrite.
    """
    hashes = np.flatnonzero(data == 35)
    if len(hashes) == 0:
        return data
    out = data.copy()
    newlines = np.flatnonzero(data == 10)
    for start in hashes:
        if out[start] != 35:
            continue  # already blanked by an enclosing span
        nl = np.searchsorted(newlines, start)
        end = newlines[nl] if nl < len(newlines) else len(out)
        out[start:end] = 32
    return out
