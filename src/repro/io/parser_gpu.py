"""GPU-Parser: the parser stage ported to the device (paper §4.2).

The paper ports text parsing to the GPU so the migrator can move parser
tasks onto an idle device; it notes the GPU parser's performance "is only
comparable to its CPU counterpart since text parsing requires
implementing a finite state machine".  Our device analog matches: the
parsing kernel is the same vectorized tokenizer the CPU uses, plus the
device's per-launch overhead — so migrating parser work to the GPU pays
off only when the device would otherwise sit idle, which is exactly the
condition the migrator checks.
"""

from __future__ import annotations

from pathlib import Path

from repro.geometry.polygon import RectilinearPolygon
from repro.io.parser_cpu import parse_vectorized

__all__ = ["gpu_parse"]


def gpu_parse(raw: bytes | str | Path) -> list[RectilinearPolygon]:
    """Parse polygon text on the device (kernel body).

    The pipeline always invokes this through
    :class:`repro.pipeline.device.GpuDevice`, which serializes access and
    charges the launch overhead; calling it directly is equivalent to a
    zero-overhead launch.
    """
    return parse_vectorized(raw)
