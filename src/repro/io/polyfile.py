"""The polygon text-file format (the pipeline's raw input).

One polygon per line, vertices as comma-joined pairs separated by spaces::

    12,7 18,7 18,13 12,13
    30,2 35,2 35,9 30,9

Lines starting with ``#`` are comments; blank lines are ignored.  All
coordinates are non-negative integers on the pixel grid of the source
image (tile offsets are already applied by the segmentation step, as in
the paper's data layout where one polygon file holds one tile's objects).

:func:`write_polygons` / :func:`read_polygons` are the canonical
serializers; the performance parsers in :mod:`repro.io.parser_cpu` and
:mod:`repro.io.parser_gpu` consume the same format and are validated
against :func:`read_polygons`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.errors import ParseError
from repro.geometry.polygon import RectilinearPolygon

__all__ = ["write_polygons", "read_polygons", "format_polygon", "parse_line"]


def format_polygon(polygon: RectilinearPolygon) -> str:
    """One line of the text format."""
    return " ".join(f"{x},{y}" for x, y in polygon)


def parse_line(line: str, lineno: int = 0) -> RectilinearPolygon:
    """Parse one polygon line (raises :class:`ParseError` with context)."""
    pairs = []
    for token in line.split():
        parts = token.split(",")
        if len(parts) != 2:
            raise ParseError(f"line {lineno}: bad vertex token {token!r}")
        try:
            pairs.append((int(parts[0]), int(parts[1])))
        except ValueError as exc:
            raise ParseError(
                f"line {lineno}: non-integer coordinate in {token!r}"
            ) from exc
    if len(pairs) < 4:
        raise ParseError(f"line {lineno}: only {len(pairs)} vertices")
    try:
        return RectilinearPolygon(np.asarray(pairs, dtype=np.int64))
    except Exception as exc:
        raise ParseError(f"line {lineno}: {exc}") from exc


def write_polygons(path: str | Path, polygons: Iterable[RectilinearPolygon]) -> int:
    """Write polygons to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for polygon in polygons:
            handle.write(format_polygon(polygon))
            handle.write("\n")
            count += 1
    return count


def read_polygons(path: str | Path) -> list[RectilinearPolygon]:
    """Read a polygon file (reference implementation)."""
    out: list[RectilinearPolygon] = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            out.append(parse_line(stripped, lineno))
    return out
