"""Dataset directory layout: images, segmentation results, tile files.

The paper's data layout (§2.1): a whole-slide image is pre-partitioned
into tiles; each segmentation run produces one polygon file per tile; a
*result set* (one directory) groups the tile files of one algorithm run;
cross-comparison pairs up the tile files of two result sets of the same
image.

Layout produced by the synthetic generator and consumed by the pipeline::

    <dataset_root>/
        result_a/ tile_0000.txt  tile_0001.txt ...
        result_b/ tile_0000.txt  tile_0001.txt ...
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DatasetError

__all__ = ["TilePair", "tile_name", "list_tile_files", "pair_result_sets"]

_TILE_RE = re.compile(r"^tile_(\d+)\.txt$")


@dataclass(frozen=True, slots=True)
class TilePair:
    """The two polygon files segmented from the same tile."""

    tile_id: int
    file_a: Path
    file_b: Path


def tile_name(tile_id: int) -> str:
    """Canonical tile file name."""
    if tile_id < 0:
        raise DatasetError(f"tile id must be non-negative, got {tile_id}")
    return f"tile_{tile_id:04d}.txt"


def list_tile_files(result_dir: str | Path) -> dict[int, Path]:
    """Map tile id -> polygon file for one result set."""
    result_dir = Path(result_dir)
    if not result_dir.is_dir():
        raise DatasetError(f"result set directory not found: {result_dir}")
    out: dict[int, Path] = {}
    for path in sorted(result_dir.iterdir()):
        match = _TILE_RE.match(path.name)
        if match:
            out[int(match.group(1))] = path
    if not out:
        raise DatasetError(f"no tile files in {result_dir}")
    return out


def pair_result_sets(
    dir_a: str | Path, dir_b: str | Path, strict: bool = True
) -> list[TilePair]:
    """Pair up the tile files of two result sets of the same image.

    With ``strict`` (default) the two sets must cover exactly the same
    tiles; otherwise the intersection is paired and extras are dropped.
    """
    tiles_a = list_tile_files(dir_a)
    tiles_b = list_tile_files(dir_b)
    if strict and set(tiles_a) != set(tiles_b):
        only_a = sorted(set(tiles_a) - set(tiles_b))[:5]
        only_b = sorted(set(tiles_b) - set(tiles_a))[:5]
        raise DatasetError(
            f"result sets cover different tiles (a-only {only_a}, "
            f"b-only {only_b})"
        )
    common = sorted(set(tiles_a) & set(tiles_b))
    return [TilePair(t, tiles_a[t], tiles_b[t]) for t in common]
