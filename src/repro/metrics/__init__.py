"""Similarity metrics for cross-comparing segmentation results."""

from repro.metrics.jaccard import (
    PairwiseJaccard,
    jaccard_from_areas,
    jaccard_global,
    jaccard_pairwise,
)

__all__ = [
    "PairwiseJaccard",
    "jaccard_pairwise",
    "jaccard_from_areas",
    "jaccard_global",
]
