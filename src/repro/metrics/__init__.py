"""Similarity metrics for cross-comparing segmentation results, plus
service-level metrics (queue depth, batch occupancy, latency quantiles)
for the async comparison service."""

from repro.metrics.jaccard import (
    PairwiseJaccard,
    jaccard_from_areas,
    jaccard_global,
    jaccard_pairwise,
)
from repro.metrics.service import ServiceMetrics, ServiceSnapshot

__all__ = [
    "PairwiseJaccard",
    "jaccard_pairwise",
    "jaccard_from_areas",
    "jaccard_global",
    "ServiceMetrics",
    "ServiceSnapshot",
]
