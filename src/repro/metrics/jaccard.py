"""Jaccard similarity of polygon sets (paper §2.1).

Two measures are provided:

* :func:`jaccard_pairwise` — the paper's working definition ``J'``: the
  mean of ``|p n q| / |p u q|`` over all pairs with a non-empty
  intersection (Formula 1).  Missing polygons (present in one set with no
  intersecting counterpart in the other) are excluded from the mean but
  counted separately, as §2.1 prescribes.
* :func:`jaccard_global` — the set-level ``J = |P n Q| / |P u Q|``,
  computed exactly with the Klee-measure sweep over the decomposed
  rectangles of both sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.exact.decompose import decompose
from repro.exact.measure import union_area_of_boxes
from repro.geometry.polygon import RectilinearPolygon
from repro.index.join import mbr_pair_join
from repro.pixelbox.api import compare_pairs
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = ["PairwiseJaccard", "jaccard_pairwise", "jaccard_from_areas",
           "jaccard_global"]


@dataclass(frozen=True, slots=True)
class PairwiseJaccard:
    """Result of the pairwise (J') cross-comparison of two polygon sets."""

    mean_ratio: float
    intersecting_pairs: int
    candidate_pairs: int
    missing_a: int
    missing_b: int
    count_a: int
    count_b: int

    @property
    def jaccard(self) -> float:
        """Alias for the paper's ``J'``."""
        return self.mean_ratio

    def __str__(self) -> str:
        return (
            f"J'={self.mean_ratio:.4f} over {self.intersecting_pairs} "
            f"intersecting pairs ({self.candidate_pairs} candidates); "
            f"missing: {self.missing_a} of {self.count_a} in A, "
            f"{self.missing_b} of {self.count_b} in B"
        )


def jaccard_from_areas(
    areas: BatchAreas,
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    count_a: int,
    count_b: int,
) -> PairwiseJaccard:
    """Aggregate kernel output into ``J'`` (the aggregator's last step)."""
    if len(areas) != len(left_idx) or len(areas) != len(right_idx):
        raise GeometryError("areas and index arrays disagree in length")
    hit = areas.intersection > 0
    ratios = areas.ratios()[hit]
    matched_a = np.unique(np.asarray(left_idx)[hit])
    matched_b = np.unique(np.asarray(right_idx)[hit])
    return PairwiseJaccard(
        mean_ratio=float(ratios.mean()) if len(ratios) else 0.0,
        intersecting_pairs=int(hit.sum()),
        candidate_pairs=len(areas),
        missing_a=count_a - len(matched_a),
        missing_b=count_b - len(matched_b),
        count_a=count_a,
        count_b=count_b,
    )


def jaccard_pairwise(
    set_a: list[RectilinearPolygon],
    set_b: list[RectilinearPolygon],
    config: LaunchConfig | None = None,
    backend: str = "batch",
) -> PairwiseJaccard:
    """End-to-end ``J'`` of two polygon sets (join + kernel + aggregate).

    ``backend`` names the execution backend the kernel launch dispatches
    through (:mod:`repro.backends`); results are identical for every
    registered backend.

    >>> from repro.geometry import Box, RectilinearPolygon
    >>> a = [RectilinearPolygon.from_box(Box(0, 0, 4, 4))]
    >>> b = [RectilinearPolygon.from_box(Box(0, 0, 4, 2))]
    >>> jaccard_pairwise(a, b).mean_ratio
    0.5
    """
    join = mbr_pair_join(set_a, set_b)
    areas = compare_pairs(join.pairs(set_a, set_b), backend, config)
    return jaccard_from_areas(
        areas, join.left_idx, join.right_idx, len(set_a), len(set_b)
    )


def jaccard_global(
    set_a: list[RectilinearPolygon],
    set_b: list[RectilinearPolygon],
) -> float:
    """Set-level ``J = |P n Q| / |P u Q|`` via exact sweeps.

    ``|P u Q|`` comes from one Klee sweep over both sets' rectangles;
    ``|P n Q|`` follows from inclusion-exclusion with the per-set sweeps
    (polygons within one segmentation result may themselves overlap, so
    per-polygon areas cannot simply be summed).
    """
    rects_a = [r for p in set_a for r in decompose(p)]
    rects_b = [r for q in set_b for r in decompose(q)]
    if not rects_a and not rects_b:
        return 0.0
    area_a = union_area_of_boxes(rects_a)
    area_b = union_area_of_boxes(rects_b)
    area_union = union_area_of_boxes(rects_a + rects_b)
    area_inter = area_a + area_b - area_union
    if area_union == 0:
        return 0.0
    return area_inter / area_union
