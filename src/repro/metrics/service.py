"""Service-level metrics for the async comparison service.

Where :mod:`repro.metrics.jaccard` measures the *answers* (similarity of
polygon sets), this module measures the *serving*: admission-control
outcomes, queue depth, how full the coalescer's merged dispatches run,
and request latency quantiles.  Counters are updated from the service's
event loop and from submitter threads, so every mutation takes the
instance lock; :meth:`ServiceMetrics.snapshot` returns an immutable view
that is safe to render or serialize after the service is gone.

Latency quantiles come from a bounded reservoir of the most recent
samples (a ring of the last few thousand requests) — the p50/p99 of a
service that has been up for days should describe current traffic, not
its boot storm.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.obs.metrics import Histogram

__all__ = ["ServiceMetrics", "ServiceSnapshot"]

# Latency samples retained for quantile estimation.
_RESERVOIR = 4096


@dataclass(frozen=True, slots=True)
class ServiceSnapshot:
    """Immutable point-in-time view of one service's counters."""

    requests: int
    completed: int
    rejected: int
    timeouts: int
    cancelled: int
    failures: int
    batches: int
    pairs: int
    queue_depth: int
    max_queue_depth: int
    mean_batch_requests: float
    mean_batch_pairs: float
    p50_ms: float
    p99_ms: float
    request_cache_hits: int = 0
    request_cache_misses: int = 0
    caches: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    latency_histogram: Mapping[str, Any] = field(default_factory=dict)
    kernel: Mapping[str, int] = field(default_factory=dict)
    workers: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (wire protocol / reports)."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "failures": self.failures,
            "batches": self.batches,
            "pairs": self.pairs,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "mean_batch_requests": self.mean_batch_requests,
            "mean_batch_pairs": self.mean_batch_pairs,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "request_cache_hits": self.request_cache_hits,
            "request_cache_misses": self.request_cache_misses,
            "caches": {name: dict(snap) for name, snap in self.caches.items()},
            "latency_histogram": dict(self.latency_histogram),
            "kernel": dict(self.kernel),
            "workers": {name: dict(snap) for name, snap in self.workers.items()},
        }

    def render(self) -> str:
        """Human-readable multi-line summary (CLI / reports)."""
        return "\n".join(
            [
                f"requests  accepted={self.requests} "
                f"completed={self.completed} rejected={self.rejected} "
                f"timeouts={self.timeouts} cancelled={self.cancelled} "
                f"failures={self.failures}",
                f"dispatch  batches={self.batches} pairs={self.pairs} "
                f"occupancy={self.mean_batch_requests:.1f} req/batch "
                f"({self.mean_batch_pairs:.0f} pairs/batch)",
                f"queue     depth={self.queue_depth} "
                f"peak={self.max_queue_depth}",
                f"latency   p50={self.p50_ms:.2f}ms p99={self.p99_ms:.2f}ms",
            ]
            + (
                [
                    f"cache     hits={self.request_cache_hits} "
                    f"misses={self.request_cache_misses} "
                    f"tiers={','.join(sorted(self.caches)) or 'none'}"
                ]
                if self.caches or self.request_cache_hits or self.request_cache_misses
                else []
            )
        )


class ServiceMetrics:
    """Thread-safe counters + latency reservoir for one service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._completed = 0
        self._rejected = 0
        self._timeouts = 0
        self._cancelled = 0
        self._failures = 0
        self._batches = 0
        self._batch_requests = 0
        self._pairs = 0
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._latencies: list[float] = []
        self._latency_cursor = 0
        # Fixed-bucket histogram alongside the reservoir: the reservoir
        # gives fresh quantiles, the histogram gives Prometheus-scrapable
        # cumulative buckets over the service's whole life.
        self._latency_hist = Histogram(
            "repro_service_request_latency_seconds",
            "End-to-end request latency observed by the service.",
        )
        self._request_cache_hits = 0
        self._request_cache_misses = 0
        # Kernel work counters accumulated across every dispatched batch
        # (the paper's compute-intensity counters: pairs, pops, ...).
        self._kernel: dict[str, int] = {}
        # Per-worker stats provider (cluster backends); read at snapshot
        # time like the cache tiers.
        self._worker_stats = None
        # Attached cache stores (anything with a ``snapshot().as_dict()``),
        # read at snapshot time so tier counters and service counters
        # always appear together.
        self._caches: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Recording (service side)
    # ------------------------------------------------------------------
    def note_enqueued(self, depth: int) -> None:
        """A request passed admission control; ``depth`` is the new size."""
        with self._lock:
            self._requests += 1
            self._queue_depth = depth
            self._max_queue_depth = max(self._max_queue_depth, depth)

    def note_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._max_queue_depth = max(self._max_queue_depth, depth)

    def note_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def note_timeout(self) -> None:
        with self._lock:
            self._timeouts += 1

    def note_cancelled(self) -> None:
        with self._lock:
            self._cancelled += 1

    def note_failure(self) -> None:
        with self._lock:
            self._failures += 1

    def note_request_cache(self, hit: bool) -> None:
        """One request-cache lookup (hit or miss)."""
        with self._lock:
            if hit:
                self._request_cache_hits += 1
            else:
                self._request_cache_misses += 1

    def attach_cache(self, name: str, store) -> None:
        """Surface a cache tier in snapshots.

        ``store`` is either a :class:`repro.cache.CacheStore` (read via
        ``snapshot().as_dict()``) or a zero-argument callable returning
        the tier's counter dict (how backend-owned tiers are attached).
        """
        with self._lock:
            self._caches[name] = store

    def attach_worker_stats(self, provider) -> None:
        """Surface per-worker cluster stats in snapshots.

        ``provider`` is a zero-argument callable returning
        ``{worker_addr: counter_dict}`` (``ClusterBackend.worker_stats``).
        """
        with self._lock:
            self._worker_stats = provider

    def note_kernel(self, stats: Mapping[str, int]) -> None:
        """Accumulate one batch's kernel work counters."""
        with self._lock:
            for key, value in stats.items():
                self._kernel[key] = self._kernel.get(key, 0) + int(value)

    def note_batch(self, requests: int, pairs: int) -> None:
        """One coalesced dispatch of ``requests`` requests, ``pairs`` pairs."""
        with self._lock:
            self._batches += 1
            self._batch_requests += requests
            self._pairs += pairs

    def note_completed(self, latency_seconds: float) -> None:
        """One request answered; record its end-to-end latency."""
        self._latency_hist.observe(latency_seconds)
        with self._lock:
            self._completed += 1
            if len(self._latencies) < _RESERVOIR:
                self._latencies.append(latency_seconds)
            else:
                self._latencies[self._latency_cursor] = latency_seconds
                self._latency_cursor = (self._latency_cursor + 1) % _RESERVOIR

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> ServiceSnapshot:
        """Consistent immutable view of every counter."""
        with self._lock:
            provider = self._worker_stats
        # Worker stats may do socket round-trips; never hold the metrics
        # lock across them or the dispatch loop's note_* calls stall.
        workers = provider() if provider is not None else {}
        with self._lock:
            if self._latencies:
                lat = np.asarray(self._latencies, dtype=np.float64)
                p50 = float(np.percentile(lat, 50.0)) * 1e3
                p99 = float(np.percentile(lat, 99.0)) * 1e3
            else:
                p50 = p99 = 0.0
            batches = self._batches
            return ServiceSnapshot(
                requests=self._requests,
                completed=self._completed,
                rejected=self._rejected,
                timeouts=self._timeouts,
                cancelled=self._cancelled,
                failures=self._failures,
                batches=batches,
                pairs=self._pairs,
                queue_depth=self._queue_depth,
                max_queue_depth=self._max_queue_depth,
                mean_batch_requests=(
                    self._batch_requests / batches if batches else 0.0
                ),
                mean_batch_pairs=self._pairs / batches if batches else 0.0,
                p50_ms=p50,
                p99_ms=p99,
                request_cache_hits=self._request_cache_hits,
                request_cache_misses=self._request_cache_misses,
                caches={
                    name: (
                        store.snapshot().as_dict()
                        if hasattr(store, "snapshot")
                        else store()
                    )
                    for name, store in self._caches.items()
                },
                latency_histogram=self._latency_hist.snapshot(),
                kernel=dict(self._kernel),
                workers=workers,
            )
