"""Zero-dependency observability: tracing, events, and metrics export.

Three pieces, each usable alone:

* :mod:`repro.obs.trace` — request-scoped tracing.  A :class:`Tracer`
  produces nested spans with monotonic timings; the ambient context
  (:func:`current_tracer`) costs one ``ContextVar.get`` when tracing is
  off, so hot paths stay allocation-free.
* :mod:`repro.obs.events` — a process-wide structured :class:`EventLog`
  (ring buffer + optional JSON-lines sink) for lifecycle events and
  finished span records.
* :mod:`repro.obs.metrics` / :mod:`repro.obs.export` — a
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
  and the bridge that renders live service/cache/kernel/worker counters
  in Prometheus text exposition format, plus the ``/metrics`` HTTP
  endpoint behind ``repro serve --metrics``.
"""

from repro.obs.events import EVENTS, EventLog
from repro.obs.export import MetricsServer, render_snapshot, snapshot_families
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.render import load_trace_file, render_spans, render_trace_file
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    activate,
    current_context,
    current_tracer,
)

__all__ = [
    "EVENTS",
    "EventLog",
    "MetricsServer",
    "render_snapshot",
    "snapshot_families",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "load_trace_file",
    "render_spans",
    "render_trace_file",
    "SpanRecord",
    "Tracer",
    "activate",
    "current_context",
    "current_tracer",
]
