"""Process-wide structured event log: ring buffer + optional JSONL sink.

Lifecycle events (admission, coalesce, shard dispatch / re-dispatch,
speculation, cache hit/miss per tier, worker backoff) and finished span
records all land here as flat dicts.  The in-memory ring keeps the last
few thousand events for post-mortem inspection (``repro stats``,
tests); when a request asks for a trace file
(``CompareOptions(trace_out=...)`` / ``repro compare --trace-out``) the
same rows are appended to a JSON-lines sink.

Emission is guarded the same way tracing is: ``EVENTS.record(...)``
costs one deque append under a lock, and the hot kernel path never
calls it — only control-plane code (service dispatcher, cluster
scheduler, cache tiers) does.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, IO, Iterable

__all__ = ["EventLog", "EVENTS"]

_RING_SIZE = 4096


class EventLog:
    """Thread-safe ring of structured events with an optional sink."""

    def __init__(self, ring_size: int = _RING_SIZE) -> None:
        self._ring: deque[dict[str, Any]] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._sinks: list[IO[str]] = []

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; ``kind`` names the lifecycle moment."""
        event = {"ts": time.time(), "kind": kind, **fields}
        with self._lock:
            self._ring.append(event)
            for sink in self._sinks:
                try:
                    sink.write(json.dumps(event, sort_keys=True) + "\n")
                except (OSError, ValueError):
                    pass

    def extend(self, events: Iterable[dict[str, Any]]) -> None:
        """Append pre-built rows (e.g. span records) verbatim."""
        with self._lock:
            for event in events:
                self._ring.append(event)
                for sink in self._sinks:
                    try:
                        sink.write(json.dumps(event, sort_keys=True) + "\n")
                    except (OSError, ValueError):
                        pass

    def add_sink(self, fh: IO[str]) -> None:
        with self._lock:
            self._sinks.append(fh)

    def remove_sink(self, fh: IO[str]) -> None:
        with self._lock:
            try:
                self._sinks.remove(fh)
            except ValueError:
                pass

    def tail(self, n: int = 100, kind: str | None = None) -> list[dict[str, Any]]:
        """The most recent ``n`` events (optionally filtered by kind)."""
        with self._lock:
            rows = list(self._ring)
        if kind is not None:
            rows = [r for r in rows if r.get("kind") == kind]
        return rows[-n:]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


#: The process-wide log every tier records into.
EVENTS = EventLog()
