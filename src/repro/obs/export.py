"""Bridges existing counters into Prometheus families + HTTP endpoint.

Nothing here keeps its own state: the exporter reads a live
:class:`~repro.metrics.service.ServiceSnapshot` at scrape time and
translates it — service request counters, the latency histogram,
per-tier cache hit/miss counts (with a ``tier`` label), kernel work
counters (the paper's compute-intensity numbers, with a ``counter``
label), and per-worker cluster shard-cache counters (``worker`` label).

:class:`MetricsServer` is the ``repro serve --metrics`` endpoint: a
stdlib ``http.server`` on its own daemon thread serving ``/metrics``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.obs.metrics import Sample, _fmt_labels, _fmt_value

__all__ = ["snapshot_families", "render_snapshot", "MetricsServer"]

Family = tuple[str, str, str, list[Sample]]

# (snapshot attr, metric name, kind, help)
_SERVICE_COUNTERS = (
    ("requests", "repro_service_requests_total", "Requests past admission control."),
    ("completed", "repro_service_completed_total", "Requests answered."),
    ("rejected", "repro_service_rejected_total", "Requests rejected at admission."),
    ("timeouts", "repro_service_timeouts_total", "Requests that hit their deadline."),
    ("cancelled", "repro_service_cancelled_total", "Requests cancelled by the client."),
    ("failures", "repro_service_failures_total", "Requests that raised."),
    ("batches", "repro_service_batches_total", "Coalesced dispatches."),
    ("pairs", "repro_service_pairs_total", "Polygon pairs dispatched."),
)


def snapshot_families(snap: Any) -> list[Family]:
    """One :class:`ServiceSnapshot` -> Prometheus metric families."""
    families: list[Family] = []
    for attr, name, help_text in _SERVICE_COUNTERS:
        value = float(getattr(snap, attr, 0))
        families.append((name, "counter", help_text, [(name, {}, value)]))
    families.append((
        "repro_service_queue_depth", "gauge", "Current service queue depth.",
        [("repro_service_queue_depth", {}, float(snap.queue_depth))],
    ))
    families.append((
        "repro_service_queue_depth_peak", "gauge", "Peak service queue depth.",
        [("repro_service_queue_depth_peak", {}, float(snap.max_queue_depth))],
    ))

    hist: Mapping[str, Any] = getattr(snap, "latency_histogram", None) or {}
    if hist.get("buckets"):
        name = "repro_service_request_latency_seconds"
        samples: list[Sample] = [
            (f"{name}_bucket", {"le": bound}, float(count))
            for bound, count in hist["buckets"].items()
        ]
        samples.append((f"{name}_sum", {}, float(hist.get("sum", 0.0))))
        samples.append((f"{name}_count", {}, float(hist.get("count", 0))))
        families.append((
            name, "histogram", "End-to-end request latency in seconds.", samples,
        ))

    # Cache tiers: the request cache plus every attached backend tier,
    # all under one family pair with a ``tier`` label.
    hits: list[Sample] = [(
        "repro_cache_hits_total", {"tier": "service.request"},
        float(getattr(snap, "request_cache_hits", 0)),
    )]
    misses: list[Sample] = [(
        "repro_cache_misses_total", {"tier": "service.request"},
        float(getattr(snap, "request_cache_misses", 0)),
    )]
    entries: list[Sample] = []
    sizes: list[Sample] = []
    for tier, counters in sorted((getattr(snap, "caches", None) or {}).items()):
        hits.append(("repro_cache_hits_total", {"tier": tier},
                     float(counters.get("hits", 0))))
        misses.append(("repro_cache_misses_total", {"tier": tier},
                       float(counters.get("misses", 0))))
        if "entries" in counters:
            entries.append(("repro_cache_entries", {"tier": tier},
                            float(counters["entries"])))
        if "current_bytes" in counters:
            sizes.append(("repro_cache_bytes", {"tier": tier},
                          float(counters["current_bytes"])))
    families.append((
        "repro_cache_hits_total", "counter", "Cache hits per tier.", hits,
    ))
    families.append((
        "repro_cache_misses_total", "counter", "Cache misses per tier.", misses,
    ))
    if entries:
        families.append((
            "repro_cache_entries", "gauge", "Entries resident per tier.", entries,
        ))
    if sizes:
        families.append((
            "repro_cache_bytes", "gauge", "Bytes resident per tier.", sizes,
        ))

    kernel: Mapping[str, int] = getattr(snap, "kernel", None) or {}
    if kernel:
        samples = [
            ("repro_kernel_ops_total", {"counter": key}, float(value))
            for key, value in sorted(kernel.items())
        ]
        families.append((
            "repro_kernel_ops_total", "counter",
            "Kernel work counters (pairs, pops, partitions, ...) "
            "accumulated across dispatched batches.",
            samples,
        ))

    workers: Mapping[str, Mapping[str, Any]] = getattr(snap, "workers", None) or {}
    if workers:
        worker_samples: dict[str, list[Sample]] = {}
        for addr, counters in sorted(workers.items()):
            for key in ("shard_hits", "shards_run", "tables_received",
                        "tables_evicted", "protocol_errors"):
                if key in counters:
                    name = f"repro_worker_{key}_total"
                    worker_samples.setdefault(name, []).append(
                        (name, {"worker": addr}, float(counters[key]))
                    )
        for name, samples in sorted(worker_samples.items()):
            families.append((
                name, "counter",
                f"Per-worker {name.removeprefix('repro_worker_').removesuffix('_total').replace('_', ' ')}.",
                samples,
            ))
    return families


def render_families(families: list[Family]) -> str:
    """Families -> Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name, kind, help_text, samples in families:
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(
            f"{sample_name}{_fmt_labels(labels)} {_fmt_value(value)}"
            for sample_name, labels, value in samples
        )
    return "\n".join(lines) + "\n"


def render_snapshot(snap: Any) -> str:
    """One :class:`ServiceSnapshot` -> Prometheus text."""
    return render_families(snapshot_families(snap))


class MetricsServer:
    """A daemon ``/metrics`` HTTP endpoint backed by a render callable."""

    def __init__(self, render: Callable[[], str], host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._render = render

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                if self.path.rstrip("/") not in ("", "/metrics", "/m"):
                    self.send_error(404)
                    return
                try:
                    body = outer._render().encode()
                except Exception as exc:  # scrape must not kill the server
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
