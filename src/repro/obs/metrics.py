"""A zero-dependency metrics registry with Prometheus text exposition.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing, optionally labelled.
* :class:`Gauge` — a value that goes up and down (queue depth).
* :class:`Histogram` — fixed buckets, cumulative ``le`` counts plus
  ``_sum`` / ``_count`` series; the latency buckets default to a spread
  that resolves both the sub-millisecond warm-cache path and multi-second
  cold cluster rounds.

A registry can also hold *collectors*: callables invoked at scrape time
that return fully-formed sample rows.  The export bridge
(:mod:`repro.obs.export`) uses collectors to read the live
``ServiceMetrics`` / ``CacheSnapshot`` / ``KernelStats`` state without
double-bookkeeping.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds.  Spans warm-cache hits (~100us) through cold cluster rounds.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

Sample = tuple[str, dict[str, str], float]  # (name, labels, value)


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared labelled-series storage."""

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()


class Counter(_Instrument):
    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._series: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def samples(self) -> list[Sample]:
        with self._lock:
            return [
                (self.name, dict(key), value)
                for key, value in sorted(self._series.items())
            ]


class Gauge(_Instrument):
    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._series: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._series[key] = float(value)

    def samples(self) -> list[Sample]:
        with self._lock:
            return [
                (self.name, dict(key), value)
                for key, value in sorted(self._series.items())
            ]


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict[str, Any]:
        """Cumulative bucket counts keyed by upper bound, plus sum/count."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative[_fmt_value(bound)] = running
        cumulative["+Inf"] = total_count
        return {"buckets": cumulative, "sum": total_sum, "count": total_count}

    def samples(self) -> list[Sample]:
        snap = self.snapshot()
        rows: list[Sample] = [
            (f"{self.name}_bucket", {"le": bound}, float(count))
            for bound, count in snap["buckets"].items()
        ]
        rows.append((f"{self.name}_sum", {}, snap["sum"]))
        rows.append((f"{self.name}_count", {}, float(snap["count"])))
        return rows


class MetricsRegistry:
    """Holds instruments and scrape-time collectors; renders exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], list[tuple[str, str, str, list[Sample]]]]] = []

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(f"metric {name} already registered as {existing.kind}")
                return existing
            inst = Histogram(name, help_text, buckets)
            self._instruments[name] = inst
            return inst

    def _get_or_create(self, cls, name: str, help_text: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(f"metric {name} already registered as {existing.kind}")
                return existing
            inst = cls(name, help_text)
            self._instruments[name] = inst
            return inst

    def add_collector(
        self,
        fn: Callable[[], list[tuple[str, str, str, list[Sample]]]],
    ) -> None:
        """Register a scrape-time producer of ``(name, kind, help, samples)``."""
        with self._lock:
            self._collectors.append(fn)

    def render(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        families: list[tuple[str, str, str, list[Sample]]] = []
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        for inst in instruments:
            families.append((inst.name, inst.kind, inst.help, inst.samples()))
        for fn in collectors:
            try:
                families.extend(fn())
            except Exception:
                continue
        lines: list[str] = []
        seen: set[str] = set()
        for name, kind, help_text, samples in families:
            if name in seen:
                # Merge duplicate families silently: emit samples only.
                lines.extend(
                    f"{sample_name}{_fmt_labels(labels)} {_fmt_value(value)}"
                    for sample_name, labels, value in samples
                )
                continue
            seen.add(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(
                f"{sample_name}{_fmt_labels(labels)} {_fmt_value(value)}"
                for sample_name, labels, value in samples
            )
        return "\n".join(lines) + "\n"


#: Process-wide registry used by the service exporter and CLI.
REGISTRY = MetricsRegistry()
