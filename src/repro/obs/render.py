"""Pretty-print a span tree with per-stage percentages.

``repro trace show <file>`` reads a trace JSON-lines file (the
``--trace-out`` sink) and renders each trace as an indented tree — the
paper's Fig. 2 stage breakdown, but live: every stage's share of the
request's total wall time is printed next to its duration.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, TextIO

from repro.obs.trace import SpanRecord

__all__ = ["load_trace_file", "render_spans", "render_trace_file"]


def load_trace_file(fh: TextIO) -> list[SpanRecord]:
    """Span rows from a trace JSONL stream (non-span events skipped)."""
    records: list[SpanRecord] = []
    for line in fh:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, Mapping) and "span_id" in row and "trace_id" in row:
            try:
                records.append(SpanRecord.from_dict(row))
            except (KeyError, TypeError, ValueError):
                continue
    return records


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def _fmt_attrs(attrs: Mapping[str, Any]) -> str:
    if not attrs:
        return ""
    body = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{body}]"


def render_spans(records: Iterable[SpanRecord]) -> str:
    """Indented span trees, one per trace id, with stage percentages."""
    by_trace: dict[str, list[SpanRecord]] = {}
    for record in records:
        by_trace.setdefault(record.trace_id, []).append(record)
    if not by_trace:
        return "(no spans)"

    blocks: list[str] = []
    for trace_id, spans in by_trace.items():
        ids = {s.span_id for s in spans}
        children: dict[str | None, list[SpanRecord]] = {}
        for span in spans:
            # A parent missing from the record set (e.g. trimmed file)
            # promotes the span to a root rather than dropping it.
            parent = span.parent_id if span.parent_id in ids else None
            children.setdefault(parent, []).append(span)
        for rows in children.values():
            rows.sort(key=lambda s: s.start)
        roots = children.get(None, [])
        total = max((r.duration for r in roots), default=0.0)

        lines = [f"trace {trace_id}"]

        def walk(span: SpanRecord, depth: int) -> None:
            share = (span.duration / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"{'  ' * depth}- {span.name:<24s} "
                f"{_fmt_duration(span.duration):>9s}  {share:5.1f}%"
                f"{_fmt_attrs(span.attrs)}"
            )
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 1)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_trace_file(fh: TextIO) -> str:
    return render_spans(load_trace_file(fh))
