"""Request-scoped tracing: nested spans with monotonic timings.

The paper's argument is built on a stage-level cost breakdown (Fig. 2
profiles parsing / indexing / comparison before a line of GPU code is
justified).  This module gives the reproduction the same lens, live: a
:class:`Tracer` collects nested :class:`SpanRecord` rows for one request,
from ``Session.run`` down to the remote worker's kernel, and the records
stitch into a single tree keyed by one trace id.

Design constraints, in order:

1. **Zero overhead when off.**  Hot paths guard on
   :func:`current_tracer`, a single ``ContextVar.get`` that returns
   ``None`` without allocating.  No span object is ever created unless a
   tracer is active.
2. **Cross-process stitching.**  A trace context is two hex strings
   (trace id + parent span id).  The cluster coordinator ships them in
   the ``RUN_SHARD`` JSON header; the worker seeds a local tracer with
   them and returns its finished records in the ``SHARD_RESULT`` header,
   which the coordinator adopts.  Parent links then resolve across the
   process boundary.
3. **Stdlib only.**  ``time.monotonic`` for durations, ``time.time``
   for wall anchors, ``os.urandom`` for ids.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "current_context",
    "activate",
]


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


@dataclass(slots=True)
class SpanRecord:
    """One finished span: a named stage with monotonic timing.

    ``start`` is a wall-clock anchor (``time.time``) so spans from
    different processes order sensibly; ``duration`` comes from
    ``time.monotonic`` deltas and is the number to trust.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    duration: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            row["attrs"] = dict(self.attrs)
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=str(row["trace_id"]),
            span_id=str(row["span_id"]),
            parent_id=row.get("parent_id"),
            name=str(row["name"]),
            start=float(row["start"]),
            duration=float(row["duration"]),
            attrs=dict(row.get("attrs") or {}),
        )


class _ActiveSpan:
    """Bookkeeping for a span that is currently open (not a record yet)."""

    __slots__ = ("span_id", "name", "attrs", "_t0", "_wall")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.span_id = _new_id()
        self.name = name
        self.attrs = attrs
        self._wall = time.time()
        self._t0 = time.monotonic()

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the open span (e.g. result sizes)."""
        self.attrs.update(attrs)


# The active (tracer, parent span id) pair for the current task/thread.
# ``None`` is the permanent fast path: ContextVar.get with a default is a
# dict lookup, no allocation, no lock.
_CURRENT: ContextVar[tuple["Tracer", str | None] | None] = ContextVar(
    "repro_obs_trace", default=None
)


def current_tracer() -> "Tracer | None":
    """The active tracer, or ``None`` (the zero-cost off path)."""
    ctx = _CURRENT.get()
    return ctx[0] if ctx is not None else None


def current_context() -> tuple[str, str | None] | None:
    """``(trace_id, parent_span_id)`` for wire propagation, or ``None``."""
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    return (ctx[0].trace_id, ctx[1])


@contextmanager
def activate(tracer: "Tracer", parent_id: str | None = None) -> Iterator[None]:
    """Make ``tracer`` the ambient tracer for the enclosed block.

    Used at request entry (``Session.run``) and on the worker side to
    re-establish a context received over the wire.
    """
    token = _CURRENT.set((tracer, parent_id))
    try:
        yield
    finally:
        _CURRENT.reset(token)


class Tracer:
    """Collects the span records of one trace.

    Thread-safe: the service dispatcher and cluster scheduler finish
    spans from executor threads.  Records are append-only; ``records()``
    returns a snapshot.
    """

    __slots__ = ("trace_id", "_records", "_lock")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or _new_id()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_ActiveSpan]:
        """Open a nested span; it becomes the parent for the block."""
        ctx = _CURRENT.get()
        parent = ctx[1] if ctx is not None and ctx[0] is self else None
        active = _ActiveSpan(name, dict(attrs))
        token = _CURRENT.set((self, active.span_id))
        try:
            yield active
        finally:
            _CURRENT.reset(token)
            self._finish(active, parent)

    def _finish(self, active: _ActiveSpan, parent: str | None) -> None:
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=active.span_id,
            parent_id=parent,
            name=active.name,
            start=active._wall,
            duration=time.monotonic() - active._t0,
            attrs=active.attrs,
        )
        with self._lock:
            self._records.append(record)

    def adopt(self, rows: list[Mapping[str, Any]]) -> None:
        """Merge finished records from another process (same trace id)."""
        parsed = [SpanRecord.from_dict(r) for r in rows]
        with self._lock:
            self._records.extend(parsed)

    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [r.as_dict() for r in self.records()]
