"""The SCCG pipelined framework with dynamic task migration (paper §4)."""

from repro.pipeline.buffers import BoundedBuffer, BufferStats
from repro.pipeline.device import DeviceStats, GpuDevice
from repro.pipeline.engine import (
    PipelineOptions,
    PipelineOutcome,
    run_nopipe_multi,
    run_nopipe_single,
    run_pipelined,
)
from repro.pipeline.migration import MigrationConfig
from repro.pipeline.stages import StageTimers
from repro.pipeline.tasks import (
    BuiltTile,
    FilteredBatch,
    ParsedTile,
    ParseTask,
    TileResult,
)

__all__ = [
    "BoundedBuffer",
    "BufferStats",
    "GpuDevice",
    "DeviceStats",
    "PipelineOptions",
    "PipelineOutcome",
    "run_pipelined",
    "run_nopipe_single",
    "run_nopipe_multi",
    "MigrationConfig",
    "StageTimers",
    "ParseTask",
    "ParsedTile",
    "BuiltTile",
    "FilteredBatch",
    "TileResult",
]
