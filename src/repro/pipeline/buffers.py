"""Bounded inter-stage buffers with watermark signalling.

The work buffers between pipeline stages do double duty in the paper
(§4.2): they decouple producers from consumers, and their fill level is
the application-level load signal the migrator reads — a *full*
aggregator input buffer means the GPU is congested, an *empty* one means
it is under-utilized.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.errors import BufferClosedError, PipelineError

__all__ = ["BoundedBuffer", "BufferStats", "Closed"]

T = TypeVar("T")


class Closed:
    """Sentinel returned by :meth:`BoundedBuffer.get` after shutdown."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Closed>"


CLOSED = Closed()


@dataclass(slots=True)
class BufferStats:
    """Counters exposed for experiments and tests."""

    puts: int = 0
    gets: int = 0
    full_events: int = 0
    empty_events: int = 0
    max_depth: int = 0


class BoundedBuffer(Generic[T]):
    """A bounded FIFO with close semantics and full/empty watermarks.

    Unlike :class:`queue.Queue`, a closed buffer unblocks every waiter
    (producers raise, consumers drain then receive :data:`CLOSED`), and
    the fill level is observable through :meth:`is_full` / :meth:`is_empty`
    plus event counters — the signals the migration component consumes.
    """

    def __init__(self, capacity: int, name: str = "buffer") -> None:
        if capacity < 1:
            raise PipelineError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.stats = BufferStats()
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, item: T, timeout: float | None = None) -> None:
        """Append ``item``, blocking while the buffer is full."""
        with self._not_full:
            if self._closed:
                raise BufferClosedError(f"{self.name}: put() after close()")
            if len(self._items) >= self.capacity:
                self.stats.full_events += 1
                ok = self._not_full.wait_for(
                    lambda: self._closed or len(self._items) < self.capacity,
                    timeout,
                )
                if not ok:
                    raise PipelineError(f"{self.name}: put() timed out")
                if self._closed:
                    raise BufferClosedError(f"{self.name}: closed while putting")
            self._items.append(item)
            self.stats.puts += 1
            self.stats.max_depth = max(self.stats.max_depth, len(self._items))
            self._not_empty.notify()

    def close(self) -> None:
        """Mark end-of-stream; waiting consumers drain and stop."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get(self, timeout: float | None = None) -> T | Closed:
        """Pop the oldest item; :data:`CLOSED` once drained and closed."""
        with self._not_empty:
            if not self._items and not self._closed:
                self.stats.empty_events += 1
            ok = self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout
            )
            if not ok:
                raise PipelineError(f"{self.name}: get() timed out")
            if self._items:
                self.stats.gets += 1
                item = self._items.popleft()
                self._not_full.notify()
                return item
            return CLOSED

    def try_get(self) -> T | None:
        """Non-blocking pop (``None`` when empty); used by the migrator."""
        with self._lock:
            if not self._items:
                return None
            self.stats.gets += 1
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def steal_smallest(self, key) -> T | None:
        """Remove and return the smallest item by ``key`` (migration).

        The paper's migrator "selects the smallest tasks from the input
        buffer of the aggregator" so the CPU path absorbs cheap work while
        the GPU keeps the large batches.
        """
        with self._lock:
            if not self._items:
                return None
            best_pos = min(range(len(self._items)), key=lambda i: key(self._items[i]))
            self._items.rotate(-best_pos)
            item = self._items.popleft()
            self._items.rotate(best_pos)
            self.stats.gets += 1
            self._not_full.notify()
            return item

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def is_full(self) -> bool:
        """Watermark: buffer at capacity (GPU congestion signal)."""
        with self._lock:
            return len(self._items) >= self.capacity

    def is_empty(self) -> bool:
        """Watermark: buffer drained (GPU idleness signal)."""
        with self._lock:
            return not self._items

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
