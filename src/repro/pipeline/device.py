"""The exclusive GPU device wrapper.

The GPU "is an exclusive, non-preemptive compute device" (paper §4):
uncontrolled concurrent kernel invocations serialize and waste CPU time
in the driver.  :class:`GpuDevice` models that contract for the simulated
device: a lock serializes launches, every launch pays a fixed overhead
(host-device transfer + driver), and an optional slowdown factor emulates
a device shared with other applications (the paper's Config-III, §5.6).

Lock-wait time is recorded so the NoPipe-M experiment can show the
contention that motivates the single-aggregator design (Table 1).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.backends import get_backend
from repro.errors import DeviceError
from repro.geometry.polygon import RectilinearPolygon
from repro.io.parser_gpu import gpu_parse
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = ["GpuDevice", "DeviceStats"]


@dataclass(slots=True)
class DeviceStats:
    """Per-device accounting."""

    launches: int = 0
    parse_launches: int = 0
    busy_seconds: float = 0.0
    overhead_seconds: float = 0.0
    lock_wait_seconds: float = 0.0
    pairs_processed: int = 0


class GpuDevice:
    """One simulated GPU: serialized, launch-overhead-charged kernels."""

    def __init__(
        self,
        name: str = "gpu0",
        launch_overhead: float = 0.002,
        slowdown: float = 1.0,
        backend: str = "batch",
        backend_options: dict | None = None,
        backend_instance=None,
    ) -> None:
        if launch_overhead < 0:
            raise DeviceError("launch overhead cannot be negative")
        if slowdown < 1.0:
            raise DeviceError(f"slowdown must be >= 1.0, got {slowdown}")
        self.name = name
        self.launch_overhead = launch_overhead
        self.slowdown = slowdown
        if backend_instance is not None:
            # A lifecycle owner (e.g. repro.Session) lends its warm
            # executor to the pipeline; the device never closes it.
            self.backend_name = getattr(backend_instance, "name", backend)
            self._backend = backend_instance
        else:
            self.backend_name = backend
            # Resolve through the registry up front so a typo fails at
            # device construction, not mid-pipeline in a worker thread.
            self._backend = get_backend(backend, **(backend_options or {}))
        self.stats = DeviceStats()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def run_aggregate(
        self,
        pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
        config: LaunchConfig | None = None,
    ) -> BatchAreas:
        """Launch the configured execution backend (exclusive access)."""
        wait_start = time.perf_counter()
        with self._lock:
            acquired = time.perf_counter()
            self.stats.lock_wait_seconds += acquired - wait_start
            self._charge_overhead()
            t0 = time.perf_counter()
            result = self._backend.compare_pairs(pairs, config)
            kernel = time.perf_counter() - t0
            self._charge_slowdown(kernel)
            self.stats.launches += 1
            self.stats.pairs_processed += len(pairs)
            self.stats.busy_seconds += time.perf_counter() - acquired
        return result

    def run_parse(self, raw: bytes | str | Path) -> list[RectilinearPolygon]:
        """Launch the GPU-Parser kernel (exclusive access)."""
        wait_start = time.perf_counter()
        with self._lock:
            acquired = time.perf_counter()
            self.stats.lock_wait_seconds += acquired - wait_start
            self._charge_overhead()
            t0 = time.perf_counter()
            result = gpu_parse(raw)
            kernel = time.perf_counter() - t0
            self._charge_slowdown(kernel)
            self.stats.parse_launches += 1
            self.stats.busy_seconds += time.perf_counter() - acquired
        return result

    def try_acquire_idle(self) -> bool:
        """Non-blocking idleness probe (used by the parser migrator)."""
        if self._lock.acquire(blocking=False):
            self._lock.release()
            return True
        return False

    # ------------------------------------------------------------------
    def _charge_overhead(self) -> None:
        if self.launch_overhead > 0:
            time.sleep(self.launch_overhead)
            self.stats.overhead_seconds += self.launch_overhead

    def _charge_slowdown(self, kernel_seconds: float) -> None:
        extra = kernel_seconds * (self.slowdown - 1.0)
        if extra > 0:
            time.sleep(extra)

    def __repr__(self) -> str:
        return (
            f"GpuDevice({self.name!r}, backend={self.backend_name!r}, "
            f"overhead={self.launch_overhead * 1e3:.1f}ms, "
            f"slowdown={self.slowdown:g}, launches={self.stats.launches})"
        )
