"""Pipeline assembly and the three execution schemes of Table 1.

* :func:`run_pipelined` — the full SCCG pipeline: four stages over
  bounded buffers, one aggregator consolidating GPU access, optional
  dynamic task migration.
* :func:`run_nopipe_single` — NoPipe-S: the four stages executed
  sequentially per tile in one stream.
* :func:`run_nopipe_multi` — NoPipe-M: several independent NoPipe-S
  streams sharing the device(s) without coordination (the scheme whose
  GPU lock contention the paper measures at ~50% CPU utilization).

All schemes produce identical similarity results; only the execution
topology differs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import PipelineError
from repro.index.hilbert_rtree import bulk_load_polygons
from repro.io.parser_cpu import parse_vectorized
from repro.io.tiles import pair_result_sets
from repro.pipeline.buffers import BoundedBuffer
from repro.pipeline.device import GpuDevice
from repro.pipeline.migration import (
    MigrationConfig,
    aggregator_migrator,
    parser_migrator,
)
from repro.pipeline.stages import (
    StageTimers,
    aggregator_worker,
    builder_worker,
    filter_worker,
    parser_worker,
    split_batch_results,
)
from repro.pipeline.tasks import FilteredBatch, ParseTask, TileResult
from repro.pixelbox.common import LaunchConfig

__all__ = [
    "PipelineOptions",
    "PipelineOutcome",
    "run_pipelined",
    "run_nopipe_single",
    "run_nopipe_multi",
]


@dataclass(slots=True)
class PipelineOptions:
    """Configuration of one pipeline run."""

    parser_workers: int = 2
    buffer_capacity: int = 8
    batch_pairs: int = 4096
    launch_config: LaunchConfig = field(
        default_factory=lambda: LaunchConfig(tight_mbr=True)
    )
    devices: list[GpuDevice] | None = None
    migration: MigrationConfig | None = None
    #: Execution backend the aggregator's default device dispatches to
    #: (a :mod:`repro.backends` registry name).  Explicitly supplied
    #: devices keep their own backend configuration.
    backend: str = "batch"
    #: Factory keyword arguments for the default device's backend (e.g.
    #: ``{"hosts": "..."}`` for the cluster backend).
    backend_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.parser_workers < 1:
            raise PipelineError("parser_workers must be >= 1")
        if self.batch_pairs < 1:
            raise PipelineError("batch_pairs must be >= 1")

    def make_devices(self) -> list[GpuDevice]:
        """The device list (freshly created default when unset)."""
        if self.devices:
            return self.devices
        return [
            GpuDevice(backend=self.backend, backend_options=self.backend_options)
        ]


@dataclass(slots=True)
class PipelineOutcome:
    """Merged result + performance accounting of one run."""

    jaccard_mean: float
    intersecting_pairs: int
    candidate_pairs: int
    missing_a: int
    missing_b: int
    count_a: int
    count_b: int
    tiles: int
    wall_seconds: float
    input_bytes: int
    timers: StageTimers
    device_stats: list[tuple[str, float, float, int]]

    @property
    def throughput(self) -> float:
        """Bytes of raw input per second (the paper's §5.6 metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.input_bytes / self.wall_seconds


def _collect(results: list[TileResult], wall: float, timers: StageTimers,
             devices: list[GpuDevice]) -> PipelineOutcome:
    """Merge per-tile partial results into the final outcome."""
    by_tile: dict[int, list[TileResult]] = {}
    for result in results:
        by_tile.setdefault(result.tile_id, []).append(result)
    ratio_sum = sum(r.ratio_sum for r in results)
    pairs = sum(r.intersecting_pairs for r in results)
    candidates = sum(r.candidate_pairs for r in results)
    missing_a = missing_b = count_a = count_b = 0
    for tile_results in by_tile.values():
        matched_a: set[int] = set()
        matched_b: set[int] = set()
        for r in tile_results:
            matched_a |= r.matched_a
            matched_b |= r.matched_b
        count_a += tile_results[0].count_a
        count_b += tile_results[0].count_b
        missing_a += tile_results[0].count_a - len(matched_a)
        missing_b += tile_results[0].count_b - len(matched_b)
    return PipelineOutcome(
        jaccard_mean=ratio_sum / pairs if pairs else 0.0,
        intersecting_pairs=pairs,
        candidate_pairs=candidates,
        missing_a=missing_a,
        missing_b=missing_b,
        count_a=count_a,
        count_b=count_b,
        tiles=len(by_tile),
        wall_seconds=wall,
        input_bytes=sum(r.input_bytes for r in results),
        timers=timers,
        device_stats=[
            (d.name, d.stats.busy_seconds, d.stats.lock_wait_seconds,
             d.stats.launches + d.stats.parse_launches)
            for d in devices
        ],
    )


def _make_parse_tasks(dir_a: str | Path, dir_b: str | Path) -> list[ParseTask]:
    return [
        ParseTask(pair.tile_id, pair.file_a, pair.file_b)
        for pair in pair_result_sets(dir_a, dir_b)
    ]


# ----------------------------------------------------------------------
# Pipelined scheme
# ----------------------------------------------------------------------
def run_pipelined(
    dir_a: str | Path,
    dir_b: str | Path,
    options: PipelineOptions | None = None,
) -> PipelineOutcome:
    """Run the full SCCG pipeline over two result-set directories."""
    opts = options or PipelineOptions()
    devices = opts.make_devices()
    tasks = _make_parse_tasks(dir_a, dir_b)
    timers = StageTimers()

    parse_in: BoundedBuffer[ParseTask] = BoundedBuffer(
        max(len(tasks), 1), "parse_in"
    )
    parsed = BoundedBuffer(opts.buffer_capacity, "parsed")
    built = BoundedBuffer(opts.buffer_capacity, "built")
    batches = BoundedBuffer(opts.buffer_capacity, "batches")
    results: BoundedBuffer[TileResult] = BoundedBuffer(
        max(len(tasks) * 4, 16), "results"
    )
    for task in tasks:
        parse_in.put(task)
    parse_in.close()

    failures: list[BaseException] = []

    def guarded(fn, *args):
        def run():
            try:
                fn(*args)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                failures.append(exc)
                for buf in (parsed, built, batches, results):
                    buf.close()
        return run

    stop_migration = threading.Event()
    parser_threads = [
        threading.Thread(
            target=guarded(parser_worker, parse_in, parsed, timers),
            name=f"parser-{i}",
            daemon=True,
        )
        for i in range(opts.parser_workers)
    ]
    builder_thread = threading.Thread(
        target=guarded(builder_worker, parsed, built, timers),
        name="builder",
        daemon=True,
    )
    filter_thread = threading.Thread(
        target=guarded(filter_worker, built, batches, timers),
        name="filter",
        daemon=True,
    )
    aggregator_thread = threading.Thread(
        target=guarded(
            aggregator_worker, batches, results, devices,
            opts.launch_config, opts.batch_pairs, timers,
        ),
        name="aggregator",
        daemon=True,
    )
    migration_threads: list[threading.Thread] = []
    if opts.migration is not None:
        migration_threads = [
            threading.Thread(
                target=guarded(
                    aggregator_migrator, batches, results,
                    opts.launch_config, opts.migration, timers,
                    stop_migration,
                ),
                name="migrator-aggregator",
                daemon=True,
            ),
            threading.Thread(
                target=guarded(
                    parser_migrator, parse_in, parsed, batches, devices,
                    opts.migration, timers, stop_migration,
                ),
                name="migrator-parser",
                daemon=True,
            ),
        ]

    start = time.perf_counter()
    for thread in (
        parser_threads
        + [builder_thread, filter_thread, aggregator_thread]
        + migration_threads
    ):
        thread.start()

    for thread in parser_threads:
        thread.join()
    if migration_threads:
        migration_threads[1].join()  # parser migrator drains parse_in too
    parsed.close()
    builder_thread.join()
    built.close()
    filter_thread.join()
    batches.close()
    aggregator_thread.join()
    if migration_threads:
        stop_migration.set()
        migration_threads[0].join()
    results.close()
    wall = time.perf_counter() - start

    if failures:
        raise PipelineError("pipeline stage failed") from failures[0]

    collected: list[TileResult] = []
    while True:
        item = results.try_get()
        if item is None:
            break
        collected.append(item)
    return _collect(collected, wall, timers, devices)


# ----------------------------------------------------------------------
# Non-pipelined schemes
# ----------------------------------------------------------------------
def _process_tile_sequential(
    task: ParseTask,
    devices: list[GpuDevice],
    config: LaunchConfig,
    timers: StageTimers,
    cursor: int,
) -> TileResult:
    """All four stages inline for one tile (one NoPipe iteration)."""
    t0 = time.perf_counter()
    polygons_a = parse_vectorized(task.file_a.read_bytes())
    polygons_b = parse_vectorized(task.file_b.read_bytes())
    timers.add("parser", time.perf_counter() - t0)

    t0 = time.perf_counter()
    index = bulk_load_polygons(polygons_b)
    timers.add("builder", time.perf_counter() - t0)

    t0 = time.perf_counter()
    lefts: list[int] = []
    rights: list[int] = []
    pairs = []
    for i, poly in enumerate(polygons_a):
        for j in index.search(poly.mbr):
            lefts.append(i)
            rights.append(j)
            pairs.append((poly, polygons_b[j]))
    batch = FilteredBatch(
        tile_id=task.tile_id,
        pairs=pairs,
        left_idx=np.asarray(lefts, dtype=np.int64),
        right_idx=np.asarray(rights, dtype=np.int64),
        count_a=len(polygons_a),
        count_b=len(polygons_b),
        input_bytes=task.input_bytes,
    )
    timers.add("filter", time.perf_counter() - t0)

    t0 = time.perf_counter()
    device = devices[cursor % len(devices)]
    areas = device.run_aggregate(batch.pairs, config)
    result = split_batch_results([batch], areas, executed_on=device.name)[0]
    timers.add("aggregator", time.perf_counter() - t0)
    return result


def run_nopipe_single(
    dir_a: str | Path,
    dir_b: str | Path,
    options: PipelineOptions | None = None,
) -> PipelineOutcome:
    """NoPipe-S: one stream, stages executed sequentially per tile."""
    opts = options or PipelineOptions()
    devices = opts.make_devices()
    tasks = _make_parse_tasks(dir_a, dir_b)
    timers = StageTimers()
    start = time.perf_counter()
    results = [
        _process_tile_sequential(task, devices, opts.launch_config, timers, k)
        for k, task in enumerate(tasks)
    ]
    wall = time.perf_counter() - start
    return _collect(results, wall, timers, devices)


def run_nopipe_multi(
    dir_a: str | Path,
    dir_b: str | Path,
    options: PipelineOptions | None = None,
    streams: int = 4,
) -> PipelineOutcome:
    """NoPipe-M: ``streams`` uncoordinated NoPipe-S streams, shared GPU."""
    if streams < 1:
        raise PipelineError(f"streams must be >= 1, got {streams}")
    opts = options or PipelineOptions()
    devices = opts.make_devices()
    tasks = _make_parse_tasks(dir_a, dir_b)
    timers = StageTimers()
    results: list[TileResult] = []
    results_lock = threading.Lock()
    failures: list[BaseException] = []

    def stream_body(my_tasks: list[ParseTask]) -> None:
        try:
            local = [
                _process_tile_sequential(
                    task, devices, opts.launch_config, timers, k
                )
                for k, task in enumerate(my_tasks)
            ]
            with results_lock:
                results.extend(local)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures.append(exc)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=stream_body, args=(tasks[i::streams],), daemon=True)
        for i in range(streams)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if failures:
        raise PipelineError("NoPipe-M stream failed") from failures[0]
    return _collect(results, wall, timers, devices)
