"""Dynamic task migration between CPUs and GPUs (paper §4.2).

Two background migration threads sleep until the aggregator's input
buffer hits a watermark:

* **GPU congested** (buffer full): the aggregator migrator steals the
  *smallest* batches from the aggregator's input and executes them with
  PixelBox-CPU on worker threads, feeding results directly to the
  collector.
* **GPU idle** (buffer empty): the parser migrator steals parse tasks
  from the parser's input and runs them through the GPU-Parser kernel,
  feeding parsed tiles back into the builder's input.

Both threads poll the watermarks at millisecond granularity — the
"usually stay in the sleeping state and are only woken up" behaviour of
the paper's implementation, without platform-specific futexes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import MigrationError
from repro.pipeline.buffers import BoundedBuffer
from repro.pipeline.device import GpuDevice
from repro.pipeline.stages import StageTimers, split_batch_results
from repro.pipeline.tasks import FilteredBatch, ParsedTile, ParseTask, TileResult
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.cpu import PixelBoxCpu

__all__ = ["MigrationConfig", "aggregator_migrator", "parser_migrator"]

_POLL_SECONDS = 0.002


@dataclass(frozen=True, slots=True)
class MigrationConfig:
    """Tuning knobs of the migration component."""

    cpu_workers: int = 2
    poll_seconds: float = _POLL_SECONDS

    def __post_init__(self) -> None:
        if self.cpu_workers < 1:
            raise MigrationError(
                f"cpu_workers must be >= 1, got {self.cpu_workers}"
            )
        if self.poll_seconds <= 0:
            raise MigrationError("poll interval must be positive")


def aggregator_migrator(
    batches_in: BoundedBuffer[FilteredBatch],
    results_out: BoundedBuffer[TileResult],
    config: LaunchConfig,
    migration: MigrationConfig,
    timers: StageTimers,
    stop: threading.Event,
) -> None:
    """GPU-to-CPU migration: absorb small batches when the GPU clogs."""
    cpu = PixelBoxCpu(mode="vector", workers=migration.cpu_workers, config=config)
    while not stop.is_set():
        if batches_in.closed and batches_in.is_empty():
            return
        if not batches_in.is_full():
            time.sleep(migration.poll_seconds)
            continue
        batch = batches_in.steal_smallest(key=lambda b: b.size)
        if batch is None:
            continue
        t0 = time.perf_counter()
        areas = cpu.compute_many(batch.pairs)
        for result in split_batch_results([batch], areas, executed_on="cpu"):
            results_out.put(result)
        timers.add("aggregator", time.perf_counter() - t0)
        timers.migrated_cpu_tasks += 1


def parser_migrator(
    parse_in: BoundedBuffer[ParseTask],
    parsed_out: BoundedBuffer[ParsedTile],
    batches_in: BoundedBuffer[FilteredBatch],
    devices: list[GpuDevice],
    migration: MigrationConfig,
    timers: StageTimers,
    stop: threading.Event,
) -> None:
    """CPU-to-GPU migration: parse on an idle device.

    The idleness signal is the paper's: the aggregator's input buffer ran
    empty, meaning the GPUs are starved for work.  An empty buffer that
    has *never held a batch* is not starvation — it is the pipeline
    still filling — so migration waits for the first batch to have
    flowed through before trusting the watermark (otherwise every run
    would open by dumping parse work on the device during warm-up).
    """
    while not stop.is_set():
        if parse_in.closed and parse_in.is_empty():
            return
        if batches_in.closed:
            # Downstream shut down (run finished or a stage failed):
            # parse work has nowhere to flow, stop migrating it.
            return
        if batches_in.stats.puts == 0 or not batches_in.is_empty():
            time.sleep(migration.poll_seconds)
            continue
        device = next((d for d in devices if d.try_acquire_idle()), None)
        if device is None:
            time.sleep(migration.poll_seconds)
            continue
        task = parse_in.try_get()
        if task is None:
            time.sleep(migration.poll_seconds)
            continue
        t0 = time.perf_counter()
        polygons_a = device.run_parse(task.file_a)
        polygons_b = device.run_parse(task.file_b)
        tile = ParsedTile(
            task.tile_id, polygons_a, polygons_b, task.input_bytes
        )
        timers.add("parser", time.perf_counter() - t0)
        timers.migrated_gpu_tasks += 1
        parsed_out.put(tile)
