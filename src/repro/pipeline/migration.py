"""Dynamic task migration between CPUs and GPUs (paper §4.2).

Two background migration threads sleep until the aggregator's input
buffer hits a watermark:

* **GPU congested** (buffer full): the aggregator migrator steals the
  *smallest* batches from the aggregator's input and executes them on a
  CPU-side execution backend resolved through the registry
  (:mod:`repro.backends` — vectorized by default, the multiprocess
  shards on big CPU hosts), feeding results directly to the collector.
* **GPU idle** (buffer empty): the parser migrator steals parse tasks
  from the parser's input and runs them through the GPU-Parser kernel,
  feeding parsed tiles back into the builder's input.

Both threads poll the watermarks at millisecond granularity — the
"usually stay in the sleeping state and are only woken up" behaviour of
the paper's implementation, without platform-specific futexes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.backends import available_backends, get_backend
from repro.errors import MigrationError
from repro.pipeline.buffers import BoundedBuffer
from repro.pipeline.device import GpuDevice
from repro.pipeline.stages import StageTimers, split_batch_results
from repro.pipeline.tasks import FilteredBatch, ParsedTile, ParseTask, TileResult
from repro.pixelbox.common import LaunchConfig

__all__ = ["MigrationConfig", "aggregator_migrator", "parser_migrator"]

_POLL_SECONDS = 0.002


@dataclass(frozen=True, slots=True)
class MigrationConfig:
    """Tuning knobs of the migration component.

    ``backend`` names the registry executor migrated aggregator batches
    run on (every backend is bit-for-bit identical, so this is purely a
    throughput knob).  The default ``"vectorized"`` engine runs the
    whole stolen batch level-synchronously in the migrator thread and
    takes no worker count; ``"multiprocess"`` lets a big CPU host absorb
    congestion with the sharded pool, and there ``cpu_workers`` is its
    process count (unless ``backend_options`` overrides it) — the pool
    is persistent for the migrator's lifetime, so it forks once per
    pipeline run, not once per stolen batch.
    """

    cpu_workers: int = 2
    poll_seconds: float = _POLL_SECONDS
    backend: str = "vectorized"
    backend_options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cpu_workers < 1:
            raise MigrationError(
                f"cpu_workers must be >= 1, got {self.cpu_workers}"
            )
        if self.poll_seconds <= 0:
            raise MigrationError("poll interval must be positive")
        if self.backend not in available_backends():
            # Fail at configuration time: a typo here must not abort a
            # long pipeline run from inside a migrator thread.
            raise MigrationError(
                f"unknown migration backend {self.backend!r} "
                f"(registered: {', '.join(available_backends())})"
            )

    def resolve_backend(self):
        """Instantiate the migration executor through the registry."""
        options = dict(self.backend_options)
        if self.backend == "multiprocess":
            options.setdefault("workers", self.cpu_workers)
            options.setdefault("persistent", True)
        return get_backend(self.backend, **options)


def aggregator_migrator(
    batches_in: BoundedBuffer[FilteredBatch],
    results_out: BoundedBuffer[TileResult],
    config: LaunchConfig,
    migration: MigrationConfig,
    timers: StageTimers,
    stop: threading.Event,
) -> None:
    """GPU-to-CPU migration: absorb small batches when the GPU clogs.

    The executor is resolved once per migrator thread through the
    backend registry and closed on exit, so a pooled backend (e.g.
    persistent multiprocess workers) spins up at most once per pipeline
    run, not once per stolen batch.
    """
    with migration.resolve_backend() as backend:
        while not stop.is_set():
            if batches_in.closed and batches_in.is_empty():
                return
            if not batches_in.is_full():
                time.sleep(migration.poll_seconds)
                continue
            batch = batches_in.steal_smallest(key=lambda b: b.size)
            if batch is None:
                continue
            t0 = time.perf_counter()
            areas = backend.compare_pairs(batch.pairs, config)
            for result in split_batch_results(
                [batch], areas, executed_on="cpu"
            ):
                results_out.put(result)
            timers.add("aggregator", time.perf_counter() - t0)
            timers.migrated_cpu_tasks += 1


def parser_migrator(
    parse_in: BoundedBuffer[ParseTask],
    parsed_out: BoundedBuffer[ParsedTile],
    batches_in: BoundedBuffer[FilteredBatch],
    devices: list[GpuDevice],
    migration: MigrationConfig,
    timers: StageTimers,
    stop: threading.Event,
) -> None:
    """CPU-to-GPU migration: parse on an idle device.

    The idleness signal is the paper's: the aggregator's input buffer ran
    empty, meaning the GPUs are starved for work.  An empty buffer that
    has *never held a batch* is not starvation — it is the pipeline
    still filling — so migration waits for the first batch to have
    flowed through before trusting the watermark (otherwise every run
    would open by dumping parse work on the device during warm-up).
    """
    while not stop.is_set():
        if parse_in.closed and parse_in.is_empty():
            return
        if batches_in.closed:
            # Downstream shut down (run finished or a stage failed):
            # parse work has nowhere to flow, stop migrating it.
            return
        if batches_in.stats.puts == 0 or not batches_in.is_empty():
            time.sleep(migration.poll_seconds)
            continue
        device = next((d for d in devices if d.try_acquire_idle()), None)
        if device is None:
            time.sleep(migration.poll_seconds)
            continue
        task = parse_in.try_get()
        if task is None:
            time.sleep(migration.poll_seconds)
            continue
        t0 = time.perf_counter()
        polygons_a = device.run_parse(task.file_a)
        polygons_b = device.run_parse(task.file_b)
        tile = ParsedTile(
            task.tile_id, polygons_a, polygons_b, task.input_bytes
        )
        timers.add("parser", time.perf_counter() - t0)
        timers.migrated_gpu_tasks += 1
        parsed_out.put(tile)
