"""The four pipeline stages (paper §4.1, Figure 6).

Each stage is a worker function that consumes its input buffer and feeds
its output buffer: parser (CPU, multiple workers), builder (CPU, single
worker — "its execution speed is already very fast"), filter (CPU, single
worker), aggregator (drives the GPU, single instance so kernel launches
are consolidated).  Stage workers run as daemon threads owned by the
engine; buffer closing is the engine's job so migration threads can share
the buffers safely.

The aggregator does not execute PixelBox itself: each device dispatches
its launches through the execution-backend registry
(:mod:`repro.backends`), so the same pipeline topology drives the batched
kernel, the multiprocess shards, or any future executor — selected by
:attr:`repro.pipeline.engine.PipelineOptions.backend` or per-device.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.index.hilbert_rtree import bulk_load_polygons
from repro.io.parser_cpu import parse_vectorized
from repro.pipeline.buffers import CLOSED, BoundedBuffer
from repro.pipeline.device import GpuDevice
from repro.pipeline.tasks import (
    BuiltTile,
    FilteredBatch,
    ParsedTile,
    ParseTask,
    TileResult,
)
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = [
    "StageTimers",
    "parser_worker",
    "builder_worker",
    "filter_worker",
    "aggregator_worker",
    "split_batch_results",
]


@dataclass(slots=True)
class StageTimers:
    """Busy seconds per stage (excludes buffer waits)."""

    parser: float = 0.0
    builder: float = 0.0
    filter: float = 0.0
    aggregator: float = 0.0
    migrated_cpu_tasks: int = 0
    migrated_gpu_tasks: int = 0
    _lock: object = field(default=None, repr=False)

    def add(self, stage: str, seconds: float) -> None:
        setattr(self, stage, getattr(self, stage) + seconds)


def parser_worker(
    parse_in: BoundedBuffer[ParseTask],
    parsed_out: BoundedBuffer[ParsedTile],
    timers: StageTimers,
) -> None:
    """Stage 1: text -> binary polygons (runs in several threads)."""
    while True:
        task = parse_in.get()
        if task is CLOSED:
            return
        t0 = time.perf_counter()
        polygons_a = parse_vectorized(task.file_a.read_bytes())
        polygons_b = parse_vectorized(task.file_b.read_bytes())
        tile = ParsedTile(
            task.tile_id, polygons_a, polygons_b, task.input_bytes
        )
        timers.add("parser", time.perf_counter() - t0)
        parsed_out.put(tile)


def builder_worker(
    parsed_in: BoundedBuffer[ParsedTile],
    built_out: BoundedBuffer[BuiltTile],
    timers: StageTimers,
) -> None:
    """Stage 2: Hilbert R-tree over set B of each tile (single thread)."""
    while True:
        tile = parsed_in.get()
        if tile is CLOSED:
            return
        t0 = time.perf_counter()
        index = bulk_load_polygons(tile.polygons_b)
        built = BuiltTile(
            tile.tile_id,
            tile.polygons_a,
            tile.polygons_b,
            index,
            tile.input_bytes,
        )
        timers.add("builder", time.perf_counter() - t0)
        built_out.put(built)


def filter_worker(
    built_in: BoundedBuffer[BuiltTile],
    batches_out: BoundedBuffer[FilteredBatch],
    timers: StageTimers,
) -> None:
    """Stage 3: pairwise MBR index search (single thread)."""
    while True:
        tile = built_in.get()
        if tile is CLOSED:
            return
        t0 = time.perf_counter()
        lefts: list[int] = []
        rights: list[int] = []
        pairs = []
        polys_b = tile.polygons_b
        for i, poly in enumerate(tile.polygons_a):
            for j in tile.index.search(poly.mbr):
                lefts.append(i)
                rights.append(j)
                pairs.append((poly, polys_b[j]))
        batch = FilteredBatch(
            tile_id=tile.tile_id,
            pairs=pairs,
            left_idx=np.asarray(lefts, dtype=np.int64),
            right_idx=np.asarray(rights, dtype=np.int64),
            count_a=len(tile.polygons_a),
            count_b=len(tile.polygons_b),
            input_bytes=tile.input_bytes,
        )
        timers.add("filter", time.perf_counter() - t0)
        batches_out.put(batch)


def aggregator_worker(
    batches_in: BoundedBuffer[FilteredBatch],
    results_out: BoundedBuffer[TileResult],
    devices: list[GpuDevice],
    config: LaunchConfig,
    batch_pairs: int,
    timers: StageTimers,
) -> None:
    """Stage 4: PixelBox via each device's execution backend, batched.

    Small filter outputs are grouped until ``batch_pairs`` pairs are
    pending (or the input runs dry) and shipped in one kernel launch —
    the batching that amortizes the device's per-launch overhead (§4.1).
    Multiple devices are used round-robin; each launch dispatches through
    the device's registered backend (:mod:`repro.backends`).
    """
    device_cursor = 0
    while True:
        first = batches_in.get()
        if first is CLOSED:
            return
        group = [first]
        total = first.size
        while total < batch_pairs:
            extra = batches_in.try_get()
            if extra is None:
                break
            group.append(extra)
            total += extra.size
        t0 = time.perf_counter()
        all_pairs = [pair for batch in group for pair in batch.pairs]
        device = devices[device_cursor % len(devices)]
        device_cursor += 1
        areas = device.run_aggregate(all_pairs, config)
        for result in split_batch_results(group, areas, executed_on=device.name):
            results_out.put(result)
        timers.add("aggregator", time.perf_counter() - t0)


def split_batch_results(
    group: list[FilteredBatch],
    areas: BatchAreas,
    executed_on: str,
) -> list[TileResult]:
    """Slice one launch's output back into per-tile partial results."""
    out: list[TileResult] = []
    ratios = areas.ratios()
    hits = areas.intersection > 0
    offset = 0
    for batch in group:
        span = slice(offset, offset + batch.size)
        offset += batch.size
        hit = hits[span]
        out.append(
            TileResult(
                tile_id=batch.tile_id,
                ratio_sum=float(ratios[span][hit].sum()),
                intersecting_pairs=int(hit.sum()),
                candidate_pairs=batch.size,
                matched_a=set(batch.left_idx[hit].tolist()),
                matched_b=set(batch.right_idx[hit].tolist()),
                count_a=batch.count_a,
                count_b=batch.count_b,
                input_bytes=batch.input_bytes,
                executed_on=executed_on,
            )
        )
    return out
