"""Task types flowing through the cross-comparing pipeline.

A computation task at every stage is defined at the image-tile scale
(paper §4.1): the parser consumes the two polygon files of one tile, the
builder indexes the parsed polygons, the filter emits the tile's
MBR-intersecting pair batch, and the aggregator reduces pair areas into
the tile's partial similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.geometry.polygon import RectilinearPolygon
from repro.index.rtree import RTree

__all__ = ["ParseTask", "ParsedTile", "BuiltTile", "FilteredBatch", "TileResult"]


@dataclass(frozen=True, slots=True)
class ParseTask:
    """Input to the parser: one tile's two polygon files."""

    tile_id: int
    file_a: Path
    file_b: Path

    @property
    def input_bytes(self) -> int:
        """Raw text size (the throughput metric's numerator, §5.6)."""
        return self.file_a.stat().st_size + self.file_b.stat().st_size


@dataclass(slots=True)
class ParsedTile:
    """Parser output: binary polygon sets of one tile."""

    tile_id: int
    polygons_a: list[RectilinearPolygon]
    polygons_b: list[RectilinearPolygon]
    input_bytes: int = 0


@dataclass(slots=True)
class BuiltTile:
    """Builder output: parsed tile plus the spatial index over set B."""

    tile_id: int
    polygons_a: list[RectilinearPolygon]
    polygons_b: list[RectilinearPolygon]
    index: RTree
    input_bytes: int = 0


@dataclass(slots=True)
class FilteredBatch:
    """Filter output: the tile's MBR-intersecting polygon pairs."""

    tile_id: int
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]]
    left_idx: np.ndarray
    right_idx: np.ndarray
    count_a: int
    count_b: int
    input_bytes: int = 0

    @property
    def size(self) -> int:
        """Pair count — the migrator's 'smallest task' ordering key."""
        return len(self.pairs)


@dataclass(slots=True)
class TileResult:
    """Aggregator output: one tile's partial similarity terms."""

    tile_id: int
    ratio_sum: float
    intersecting_pairs: int
    candidate_pairs: int
    matched_a: set[int] = field(default_factory=set)
    matched_b: set[int] = field(default_factory=set)
    count_a: int = 0
    count_b: int = 0
    input_bytes: int = 0
    executed_on: str = "gpu"
