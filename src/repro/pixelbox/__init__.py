"""PixelBox — the paper's core contribution.

Computes exact areas of intersection and union of rectilinear polygon
pairs without constructing overlay geometry, by combining per-pixel
crossing-parity tests (pixelization) with a recursive sampling-box
subdivision whose positions are decided by Lemma 1.

All batched execution flows through one shared chunk kernel
(:class:`~repro.pixelbox.kernel.ChunkKernel`, configured by an explicit
:class:`~repro.pixelbox.kernel.ExecutionPolicy`), so execution policy —
chunking, batching, sharding, union mode — can never change results.

Implementations, from fastest to most faithful:

* :func:`batch_areas` — stacked NumPy kernel, many pairs per launch (the
  simulated device's production path);
* :func:`variant_areas` / :func:`pair_areas` — per-pair NumPy engine with
  selectable variant (PixelOnly / NoSep / PixelBox);
* :class:`PixelBoxCpu` — the CPU port (scalar or vector mode);
* :class:`ReferenceKernel` — a line-by-line transcription of the paper's
  Algorithm 1 including the shared-stack discipline.
"""

from repro.pixelbox.api import batch_areas, pair_areas, variant_areas
from repro.pixelbox.batch import BATCH_MAX_DIM, compute_batch
from repro.pixelbox.common import (
    DEFAULT_BLOCK_SIZE,
    BoxPosition,
    KernelStats,
    LaunchConfig,
    Method,
    PairAreas,
    split_grid,
)
from repro.pixelbox.cpu import PixelBoxCpu, pair_areas_scalar
from repro.pixelbox.engine import BatchAreas, compute_pair, compute_pairs
from repro.pixelbox.kernel import (
    ChunkKernel,
    ExecutionPolicy,
    batch_policy,
    engine_policy,
    shard_policy,
)
from repro.pixelbox.operators import (
    contains_pixelbox,
    equals_pixelbox,
    intersects_pixelbox,
    touches_pixelbox,
)
from repro.pixelbox.reference import ReferenceKernel, StackTrace
from repro.pixelbox.sampling import (
    box_contribute,
    box_continue,
    box_position,
    box_positions_vectorized,
    nosep_continue,
    nosep_contribution,
)

__all__ = [
    "pair_areas",
    "batch_areas",
    "variant_areas",
    "compute_pair",
    "compute_pairs",
    "compute_batch",
    "ChunkKernel",
    "ExecutionPolicy",
    "engine_policy",
    "batch_policy",
    "shard_policy",
    "BatchAreas",
    "PairAreas",
    "KernelStats",
    "LaunchConfig",
    "Method",
    "BoxPosition",
    "split_grid",
    "DEFAULT_BLOCK_SIZE",
    "BATCH_MAX_DIM",
    "PixelBoxCpu",
    "pair_areas_scalar",
    "contains_pixelbox",
    "equals_pixelbox",
    "intersects_pixelbox",
    "touches_pixelbox",
    "ReferenceKernel",
    "StackTrace",
    "box_position",
    "box_positions_vectorized",
    "box_continue",
    "box_contribute",
    "nosep_continue",
    "nosep_contribution",
]
