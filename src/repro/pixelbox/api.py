"""Top-level PixelBox entry points.

Most callers need exactly one of these:

* :func:`pair_areas` — areas for a single polygon pair.
* :func:`batch_areas` — areas for a list of pairs on the fast batched
  device kernel (the production path used by the pipeline aggregator).
* :func:`compare_pairs` — areas for a list of pairs on a *named
  execution backend* from the :mod:`repro.backends` registry
  (``"batch"``, ``"vectorized"``, ``"multiprocess"``, ``"auto"``, ...).
* :func:`variant_areas` — areas for a list of pairs with an explicit
  algorithm variant, used by the evaluation harness to compare
  PixelOnly / PixelBox-NoSep / PixelBox.
"""

from __future__ import annotations

from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import LaunchConfig, Method, PairAreas
from repro.pixelbox.engine import BatchAreas, compute_pair, compute_pairs

__all__ = ["pair_areas", "batch_areas", "compare_pairs", "variant_areas"]


def pair_areas(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    method: Method = Method.PIXELBOX,
    config: LaunchConfig | None = None,
) -> PairAreas:
    """Areas of intersection and union for one polygon pair.

    >>> from repro.geometry import Box, RectilinearPolygon
    >>> a = RectilinearPolygon.from_box(Box(0, 0, 4, 4))
    >>> b = RectilinearPolygon.from_box(Box(2, 2, 6, 6))
    >>> res = pair_areas(a, b)
    >>> (res.intersection, res.union)
    (4, 28)
    """
    return compute_pair(p, q, method, config)


def batch_areas(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    config: LaunchConfig | None = None,
) -> BatchAreas:
    """Areas for many pairs at once on the batched device kernel."""
    return compare_pairs(pairs, backend="batch", config=config)


def compare_pairs(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    backend: str = "batch",
    config: LaunchConfig | None = None,
    **backend_options,
) -> BatchAreas:
    """Areas for many pairs on a named execution backend.

    ``backend_options`` are forwarded to the backend factory, e.g.
    ``compare_pairs(pairs, backend="multiprocess", workers=4)``.  All
    backends return bit-for-bit identical results; the name only selects
    the execution strategy.
    """
    from repro.backends import get_backend

    return get_backend(backend, **backend_options).compare_pairs(pairs, config)


def variant_areas(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    method: Method,
    config: LaunchConfig | None = None,
) -> BatchAreas:
    """Areas for many pairs with an explicit algorithm variant."""
    return compute_pairs(pairs, method, config)
