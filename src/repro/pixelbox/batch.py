"""Production batched device kernel: many polygon pairs per launch.

This is what the pipeline's aggregator stage launches on the (simulated)
GPU.  Small pairs — the overwhelming majority in pathology workloads — are
pixelized directly over their pair MBR in one stacked launch; pairs whose
MBR exceeds :data:`BATCH_MAX_DIM` go through the sampling-box subdivision
first and contribute their leaf boxes to the same stacked launch.  Union
areas always use the indirect formula (paper §3.2).

Semantically identical to ``compute_pairs(pairs, Method.PIXELBOX)``; the
difference is purely execution policy (skip subdivision for small pairs
even when their MBR is above the pixelization threshold).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import KernelStats, LaunchConfig, Method
from repro.pixelbox.engine import BatchAreas, _start_box
from repro.pixelbox.vectorized import EdgeTable, plan_levels, stacked_leaf_counts

__all__ = ["compute_batch", "BATCH_MAX_DIM"]

# Pairs with MBR width or height above this run sampling-box subdivision.
BATCH_MAX_DIM = 64

# Pairs per chunk (bounds peak memory of the stacked tensors).
_PAIR_CHUNK = 4096


def compute_batch(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    config: LaunchConfig | None = None,
) -> BatchAreas:
    """Areas for a batch of pairs using the stacked parity-fill kernel."""
    cfg = config or LaunchConfig()
    n = len(pairs)
    stats = KernelStats()
    inter = np.zeros(n, dtype=np.int64)
    a_p = np.zeros(n, dtype=np.int64)
    a_q = np.zeros(n, dtype=np.int64)

    for lo in range(0, n, _PAIR_CHUNK):
        hi = min(lo + _PAIR_CHUNK, n)
        _batch_chunk(
            pairs[lo:hi], cfg, stats, inter[lo:hi], a_p[lo:hi], a_q[lo:hi]
        )

    union = a_p + a_q - inter
    if np.any(union < 0):
        raise KernelError("negative union area — inconsistent inputs")
    return BatchAreas(inter, union, a_p, a_q, stats)


def _batch_chunk(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    cfg: LaunchConfig,
    stats: KernelStats,
    inter: np.ndarray,
    a_p: np.ndarray,
    a_q: np.ndarray,
) -> None:
    """One chunk: route small pairs straight to leaves, large through plan."""
    m = len(pairs)
    stats.pairs += m
    table_p = EdgeTable.build([p for p, _ in pairs])
    table_q = EdgeTable.build([q for _, q in pairs])

    boxes = np.zeros((m, 4), dtype=np.int64)
    small = np.zeros(m, dtype=bool)
    large = np.zeros(m, dtype=bool)
    for i, (p, q) in enumerate(pairs):
        a_p[i] = p.area
        a_q[i] = q.area
        mbr = _start_box(p, q, Method.PIXELBOX, cfg)
        if mbr is None:
            continue
        boxes[i] = mbr.as_tuple()
        if mbr.width <= BATCH_MAX_DIM and mbr.height <= BATCH_MAX_DIM:
            small[i] = True
        else:
            large[i] = True
    stats.batched_pairs += int(small.sum())
    stats.fallback_pairs += int(large.sum())

    large_idx = np.flatnonzero(large)
    dec_i, _, plan_leaves, plan_owner = plan_levels(
        table_p, table_q, boxes[large_idx], large_idx, cfg, Method.PIXELBOX,
        stats, m,
    )
    inter += dec_i

    small_idx = np.flatnonzero(small)
    leaves = np.concatenate([boxes[small_idx], plan_leaves], axis=0)
    leaf_owner = np.concatenate([small_idx, plan_owner])
    stats.leaf_boxes += len(leaves)
    if len(leaves):
        sizes = (leaves[:, 2] - leaves[:, 0]) * (leaves[:, 3] - leaves[:, 1])
        stats.pixel_tests += 2 * int(sizes.sum())
        leaf_i, _ = stacked_leaf_counts(
            table_p, table_q, leaves, leaf_owner, want_union=False
        )
        np.add.at(inter, leaf_owner, leaf_i)
