"""Production batched device kernel: many polygon pairs per launch.

This is what the pipeline's aggregator stage launches on the (simulated)
GPU.  It is a thin adapter over the shared chunk kernel
(:class:`repro.pixelbox.kernel.ChunkKernel`) under the *batch policy*:
small pairs — the overwhelming majority in pathology workloads — are
pixelized directly over their pair MBR in one stacked launch; pairs whose
MBR exceeds :data:`BATCH_MAX_DIM` go through the sampling-box subdivision
first and contribute their leaf boxes to the same stacked launch.  Union
areas always use the indirect formula (paper §3.2).

Semantically identical to ``compute_pairs(pairs, Method.PIXELBOX)``; the
difference is purely execution policy (skip subdivision for small pairs
even when their MBR is above the pixelization threshold).
"""

from __future__ import annotations

from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import LaunchConfig
from repro.pixelbox.kernel import (
    DEFAULT_SKIP_SUBDIVISION_DIM,
    BatchAreas,
    ChunkKernel,
    batch_policy,
)

__all__ = ["compute_batch", "BATCH_MAX_DIM"]

# Pairs with MBR width or height above this run sampling-box subdivision.
BATCH_MAX_DIM = DEFAULT_SKIP_SUBDIVISION_DIM


def compute_batch(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    config: LaunchConfig | None = None,
) -> BatchAreas:
    """Areas for a batch of pairs using the stacked parity-fill kernel."""
    return ChunkKernel(batch_policy(BATCH_MAX_DIM), config).compute(pairs)
