"""Shared types and launch parameters for the PixelBox kernels.

The paper evaluates three algorithm variants (§5.2):

* ``PIXEL_ONLY`` — pixelization over the whole pair MBR (Figure 4(a)).
* ``NOSEP`` — sampling boxes + pixelization, tracking the areas of
  intersection *and* union together (Figure 4(d) without the indirect
  union optimization).
* ``PIXELBOX`` — the full algorithm: sampling boxes + pixelization for the
  area of intersection only; the area of union is derived from
  ``|p u q| = |p| + |q| - |p n q|``.

Every implementation in this package — scalar reference, CPU port, NumPy
device engine, and the SIMT-simulator kernel — accepts the same
:class:`LaunchConfig` and produces the same exact integer areas.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import KernelError

__all__ = [
    "Method",
    "BoxPosition",
    "LaunchConfig",
    "PairAreas",
    "KernelStats",
    "split_grid",
    "DEFAULT_BLOCK_SIZE",
]

DEFAULT_BLOCK_SIZE = 64


class Method(enum.Enum):
    """PixelBox algorithm variant (paper §5.2 naming)."""

    PIXEL_ONLY = "pixel-only"
    NOSEP = "pixelbox-nosep"
    PIXELBOX = "pixelbox"


class BoxPosition(enum.IntEnum):
    """A sampling box's position relative to one polygon (paper §3.2)."""

    OUTSIDE = 0
    HOVER = 1
    INSIDE = 2


def split_grid(block_size: int) -> tuple[int, int]:
    """Sub-box grid for one partitioning step.

    Algorithm 1 partitions a sampling box into ``blockDim.x`` sub-boxes so
    each thread classifies one.  The grid is the most square ``nx * ny``
    factorization of the block size, e.g. ``64 -> 8x8``, ``32 -> 8x4``.
    """
    if block_size < 4:
        raise KernelError(f"block size must be >= 4, got {block_size}")
    nx = 1 << (int(math.log2(block_size)) // 2 + int(math.log2(block_size)) % 2)
    while block_size % nx != 0:
        nx //= 2
    ny = block_size // nx
    return (max(nx, ny), min(nx, ny))


@dataclass(frozen=True, slots=True)
class LaunchConfig:
    """Kernel launch parameters shared by every PixelBox implementation.

    Attributes
    ----------
    block_size:
        Number of cooperating threads per polygon pair (``n`` in the
        paper); also the number of sub-boxes per partitioning step.
    pixel_threshold:
        The pixelization threshold ``T``: a sampling box with fewer pixels
        than ``T`` is handed to the pixelization procedure.  Defaults to
        the paper's recommended ``n**2 / 2`` (§3.4).
    tight_mbr:
        When ``True`` the first sampling box is the intersection of the
        two polygons' MBRs instead of their cover.  Only legal for the
        ``PIXELBOX`` variant (which never measures union by boxes); used
        by the production aggregator path.
    leaf_mode:
        How leaf boxes are pixelized.  ``"scan"`` (default) uses the
        XOR-scan fill — an O(pixels + edges) optimization this library
        adds beyond the paper, used on the production path.  ``"crossing"``
        evaluates the paper's per-pixel ray-cast (O(pixels x edges), the
        cost profile of the GPU kernel's pixelization procedure); the
        algorithm-variant experiments (Figures 8 and 10) use this mode so
        the compute-intensity trade-off the paper studies is preserved.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    pixel_threshold: int | None = None
    tight_mbr: bool = False
    leaf_mode: str = "scan"

    def __post_init__(self) -> None:
        if self.block_size < 4:
            raise KernelError(f"block size must be >= 4, got {self.block_size}")
        if self.pixel_threshold is not None and self.pixel_threshold < 1:
            raise KernelError(
                f"pixel threshold must be >= 1, got {self.pixel_threshold}"
            )
        if self.leaf_mode not in ("scan", "crossing"):
            raise KernelError(
                f"leaf_mode must be 'scan' or 'crossing', got {self.leaf_mode!r}"
            )

    @property
    def threshold(self) -> int:
        """Effective ``T`` (defaults to ``block_size**2 // 2``)."""
        if self.pixel_threshold is not None:
            return self.pixel_threshold
        return self.block_size * self.block_size // 2

    @property
    def grid(self) -> tuple[int, int]:
        """Sub-box split grid derived from the block size."""
        return split_grid(self.block_size)


@dataclass(frozen=True, slots=True)
class PairAreas:
    """Exact areas for one polygon pair."""

    intersection: int
    union: int
    area_p: int
    area_q: int

    @property
    def ratio(self) -> float:
        """Jaccard ratio ``|p n q| / |p u q|`` (0 when disjoint)."""
        if self.union == 0:
            return 0.0
        return self.intersection / self.union

    def __post_init__(self) -> None:
        if self.intersection < 0 or self.union < 0:
            raise KernelError("areas cannot be negative")
        if self.union != self.area_p + self.area_q - self.intersection:
            raise KernelError(
                "inconsistent areas: union != area_p + area_q - intersection"
            )


@dataclass(slots=True)
class KernelStats:
    """Work counters accumulated by a kernel run.

    The counters quantify the paper's compute-intensity arguments: Fig. 8
    is explained by ``pixel_tests`` shrinking as sampling boxes take over,
    and the NoSep-vs-PixelBox gap by the extra ``partitions``.
    """

    pairs: int = 0
    pops: int = 0
    partitions: int = 0
    boxes_classified: int = 0
    boxes_decided: int = 0
    leaf_boxes: int = 0
    pixel_tests: int = 0
    batched_pairs: int = 0
    fallback_pairs: int = 0

    def merge(self, other: "KernelStats") -> None:
        """Accumulate counters from another run in place."""
        self.pairs += other.pairs
        self.pops += other.pops
        self.partitions += other.partitions
        self.boxes_classified += other.boxes_classified
        self.boxes_decided += other.boxes_decided
        self.leaf_boxes += other.leaf_boxes
        self.pixel_tests += other.pixel_tests
        self.batched_pairs += other.batched_pairs
        self.fallback_pairs += other.fallback_pairs

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reports and assertions)."""
        return {
            "pairs": self.pairs,
            "pops": self.pops,
            "partitions": self.partitions,
            "boxes_classified": self.boxes_classified,
            "boxes_decided": self.boxes_decided,
            "leaf_boxes": self.leaf_boxes,
            "pixel_tests": self.pixel_tests,
            "batched_pairs": self.batched_pairs,
            "fallback_pairs": self.fallback_pairs,
        }
