"""PixelBox-CPU: the algorithm ported to CPU execution (paper §4.2).

The paper ports PixelBox to CPUs both as a comparison point
(PixelBox-CPU-S in Figure 7) and as the execution target for aggregator
tasks migrated off a congested GPU.  Two modes are provided:

* ``scalar`` — a single-core, plain-Python implementation whose inner loop
  carves each sampling box into per-row pixel runs.  It does strictly less
  bookkeeping than the exact overlay baseline (no geometry construction),
  which is why the paper measures it faster than GEOS despite running on
  one core.
* ``vector`` — the per-pair NumPy engine; this is what migrated aggregator
  tasks run on CPU worker threads (NumPy releases the GIL, so migrated
  work genuinely overlaps the device).

Thread-level parallelism (the paper uses Intel TBB) is provided by
:meth:`PixelBoxCpu.compute_many` over a thread pool.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import KernelError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import (
    BoxPosition,
    KernelStats,
    LaunchConfig,
    Method,
    PairAreas,
)
from repro.pixelbox.engine import BatchAreas, compute_pair
from repro.pixelbox.sampling import box_continue, box_contribute, box_position

__all__ = ["PixelBoxCpu", "pair_areas_scalar"]


def _row_runs(edges: list[tuple[int, int, int]], y: int) -> list[int]:
    """Sorted crossing columns of a pixel row against vertical edges.

    Pixel row ``y`` (centers at ``y + 0.5``) crosses edge ``(x, lo, hi)``
    when ``lo <= y < hi``.  Consecutive pairs of the sorted crossing
    columns delimit the polygon's inside runs on that row.
    """
    xs = [x for x, lo, hi in edges if lo <= y < hi]
    xs.sort()
    return xs


def _runs_overlap(xs_p: list[int], xs_q: list[int], x0: int, x1: int) -> int:
    """Pixels covered by both run lists, clipped to columns [x0, x1)."""
    total = 0
    i = j = 0
    while i + 1 < len(xs_p) and j + 1 < len(xs_q):
        p_lo, p_hi = xs_p[i], xs_p[i + 1]
        q_lo, q_hi = xs_q[j], xs_q[j + 1]
        lo = max(p_lo, q_lo, x0)
        hi = min(p_hi, q_hi, x1)
        if hi > lo:
            total += hi - lo
        if p_hi <= q_hi:
            i += 2
        else:
            j += 2
    return total


def pair_areas_scalar(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    config: LaunchConfig | None = None,
    stats: KernelStats | None = None,
) -> PairAreas:
    """Single-core scalar PixelBox (sampling boxes + row-run pixelization)."""
    cfg = config or LaunchConfig()
    st = stats if stats is not None else KernelStats()
    st.pairs += 1

    edges_p = [(int(a), int(b), int(c)) for a, b, c in p.vertical_edges]
    edges_q = [(int(a), int(b), int(c)) for a, b, c in q.vertical_edges]

    inter = 0
    stack: list[Box] = [p.mbr.cover(q.mbr)]
    nx, ny = cfg.grid
    while stack:
        box = stack.pop()
        st.pops += 1
        if box.size < cfg.threshold or box.size == 1:
            st.leaf_boxes += 1
            st.pixel_tests += 2 * box.size
            for y in range(box.y0, box.y1):
                inter += _runs_overlap(
                    _row_runs(edges_p, y), _row_runs(edges_q, y), box.x0, box.x1
                )
            continue
        st.partitions += 1
        for child in box.split(nx, ny):
            phi1 = box_position(child, p)
            phi2 = box_position(child, q)
            st.boxes_classified += 1
            if box_continue(phi1, phi2):
                stack.append(child)
            else:
                st.boxes_decided += 1
                if box_contribute(phi1, phi2):
                    inter += child.size
    area_p, area_q = p.area, q.area
    return PairAreas(inter, area_p + area_q - inter, area_p, area_q)


class PixelBoxCpu:
    """CPU executor for PixelBox over pair lists.

    Parameters
    ----------
    mode:
        ``"scalar"`` (plain Python, Figure 7's PixelBox-CPU-S profile) or
        ``"vector"`` (per-pair NumPy engine, the migration target).
    workers:
        Thread count for :meth:`compute_many`; ``1`` reproduces the
        single-core PixelBox-CPU-S configuration.
    """

    def __init__(
        self,
        mode: str = "vector",
        workers: int = 1,
        config: LaunchConfig | None = None,
    ) -> None:
        if mode not in ("scalar", "vector"):
            raise KernelError(f"unknown PixelBox-CPU mode {mode!r}")
        if workers < 1:
            raise KernelError(f"workers must be >= 1, got {workers}")
        self.mode = mode
        self.workers = workers
        self.config = config or LaunchConfig()

    def compute_one(
        self, p: RectilinearPolygon, q: RectilinearPolygon
    ) -> PairAreas:
        """Areas for one pair in the configured mode."""
        if self.mode == "scalar":
            return pair_areas_scalar(p, q, self.config)
        return compute_pair(p, q, Method.PIXELBOX, self.config)

    def compute_many(
        self, pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]]
    ) -> BatchAreas:
        """Areas for a pair list, parallelized across worker threads."""
        n = len(pairs)
        inter = np.zeros(n, dtype=np.int64)
        a_p = np.zeros(n, dtype=np.int64)
        a_q = np.zeros(n, dtype=np.int64)
        stats = KernelStats()

        def work(span: tuple[int, int]) -> None:
            lo, hi = span
            local = KernelStats()
            for i in range(lo, hi):
                p, q = pairs[i]
                if self.mode == "scalar":
                    res = pair_areas_scalar(p, q, self.config, local)
                else:
                    res = compute_pair(p, q, Method.PIXELBOX, self.config, local)
                inter[i] = res.intersection
                a_p[i] = res.area_p
                a_q[i] = res.area_q
            stats.merge(local)

        if self.workers == 1 or n < 2:
            work((0, n))
        else:
            step = -(-n // self.workers)
            spans = [(lo, min(lo + step, n)) for lo in range(0, n, step)]
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                list(pool.map(work, spans))
        union = a_p + a_q - inter
        return BatchAreas(inter, union, a_p, a_q, stats)
