"""NumPy PixelBox engine (all algorithm variants).

It follows Algorithm 1's structure — an explicit sampling-box stack, a
partition-classify step, pixelization below the threshold ``T`` — with the
thread-block-wide data parallelism mapped onto NumPy array operations:

* one partitioning step classifies all ``blockDim`` sub-boxes at once
  (:func:`~repro.pixelbox.sampling.box_positions_vectorized`);
* the batch entry point defers every leaf box and pixelizes all of them
  in one stacked XOR-scan launch
  (:func:`~repro.pixelbox.stacked.stacked_parity_counts`), the way the GPU
  pixelizes thousands of thread-block leaves per kernel call.

Results are exact integer areas, cross-validated against
:mod:`repro.exact` in the test-suite (the paper validated against PostGIS
the same way, §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import parity_fill
from repro.pixelbox.common import (
    BoxPosition,
    KernelStats,
    LaunchConfig,
    Method,
    PairAreas,
)
from repro.pixelbox.sampling import box_positions_vectorized
from repro.pixelbox.vectorized import (
    EdgeTable,
    plan_levels,
    stacked_leaf_counts,
)

__all__ = ["compute_pair", "compute_pairs", "BatchAreas"]

_IN = BoxPosition.INSIDE.value
_OUT = BoxPosition.OUTSIDE.value
_HOVER = BoxPosition.HOVER.value


@dataclass(slots=True)
class BatchAreas:
    """Exact areas for a batch of polygon pairs (parallel arrays)."""

    intersection: np.ndarray
    union: np.ndarray
    area_p: np.ndarray
    area_q: np.ndarray
    stats: KernelStats

    def __len__(self) -> int:
        return len(self.intersection)

    def ratios(self) -> np.ndarray:
        """Per-pair Jaccard ratios; 0 for pairs with an empty union."""
        out = np.zeros(len(self.intersection), dtype=np.float64)
        nz = self.union > 0
        out[nz] = self.intersection[nz] / self.union[nz]
        return out

    def pair(self, i: int) -> PairAreas:
        """The ``i``-th result as a :class:`PairAreas` value."""
        return PairAreas(
            int(self.intersection[i]),
            int(self.union[i]),
            int(self.area_p[i]),
            int(self.area_q[i]),
        )


def compute_pair(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    method: Method = Method.PIXELBOX,
    config: LaunchConfig | None = None,
    stats: KernelStats | None = None,
) -> PairAreas:
    """Areas of intersection and union of one polygon pair.

    Parameters
    ----------
    p, q:
        The polygon pair (order is irrelevant).
    method:
        Algorithm variant; see :class:`~repro.pixelbox.common.Method`.
    config:
        Launch parameters (block size, threshold ``T``); defaults match
        the paper's recommended settings.
    stats:
        Optional counter sink shared across calls.
    """
    cfg = config or LaunchConfig()
    st = stats if stats is not None else KernelStats()
    st.pairs += 1
    area_p, area_q = p.area, q.area
    start = _start_box(p, q, method, cfg)
    if start is None:
        return PairAreas(0, area_p + area_q, area_p, area_q)

    nosep = method is Method.NOSEP
    dec_i, dec_u, leaves = _collect_plan(p, q, start, cfg, st, method)
    for box in leaves:
        leaf_i, leaf_u = _pixelize_box(p, q, box, st, want_union=nosep or
                                       method is Method.PIXEL_ONLY)
        dec_i += leaf_i
        dec_u += leaf_u
    if method is Method.PIXELBOX:
        return PairAreas(dec_i, area_p + area_q - dec_i, area_p, area_q)
    return PairAreas(dec_i, dec_u, area_p, area_q)


# Pairs processed per level-synchronous chunk (bounds peak memory).
_PAIR_CHUNK = 4096


def compute_pairs(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    method: Method = Method.PIXELBOX,
    config: LaunchConfig | None = None,
) -> BatchAreas:
    """Areas for a pair list, executed the way the device executes them.

    Phase 1 runs the sampling-box subdivision for *all* pairs level by
    level (pure array classification, no pixel work); phase 2 pixelizes
    the leaf boxes of all pairs in one stacked XOR-scan launch.  This is
    the execution shape of the GPU kernel and 10-50x faster than per-pair
    evaluation, with bit-identical results.
    """
    cfg = config or LaunchConfig()
    stats = KernelStats()
    n = len(pairs)
    inter = np.zeros(n, dtype=np.int64)
    uni = np.zeros(n, dtype=np.int64)
    a_p = np.zeros(n, dtype=np.int64)
    a_q = np.zeros(n, dtype=np.int64)

    for lo in range(0, n, _PAIR_CHUNK):
        hi = min(lo + _PAIR_CHUNK, n)
        _compute_chunk(
            pairs[lo:hi], method, cfg, stats,
            inter[lo:hi], uni[lo:hi], a_p[lo:hi], a_q[lo:hi],
        )

    if method is Method.PIXELBOX:
        uni = a_p + a_q - inter
    if np.any(uni < inter) or np.any(uni != a_p + a_q - inter):
        raise KernelError("inconsistent areas in batch result")
    return BatchAreas(inter, uni, a_p, a_q, stats)


def _compute_chunk(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    method: Method,
    cfg: LaunchConfig,
    stats: KernelStats,
    inter: np.ndarray,
    uni: np.ndarray,
    a_p: np.ndarray,
    a_q: np.ndarray,
) -> None:
    """Plan + stacked pixelization for one chunk of pairs (in place)."""
    m = len(pairs)
    stats.pairs += m
    table_p = EdgeTable.build([p for p, _ in pairs])
    table_q = EdgeTable.build([q for _, q in pairs])
    boxes = np.zeros((m, 4), dtype=np.int64)
    has_box = np.ones(m, dtype=bool)
    for i, (p, q) in enumerate(pairs):
        a_p[i] = p.area
        a_q[i] = q.area
        start = _start_box(p, q, method, cfg)
        if start is None:
            has_box[i] = False
        else:
            boxes[i] = start.as_tuple()

    owner = np.flatnonzero(has_box)
    dec_i, dec_u, leaves, leaf_owner = plan_levels(
        table_p, table_q, boxes[owner], owner, cfg, method, stats, m
    )
    inter += dec_i
    uni += dec_u
    stats.leaf_boxes += len(leaves)
    if len(leaves):
        sizes = (leaves[:, 2] - leaves[:, 0]) * (leaves[:, 3] - leaves[:, 1])
        stats.pixel_tests += 2 * int(sizes.sum())
        want_union = method is not Method.PIXELBOX
        leaf_i, leaf_u = stacked_leaf_counts(
            table_p, table_q, leaves, leaf_owner, want_union,
            leaf_mode=cfg.leaf_mode,
        )
        np.add.at(inter, leaf_owner, leaf_i)
        if want_union:
            np.add.at(uni, leaf_owner, leaf_u)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _start_box(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    method: Method,
    cfg: LaunchConfig,
) -> Box | None:
    """First sampling box ({m_i} in Algorithm 1)."""
    if not isinstance(method, Method):
        raise KernelError(f"unknown method {method!r}")
    if cfg.tight_mbr:
        if method is not Method.PIXELBOX:
            raise KernelError("tight_mbr is only valid for the PIXELBOX variant")
        return p.mbr.intersect(q.mbr)
    return p.mbr.cover(q.mbr)


def _pixelize_box(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    box: Box,
    stats: KernelStats,
    want_union: bool,
) -> tuple[int, int]:
    """Pixelization procedure: classify every pixel of ``box``.

    The boolean AND gives the intersection count, the boolean OR the union
    count (paper §3.1) — both from a single traversal of the box.
    """
    mask_p = parity_fill(p.vertical_edges, box)
    mask_q = parity_fill(q.vertical_edges, box)
    stats.pixel_tests += 2 * box.size
    stats.leaf_boxes += 1
    inter = int(np.count_nonzero(mask_p & mask_q))
    uni = int(np.count_nonzero(mask_p | mask_q)) if want_union else 0
    return inter, uni


def _collect_plan(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    start: Box,
    cfg: LaunchConfig,
    stats: KernelStats,
    method: Method,
) -> tuple[int, int, list[Box]]:
    """Sampling-box subdivision; returns decided areas plus leaf boxes.

    For ``PIXEL_ONLY`` the whole start box is a single leaf (no
    subdivision, Figure 4(a)).  For the sampling variants this runs
    Algorithm 1's stack loop, accumulating the contributions of decided
    boxes and emitting undecided boxes smaller than ``T`` as leaves.
    """
    if method is Method.PIXEL_ONLY:
        return 0, 0, [start]

    nosep = method is Method.NOSEP
    threshold = cfg.threshold
    nx, ny = cfg.grid
    dec_i = 0
    dec_u = 0
    leaves: list[Box] = []
    stack: list[Box] = [start]
    while stack:
        box = stack.pop()
        stats.pops += 1
        if box.size < threshold or box.size == 1:
            leaves.append(box)
            continue

        children = box.split(nx, ny)
        stats.partitions += 1
        stats.boxes_classified += len(children)
        arr = np.array([c.as_tuple() for c in children], dtype=np.int64)
        phi1 = box_positions_vectorized(arr, p)
        phi2 = box_positions_vectorized(arr, q)
        sizes = (arr[:, 2] - arr[:, 0]) * (arr[:, 3] - arr[:, 1])

        if nosep:
            inter_decided = (
                (phi1 == _OUT) | (phi2 == _OUT) | ((phi1 == _IN) & (phi2 == _IN))
            )
            union_decided = (
                (phi1 == _IN) | (phi2 == _IN) | ((phi1 == _OUT) & (phi2 == _OUT))
            )
            cont = ~(inter_decided & union_decided)
            dec_i += int(sizes[~cont & (phi1 == _IN) & (phi2 == _IN)].sum())
            dec_u += int(sizes[~cont & ((phi1 == _IN) | (phi2 == _IN))].sum())
        else:
            cont = (
                (phi1 != _OUT)
                & (phi2 != _OUT)
                & ((phi1 == _HOVER) | (phi2 == _HOVER))
            )
            dec_i += int(sizes[(phi1 == _IN) & (phi2 == _IN)].sum())

        stats.boxes_decided += int(np.count_nonzero(~cont))
        for idx in np.flatnonzero(cont):
            stack.append(children[int(idx)])
    return dec_i, dec_u, leaves
