"""NumPy PixelBox engine (all algorithm variants).

It follows Algorithm 1's structure — an explicit sampling-box stack, a
partition-classify step, pixelization below the threshold ``T`` — with the
thread-block-wide data parallelism mapped onto NumPy array operations:

* :func:`compute_pair` walks one pair with an explicit stack, the
  per-pair reference for every batched executor;
* :func:`compute_pairs` delegates to the shared chunk kernel
  (:class:`repro.pixelbox.kernel.ChunkKernel`) under the plain engine
  policy: every pair subdivides level-synchronously and all leaf boxes
  pixelize in one stacked XOR-scan launch, the way the GPU pixelizes
  thousands of thread-block leaves per kernel call.

Results are exact integer areas, cross-validated against
:mod:`repro.exact` in the test-suite (the paper validated against PostGIS
the same way, §3.4).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import parity_fill
from repro.pixelbox.common import (
    BoxPosition,
    KernelStats,
    LaunchConfig,
    Method,
    PairAreas,
)
from repro.pixelbox.kernel import (
    BatchAreas,
    ChunkKernel,
    engine_policy,
    start_box as _start_box,
)
from repro.pixelbox.sampling import box_positions_vectorized

__all__ = ["compute_pair", "compute_pairs", "BatchAreas"]

_IN = BoxPosition.INSIDE.value
_OUT = BoxPosition.OUTSIDE.value
_HOVER = BoxPosition.HOVER.value


def compute_pair(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    method: Method = Method.PIXELBOX,
    config: LaunchConfig | None = None,
    stats: KernelStats | None = None,
) -> PairAreas:
    """Areas of intersection and union of one polygon pair.

    Parameters
    ----------
    p, q:
        The polygon pair (order is irrelevant).
    method:
        Algorithm variant; see :class:`~repro.pixelbox.common.Method`.
    config:
        Launch parameters (block size, threshold ``T``); defaults match
        the paper's recommended settings.
    stats:
        Optional counter sink shared across calls.
    """
    cfg = config or LaunchConfig()
    st = stats if stats is not None else KernelStats()
    st.pairs += 1
    area_p, area_q = p.area, q.area
    start = _start_box(p, q, method, cfg)
    if start is None:
        return PairAreas(0, area_p + area_q, area_p, area_q)

    nosep = method is Method.NOSEP
    dec_i, dec_u, leaves = _collect_plan(p, q, start, cfg, st, method)
    for box in leaves:
        leaf_i, leaf_u = _pixelize_box(p, q, box, st, want_union=nosep or
                                       method is Method.PIXEL_ONLY)
        dec_i += leaf_i
        dec_u += leaf_u
    if method is Method.PIXELBOX:
        return PairAreas(dec_i, area_p + area_q - dec_i, area_p, area_q)
    return PairAreas(dec_i, dec_u, area_p, area_q)


def compute_pairs(
    pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
    method: Method = Method.PIXELBOX,
    config: LaunchConfig | None = None,
) -> BatchAreas:
    """Areas for a pair list, executed the way the device executes them.

    A thin adapter over the shared chunk kernel: phase 1 runs the
    sampling-box subdivision for *all* pairs level by level (pure array
    classification, no pixel work); phase 2 pixelizes the leaf boxes of
    all pairs in one stacked XOR-scan launch.  This is the execution
    shape of the GPU kernel and 10-50x faster than per-pair evaluation,
    with bit-identical results.
    """
    return ChunkKernel(engine_policy(method), config).compute(pairs)


# ----------------------------------------------------------------------
# Per-pair internals (the stack-walking reference path)
# ----------------------------------------------------------------------
def _pixelize_box(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    box: Box,
    stats: KernelStats,
    want_union: bool,
) -> tuple[int, int]:
    """Pixelization procedure: classify every pixel of ``box``.

    The boolean AND gives the intersection count, the boolean OR the union
    count (paper §3.1) — both from a single traversal of the box.
    """
    mask_p = parity_fill(p.vertical_edges, box)
    mask_q = parity_fill(q.vertical_edges, box)
    stats.pixel_tests += 2 * box.size
    stats.leaf_boxes += 1
    inter = int(np.count_nonzero(mask_p & mask_q))
    uni = int(np.count_nonzero(mask_p | mask_q)) if want_union else 0
    return inter, uni


def _collect_plan(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    start: Box,
    cfg: LaunchConfig,
    stats: KernelStats,
    method: Method,
) -> tuple[int, int, list[Box]]:
    """Sampling-box subdivision; returns decided areas plus leaf boxes.

    For ``PIXEL_ONLY`` the whole start box is a single leaf (no
    subdivision, Figure 4(a)).  For the sampling variants this runs
    Algorithm 1's stack loop, accumulating the contributions of decided
    boxes and emitting undecided boxes smaller than ``T`` as leaves.
    """
    if method is Method.PIXEL_ONLY:
        return 0, 0, [start]

    nosep = method is Method.NOSEP
    threshold = cfg.threshold
    nx, ny = cfg.grid
    dec_i = 0
    dec_u = 0
    leaves: list[Box] = []
    stack: list[Box] = [start]
    while stack:
        box = stack.pop()
        stats.pops += 1
        if box.size < threshold or box.size == 1:
            leaves.append(box)
            continue

        children = box.split(nx, ny)
        stats.partitions += 1
        stats.boxes_classified += len(children)
        arr = np.array([c.as_tuple() for c in children], dtype=np.int64)
        phi1 = box_positions_vectorized(arr, p)
        phi2 = box_positions_vectorized(arr, q)
        sizes = (arr[:, 2] - arr[:, 0]) * (arr[:, 3] - arr[:, 1])

        if nosep:
            inter_decided = (
                (phi1 == _OUT) | (phi2 == _OUT) | ((phi1 == _IN) & (phi2 == _IN))
            )
            union_decided = (
                (phi1 == _IN) | (phi2 == _IN) | ((phi1 == _OUT) & (phi2 == _OUT))
            )
            cont = ~(inter_decided & union_decided)
            dec_i += int(sizes[~cont & (phi1 == _IN) & (phi2 == _IN)].sum())
            dec_u += int(sizes[~cont & ((phi1 == _IN) | (phi2 == _IN))].sum())
        else:
            cont = (
                (phi1 != _OUT)
                & (phi2 != _OUT)
                & ((phi1 == _HOVER) | (phi2 == _HOVER))
            )
            dec_i += int(sizes[(phi1 == _IN) & (phi2 == _IN)].sum())

        stats.boxes_decided += int(np.count_nonzero(~cont))
        for idx in np.flatnonzero(cont):
            stack.append(children[int(idx)])
    return dec_i, dec_u, leaves
