"""The shared chunk kernel: one algorithm, explicit execution policies.

The paper's PixelBox kernel is a single algorithm (§3.1-§3.3) whose
executions differ only in *policy* — how pairs are grouped into chunks,
whether the union is measured directly or derived from
``|p u q| = |p| + |q| - |p n q|``, and whether small pairs skip the
sampling-box subdivision and pixelize straight over their MBR (the
production batching trick).  Before this module existed, the
plan+stacked-pixelize sequence was hand-assembled three times —
``engine.compute_pairs``, ``batch.compute_batch``, and the multiprocess
backend's worker shard — and the copies drifted: the batched path
under-counted ``pops``, ignored ``leaf_mode``, and the no-start-box
branch left a zero union for direct-union methods, which the final
consistency check would report as a :class:`~repro.errors.KernelError`
on perfectly valid disjoint input.  (That last branch was latent —
reachable only once a policy prefilters disjoint MBRs, which the
tight-MBR policy does for PIXELBOX and future backends may do for any
method — the kernel closes it for every policy rather than copying it a
fourth time.)

Now the sequence lives here exactly once:

* :class:`ExecutionPolicy` — declarative knobs (algorithm variant, union
  mode, small-pair skip-subdivision dimension, chunk size);
* :class:`ChunkKernel` — edge-table build, start-box routing,
  level-synchronous planning, stacked leaf pixelization, and per-pair
  scatter, parameterized by a policy;
* the three execution paths (and any future CUDA or distributed-shard
  backend) are thin adapters that pick a policy and call
  :meth:`ChunkKernel.compute` or :meth:`ChunkKernel.run_shard`.

This module is the **only** caller of
:func:`repro.pixelbox.vectorized.plan_levels` and
:func:`repro.pixelbox.vectorized.stacked_leaf_counts`
(``tools/check_kernel_seam.py`` enforces the seam), so an execution
policy can never change results — only wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.obs.trace import current_tracer
from repro.pixelbox.common import (
    KernelStats,
    LaunchConfig,
    Method,
    PairAreas,
)
from repro.pixelbox.vectorized import (
    EdgeTable,
    plan_levels,
    stacked_leaf_counts,
)

__all__ = [
    "BatchAreas",
    "ChunkKernel",
    "ExecutionPolicy",
    "DEFAULT_CHUNK_PAIRS",
    "DEFAULT_SKIP_SUBDIVISION_DIM",
    "start_box",
    "engine_policy",
    "batch_policy",
    "shard_policy",
    "compiled_policy",
]

# Pairs processed per level-synchronous chunk (bounds peak memory of the
# stacked planning and pixelization tensors); shared by every path.
DEFAULT_CHUNK_PAIRS = 4096

# Default skip-subdivision bound of the production batch policy: pairs
# whose MBR fits a 64x64 thread block pixelize directly.
DEFAULT_SKIP_SUBDIVISION_DIM = 64


@dataclass(slots=True)
class BatchAreas:
    """Exact areas for a batch of polygon pairs (parallel arrays)."""

    intersection: np.ndarray
    union: np.ndarray
    area_p: np.ndarray
    area_q: np.ndarray
    stats: KernelStats

    def __len__(self) -> int:
        return len(self.intersection)

    def ratios(self) -> np.ndarray:
        """Per-pair Jaccard ratios; 0 for pairs with an empty union."""
        out = np.zeros(len(self.intersection), dtype=np.float64)
        nz = self.union > 0
        out[nz] = self.intersection[nz] / self.union[nz]
        return out

    def pair(self, i: int) -> PairAreas:
        """The ``i``-th result as a :class:`PairAreas` value."""
        return PairAreas(
            int(self.intersection[i]),
            int(self.union[i]),
            int(self.area_p[i]),
            int(self.area_q[i]),
        )


@dataclass(frozen=True, slots=True)
class ExecutionPolicy:
    """How the chunk kernel executes — never what it computes.

    Attributes
    ----------
    method:
        Algorithm variant (paper §5.2): ``PIXEL_ONLY``, ``NOSEP``, or
        ``PIXELBOX``.
    union_mode:
        ``"indirect"`` derives unions from
        ``|p u q| = |p| + |q| - |p n q|`` (the PixelBox optimization,
        §3.2); ``"direct"`` measures them alongside the intersection
        (what NoSep and PixelOnly do on the device); ``"auto"`` (default)
        picks indirect for ``PIXELBOX`` and direct otherwise.  Explicit
        ``"direct"`` is rejected for ``PIXELBOX`` — that variant never
        measures union by boxes, so there is nothing to report directly.
    skip_subdivision_max_dim:
        When set, pairs whose start-box width *and* height are at most
        this bound skip the sampling-box subdivision and pixelize
        directly over the start box — the production batch policy
        (``BATCH_MAX_DIM``).  ``None`` (default) always subdivides.
    chunk_pairs:
        Pairs per level-synchronous chunk (bounds peak memory).
    substrate:
        What executes the chunk sequence: ``"numpy"`` (default) runs the
        level-synchronous array programs in this module; ``"numba"``
        dispatches to the compiled per-pair kernel in
        :mod:`repro.pixelbox.numba_kernel` (bit-for-bit identical plans
        and counters, machine-code speed).  The compiled substrate
        implements the PIXELBOX indirect-union sequence only.
    """

    method: Method = Method.PIXELBOX
    union_mode: str = "auto"
    skip_subdivision_max_dim: int | None = None
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS
    substrate: str = "numpy"

    def __post_init__(self) -> None:
        if not isinstance(self.method, Method):
            raise KernelError(f"unknown method {self.method!r}")
        if self.union_mode not in ("auto", "direct", "indirect"):
            raise KernelError(
                "union_mode must be 'auto', 'direct', or 'indirect', "
                f"got {self.union_mode!r}"
            )
        if self.union_mode == "direct" and self.method is Method.PIXELBOX:
            raise KernelError(
                "the PIXELBOX variant never measures union directly; "
                "use union_mode='indirect' (or 'auto')"
            )
        if (
            self.skip_subdivision_max_dim is not None
            and self.skip_subdivision_max_dim < 1
        ):
            raise KernelError(
                "skip_subdivision_max_dim must be >= 1 or None, got "
                f"{self.skip_subdivision_max_dim}"
            )
        if self.chunk_pairs < 1:
            raise KernelError(
                f"chunk_pairs must be >= 1, got {self.chunk_pairs}"
            )
        if self.substrate not in ("numpy", "numba"):
            raise KernelError(
                f"substrate must be 'numpy' or 'numba', got "
                f"{self.substrate!r}"
            )
        if self.substrate == "numba" and self.method is not Method.PIXELBOX:
            raise KernelError(
                "the compiled substrate implements the PIXELBOX "
                "indirect-union sequence only; use substrate='numpy' for "
                f"{self.method.name}"
            )

    @property
    def indirect_union(self) -> bool:
        """Whether unions are derived from the inclusion-exclusion identity."""
        if self.union_mode == "auto":
            return self.method is Method.PIXELBOX
        return self.union_mode == "indirect"

    @property
    def measures_union(self) -> bool:
        """Whether planning/pixelization must track union counts at all."""
        return not self.indirect_union


def engine_policy(method: Method = Method.PIXELBOX) -> ExecutionPolicy:
    """The per-variant engine policy: always subdivide, chunked."""
    return ExecutionPolicy(method=method)


def batch_policy(
    max_dim: int = DEFAULT_SKIP_SUBDIVISION_DIM,
) -> ExecutionPolicy:
    """The production batched-device policy (small pairs skip subdivision)."""
    return ExecutionPolicy(
        method=Method.PIXELBOX, skip_subdivision_max_dim=max_dim
    )


def shard_policy(substrate: str = "numpy") -> ExecutionPolicy:
    """The multiprocess shard policy (identical plan to the engine)."""
    return ExecutionPolicy(method=Method.PIXELBOX, substrate=substrate)


def compiled_policy(
    max_dim: int = DEFAULT_SKIP_SUBDIVISION_DIM,
) -> ExecutionPolicy:
    """The compiled-substrate policy: the batch plan on machine code."""
    return ExecutionPolicy(
        method=Method.PIXELBOX,
        skip_subdivision_max_dim=max_dim,
        substrate="numba",
    )


def start_box(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    method: Method,
    cfg: LaunchConfig,
) -> Box | None:
    """First sampling box ({m_i} in Algorithm 1), or ``None``.

    ``None`` means the pair provably has an empty intersection before any
    kernel work — today that is the tight-MBR policy meeting disjoint
    MBRs.  Every execution path must then report
    ``union = |p| + |q|`` for direct-union methods instead of leaving the
    slot zero (the latent batched disjoint-pair crash closed by
    :meth:`ChunkKernel.finalize_union`).
    """
    if not isinstance(method, Method):
        raise KernelError(f"unknown method {method!r}")
    if cfg.tight_mbr:
        if method is not Method.PIXELBOX:
            raise KernelError("tight_mbr is only valid for the PIXELBOX variant")
        return p.mbr.intersect(q.mbr)
    return p.mbr.cover(q.mbr)


class ChunkKernel:
    """The plan + stacked-pixelize sequence, parameterized by a policy.

    One instance is cheap (two dataclass references); executors construct
    it per call with their policy and launch config.  The kernel exposes
    three altitudes:

    * :meth:`compute` — the full pipeline for a pair list (routing,
      chunking, edge tables, finalization): what in-process executors
      call.
    * :meth:`run_shard` — the chunk loop over a contiguous index range of
      *prebuilt* global edge tables: what a worker process (or a future
      remote shard) calls after attaching shared state.
    * :meth:`run_chunk` — one chunk of the sequence: the only code in the
      repository invoking ``plan_levels`` / ``stacked_leaf_counts``.

    Work counters are charged identically on every altitude, so service
    metrics and the Figure 2/9 experiments see the same numbers for the
    same input and policy regardless of executor.
    """

    def __init__(
        self, policy: ExecutionPolicy, config: LaunchConfig | None = None
    ):
        self.policy = policy
        self.cfg = config or LaunchConfig()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_pairs(
        self, pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Areas and start boxes for every pair.

        Returns ``(a_p, a_q, boxes, has_box)``; ``boxes[i]`` is only
        meaningful where ``has_box[i]``.
        """
        n = len(pairs)
        a_p = np.zeros(n, dtype=np.int64)
        a_q = np.zeros(n, dtype=np.int64)
        boxes = np.zeros((n, 4), dtype=np.int64)
        has_box = np.zeros(n, dtype=bool)
        for i, (p, q) in enumerate(pairs):
            a_p[i] = p.area
            a_q[i] = q.area
            start = start_box(p, q, self.policy.method, self.cfg)
            if start is not None:
                has_box[i] = True
                boxes[i] = start.as_tuple()
        return a_p, a_q, boxes, has_box

    # ------------------------------------------------------------------
    # The shared sequence
    # ------------------------------------------------------------------
    def run_chunk(
        self,
        table_p: EdgeTable,
        table_q: EdgeTable,
        boxes: np.ndarray,
        has_box: np.ndarray,
        row_base: int,
        stats: KernelStats,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intersection (and direct-union) areas for one chunk of pairs.

        ``boxes``/``has_box`` hold the chunk's ``m`` pairs; pair ``i`` of
        the chunk owns row ``row_base + i`` of the edge tables (0 when
        the tables were built for this chunk alone, the global pair index
        when a shard walks prebuilt global tables).

        Returns ``(inter, uni)`` of length ``m``; ``uni`` is all-zero
        under an indirect-union policy.
        """
        policy = self.policy
        cfg = self.cfg
        if policy.substrate == "numba":
            from repro.pixelbox import numba_kernel

            return numba_kernel.run_chunk_compiled(
                table_p, table_q, boxes, has_box, row_base, stats,
                policy, cfg,
            )
        m = len(boxes)
        stats.pairs += m
        inter = np.zeros(m, dtype=np.int64)
        uni = np.zeros(m, dtype=np.int64)
        rows = row_base + np.arange(m, dtype=np.int64)

        # Start-box routing: every routable pair goes to the planner,
        # unless the policy pixelizes small pairs directly.
        if policy.skip_subdivision_max_dim is not None:
            dim = policy.skip_subdivision_max_dim
            widths = boxes[:, 2] - boxes[:, 0]
            heights = boxes[:, 3] - boxes[:, 1]
            small = has_box & (widths <= dim) & (heights <= dim)
            large = has_box & ~small
            stats.batched_pairs += int(np.count_nonzero(small))
            stats.fallback_pairs += int(np.count_nonzero(large))
        else:
            small = np.zeros(m, dtype=bool)
            large = has_box

        # A skip-routed start box is still one sampling box taken off the
        # stack (Algorithm 1 pops it, decides nothing, pixelizes); charge
        # it like the planner charges its frontier so `pops` agrees
        # across policies whenever the plans agree.
        stats.pops += int(np.count_nonzero(small))

        # Level-synchronous planning for the subdividing pairs.
        large_rows = rows[large]
        if len(large_rows):
            dec_i, dec_u, plan_leaves, plan_rows = plan_levels(
                table_p,
                table_q,
                boxes[large],
                large_rows,
                cfg,
                policy.method,
                stats,
                row_base + m,
            )
            inter += dec_i[row_base:]
            if policy.measures_union:
                uni += dec_u[row_base:]
        else:
            plan_leaves = np.zeros((0, 4), dtype=np.int64)
            plan_rows = np.zeros(0, dtype=np.int64)

        # Stacked pixelization of every leaf: skip-routed start boxes and
        # the planner's undecided sub-threshold boxes, one launch.
        leaves = np.concatenate([boxes[small], plan_leaves], axis=0)
        leaf_rows = np.concatenate([rows[small], plan_rows])
        stats.leaf_boxes += len(leaves)
        if len(leaves):
            sizes = (leaves[:, 2] - leaves[:, 0]) * (
                leaves[:, 3] - leaves[:, 1]
            )
            stats.pixel_tests += 2 * int(sizes.sum())
            leaf_i, leaf_u = stacked_leaf_counts(
                table_p,
                table_q,
                leaves,
                leaf_rows,
                want_union=policy.measures_union,
                leaf_mode=cfg.leaf_mode,
            )
            np.add.at(inter, leaf_rows - row_base, leaf_i)
            if policy.measures_union:
                np.add.at(uni, leaf_rows - row_base, leaf_u)
        return inter, uni

    def run_shard(
        self,
        table_p: EdgeTable,
        table_q: EdgeTable,
        boxes: np.ndarray,
        has_box: np.ndarray,
        lo: int,
        hi: int,
        stats: KernelStats,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chunked kernel over global pair indices ``[lo, hi)``.

        The edge tables cover *all* pairs (one serialization, many
        shards); the plan and the stacked pixelization never mix pairs,
        so sharding at any boundary preserves bit-for-bit results.
        Returns ``(inter, uni)`` slices of length ``hi - lo``.
        """
        # Tracing guard: one ContextVar read.  When no tracer is active
        # (the default) the shard runs the plain path — zero allocations
        # added to the hot loop (the overhead-guard test pins this).
        tracer = current_tracer()
        if tracer is not None:
            with tracer.span("kernel.run_shard", lo=lo, hi=hi):
                return self._run_shard(
                    table_p, table_q, boxes, has_box, lo, hi, stats
                )
        return self._run_shard(table_p, table_q, boxes, has_box, lo, hi, stats)

    def _run_shard(
        self,
        table_p: EdgeTable,
        table_q: EdgeTable,
        boxes: np.ndarray,
        has_box: np.ndarray,
        lo: int,
        hi: int,
        stats: KernelStats,
    ) -> tuple[np.ndarray, np.ndarray]:
        inter = np.zeros(hi - lo, dtype=np.int64)
        uni = np.zeros(hi - lo, dtype=np.int64)
        for c_lo in range(lo, hi, self.policy.chunk_pairs):
            c_hi = min(c_lo + self.policy.chunk_pairs, hi)
            c_inter, c_uni = self.run_chunk(
                table_p,
                table_q,
                boxes[c_lo:c_hi],
                has_box[c_lo:c_hi],
                c_lo,
                stats,
            )
            inter[c_lo - lo : c_hi - lo] = c_inter
            uni[c_lo - lo : c_hi - lo] = c_uni
        return inter, uni

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def compute(
        self,
        pairs: list[tuple[RectilinearPolygon, RectilinearPolygon]],
        stats: KernelStats | None = None,
    ) -> BatchAreas:
        """Exact areas for a pair list under this kernel's policy."""
        st = stats if stats is not None else KernelStats()
        n = len(pairs)
        a_p, a_q, boxes, has_box = self.route_pairs(pairs)
        inter = np.zeros(n, dtype=np.int64)
        uni = np.zeros(n, dtype=np.int64)
        for lo in range(0, n, self.policy.chunk_pairs):
            hi = min(lo + self.policy.chunk_pairs, n)
            chunk = pairs[lo:hi]
            table_p = EdgeTable.build([p for p, _ in chunk])
            table_q = EdgeTable.build([q for _, q in chunk])
            inter[lo:hi], uni[lo:hi] = self.run_chunk(
                table_p, table_q, boxes[lo:hi], has_box[lo:hi], 0, st
            )
        uni = self.finalize_union(inter, uni, a_p, a_q, has_box)
        return BatchAreas(inter, uni, a_p, a_q, st)

    def finalize_union(
        self,
        inter: np.ndarray,
        uni: np.ndarray | None,
        a_p: np.ndarray,
        a_q: np.ndarray,
        has_box: np.ndarray,
    ) -> np.ndarray:
        """Union vector under the policy's union mode, consistency-checked.

        Direct-union methods only measure what the kernel visited: a pair
        routed to no start box (disjoint MBRs under a pre-filtering
        policy) was never planned or pixelized, so its union is completed
        here as ``|p| + |q|`` — exactly what the per-pair engine returns
        for a ``None`` start box.  Leaving those slots zero was the
        latent drift in the hand-copied paths: a direct-union method
        meeting a prefiltered pair would have tripped the consistency
        check below as a ``KernelError`` on valid disjoint input.

        ``uni`` may be ``None`` under an indirect-union policy (nothing
        was measured, so there is nothing to pass).
        """
        if self.policy.indirect_union:
            uni = a_p + a_q - inter
        else:
            if uni is None:
                raise KernelError(
                    "direct-union policy requires measured union counts"
                )
            uni = uni.copy()
            no_box = ~has_box
            uni[no_box] = a_p[no_box] + a_q[no_box]
        if np.any(uni < inter) or np.any(uni != a_p + a_q - inter):
            raise KernelError("inconsistent areas in batch result")
        return uni
