"""Compiled chunk-kernel substrate (Numba ``@njit(parallel=True)``).

The NumPy substrate in :mod:`repro.pixelbox.vectorized` executes the
PixelBox plan level-synchronously — wide array programs, one level of
every pair's subdivision tree at a time.  This module executes the *same
tree* per pair as a compiled depth-first walk: one ``prange`` iteration
per pair, an explicit sampling-box stack, scalar Lemma-1 classification
against the pair's CSR edge spans, and the XOR-scan leaf pixelization as
tight loops.  Results and work counters are bit-for-bit identical:

* the subdivision tree is determined solely by the proportional cuts
  (``x0 + i * width // nx``), the leaf test
  (``size < threshold or size == 1``), and the Lemma-1 continuation rule
  — all reproduced exactly, so both substrates visit the same boxes;
* every counter and every area is an order-independent int64 sum over
  those boxes, so traversal order (DFS here, BFS there) cannot change
  the totals.

The compiled substrate implements the PIXELBOX indirect-union sequence
only (the production and shard policies); ``ExecutionPolicy`` rejects
``substrate="numba"`` for other variants.  ``leaf_mode`` is ignored —
leaves always use the XOR-scan fill, which counts the same pixels as the
per-pixel ray cast because both are exact.

When numba is not installed the module still imports: ``njit`` degrades
to an identity decorator and ``prange`` to ``range``, so the *algorithm*
remains testable pure-Python (``allow_fallback=True``) while
:func:`require_numba` keeps the production entry points loud about the
missing ``repro[numba]`` extra.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BackendError
from repro.pixelbox.common import KernelStats, LaunchConfig

__all__ = [
    "NUMBA_AVAILABLE",
    "require_numba",
    "thread_count",
    "run_chunk_compiled",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pure-Python fallback keeps the algorithm importable
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # noqa: ARG001 - decorator-compatible stub
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco

    prange = range


def require_numba() -> None:
    """Raise :class:`~repro.errors.BackendError` when numba is missing."""
    if not NUMBA_AVAILABLE:
        raise BackendError(
            "the compiled substrate requires numba, which is not "
            "installed; install the optional extra: "
            "pip install 'repro[numba]'"
        )


def thread_count() -> int:
    """Worker threads the compiled kernel parallelizes over (1 without)."""
    if not NUMBA_AVAILABLE:
        return 1
    import numba

    return int(numba.get_num_threads())


# Counter-matrix column layout of ``_pixelbox_chunk`` (one row per pair);
# summed into the matching ``KernelStats`` fields by the wrapper.
_C_POPS = 0
_C_PARTITIONS = 1
_C_CLASSIFIED = 2
_C_DECIDED = 3
_C_LEAVES = 4
_C_PIXEL_TESTS = 5
_C_BATCHED = 6
_C_FALLBACK = 7


@njit(cache=True)
def _classify(xs, lo, hi, ys, xlo, xhi, e0, e1, x0, y0, x1, y1):
    """Lemma-1 position (0=OUTSIDE, 1=HOVER, 2=INSIDE) of one box.

    Identical semantics to ``vectorized.classify_boxes``: hover when any
    vertical edge crosses the open interior (``x0 < xe < x1`` with a y
    overlap) or any horizontal edge does (transposed); otherwise the
    center's ray-cast parity decides inside vs outside.  Hover takes
    precedence over inside, as in the array version's scatter order.
    """
    for e in range(e0, e1):
        if x0 < xs[e] < x1 and lo[e] < y1 and hi[e] > y0:
            return 1
    for e in range(e0, e1):
        if y0 < ys[e] < y1 and xlo[e] < x1 and xhi[e] > x0:
            return 1
    cx = x0 + ((x1 - x0) >> 1)
    cy = y0 + ((y1 - y0) >> 1)
    parity = False
    for e in range(e0, e1):
        if xs[e] <= cx and lo[e] <= cy < hi[e]:
            parity = not parity
    if parity:
        return 2
    return 0


@njit(cache=True)
def _leaf_mask(xs, lo, hi, e0, e1, x0, y0, w, h):
    """One polygon's pixel parity mask over a leaf box (XOR-scan fill).

    Mirrors ``vectorized._bucket_counts`` exactly: each vertical edge
    toggles two cells of an ``(h+1, w+1)`` grid (column clamped left to
    0, dropped at ``>= w``; span clamped to ``[0, h]``), one XOR scan
    along y expands the spans, one along x resolves the ray-cast parity.
    """
    grid = np.zeros((h + 1, w + 1), dtype=np.uint8)
    for e in range(e0, e1):
        c = xs[e] - x0
        if c < 0:
            c = 0
        if c >= w:
            continue
        lo_r = lo[e] - y0
        if lo_r < 0:
            lo_r = 0
        if lo_r > h:
            lo_r = h
        hi_r = hi[e] - y0
        if hi_r < 0:
            hi_r = 0
        if hi_r > h:
            hi_r = h
        if lo_r >= hi_r:
            continue
        grid[lo_r, c] ^= 1
        grid[hi_r, c] ^= 1
    for yy in range(1, h + 1):
        for xx in range(w + 1):
            grid[yy, xx] ^= grid[yy - 1, xx]
    for yy in range(h + 1):
        for xx in range(1, w + 1):
            grid[yy, xx] ^= grid[yy, xx - 1]
    return grid


@njit(cache=True)
def _leaf_inter(
    p_xs, p_lo, p_hi, pe0, pe1, q_xs, q_lo, q_hi, qe0, qe1, x0, y0, x1, y1
):
    """Exact ``|p AND q|`` pixel count over one leaf box."""
    w = x1 - x0
    h = y1 - y0
    gp = _leaf_mask(p_xs, p_lo, p_hi, pe0, pe1, x0, y0, w, h)
    gq = _leaf_mask(q_xs, q_lo, q_hi, qe0, qe1, x0, y0, w, h)
    total = 0
    for yy in range(h):
        for xx in range(w):
            if gp[yy, xx] & gq[yy, xx]:
                total += 1
    return total


@njit(parallel=True, cache=True)
def _pixelbox_chunk(
    p_xs, p_lo, p_hi, p_ys, p_xlo, p_xhi, p_off,
    q_xs, q_lo, q_hi, q_ys, q_xlo, q_xhi, q_off,
    boxes, has_box, row_base, threshold, nx, ny, skip_dim,
):
    """PIXELBOX intersection areas + work counters for one chunk.

    One ``prange`` iteration per pair; each iteration owns its stack and
    its row of the counter matrix, so the parallel loop has no shared
    mutable state.  ``skip_dim < 0`` means "always subdivide" (the
    ``None`` policy); otherwise start boxes fitting ``skip_dim`` pixelize
    directly and the rest are charged as fallback pairs.
    """
    m = boxes.shape[0]
    inter = np.zeros(m, dtype=np.int64)
    counters = np.zeros((m, 8), dtype=np.int64)
    for i in prange(m):
        if not has_box[i]:
            continue
        row = row_base + i
        pe0 = p_off[row]
        pe1 = p_off[row + 1]
        qe0 = q_off[row]
        qe1 = q_off[row + 1]
        x0 = boxes[i, 0]
        y0 = boxes[i, 1]
        x1 = boxes[i, 2]
        y1 = boxes[i, 3]
        if skip_dim >= 0:
            if x1 - x0 <= skip_dim and y1 - y0 <= skip_dim:
                # Skip-routed: the start box is one popped sampling box
                # pixelized whole (same charges as ChunkKernel.run_chunk).
                counters[i, _C_BATCHED] += 1
                counters[i, _C_POPS] += 1
                counters[i, _C_LEAVES] += 1
                counters[i, _C_PIXEL_TESTS] += 2 * (x1 - x0) * (y1 - y0)
                inter[i] = _leaf_inter(
                    p_xs, p_lo, p_hi, pe0, pe1,
                    q_xs, q_lo, q_hi, qe0, qe1,
                    x0, y0, x1, y1,
                )
                continue
            counters[i, _C_FALLBACK] += 1
        # Depth-first subdivision; the stack starts roomy enough for the
        # worst realistic depth and doubles if a pathological tree needs
        # more.
        cap = 128 * nx * ny + 8
        stack = np.empty((cap, 4), dtype=np.int64)
        stack[0, 0] = x0
        stack[0, 1] = y0
        stack[0, 2] = x1
        stack[0, 3] = y1
        top = 1
        acc = 0
        while top > 0:
            top -= 1
            bx0 = stack[top, 0]
            by0 = stack[top, 1]
            bx1 = stack[top, 2]
            by1 = stack[top, 3]
            counters[i, _C_POPS] += 1
            size = (bx1 - bx0) * (by1 - by0)
            if size < threshold or size == 1:
                counters[i, _C_LEAVES] += 1
                counters[i, _C_PIXEL_TESTS] += 2 * size
                acc += _leaf_inter(
                    p_xs, p_lo, p_hi, pe0, pe1,
                    q_xs, q_lo, q_hi, qe0, qe1,
                    bx0, by0, bx1, by1,
                )
                continue
            counters[i, _C_PARTITIONS] += 1
            bw = bx1 - bx0
            bh = by1 - by0
            for iy in range(ny):
                cy0 = by0 + iy * bh // ny
                cy1 = by0 + (iy + 1) * bh // ny
                if cy1 <= cy0:
                    continue
                for ix in range(nx):
                    cx0 = bx0 + ix * bw // nx
                    cx1 = bx0 + (ix + 1) * bw // nx
                    if cx1 <= cx0:
                        continue
                    counters[i, _C_CLASSIFIED] += 1
                    phi1 = _classify(
                        p_xs, p_lo, p_hi, p_ys, p_xlo, p_xhi,
                        pe0, pe1, cx0, cy0, cx1, cy1,
                    )
                    phi2 = _classify(
                        q_xs, q_lo, q_hi, q_ys, q_xlo, q_xhi,
                        qe0, qe1, cx0, cy0, cx1, cy1,
                    )
                    if phi1 != 0 and phi2 != 0 and (phi1 == 1 or phi2 == 1):
                        if top == stack.shape[0]:
                            grown = np.empty(
                                (stack.shape[0] * 2, 4), dtype=np.int64
                            )
                            grown[: stack.shape[0]] = stack
                            stack = grown
                        stack[top, 0] = cx0
                        stack[top, 1] = cy0
                        stack[top, 2] = cx1
                        stack[top, 3] = cy1
                        top += 1
                    else:
                        counters[i, _C_DECIDED] += 1
                        if phi1 == 2 and phi2 == 2:
                            acc += (cx1 - cx0) * (cy1 - cy0)
        inter[i] = acc
    return inter, counters


def run_chunk_compiled(
    table_p,
    table_q,
    boxes: np.ndarray,
    has_box: np.ndarray,
    row_base: int,
    stats: KernelStats,
    policy,
    cfg: LaunchConfig,
    *,
    allow_fallback: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Compiled equivalent of ``ChunkKernel.run_chunk`` (PIXELBOX only).

    Same contract: ``boxes``/``has_box`` hold the chunk's ``m`` pairs,
    pair ``i`` owns row ``row_base + i`` of the edge tables, counters are
    charged into ``stats`` exactly as the NumPy substrate charges them.
    Returns ``(inter, uni)`` with ``uni`` all-zero (indirect union).

    ``allow_fallback=True`` lets the pure-Python stub run when numba is
    absent — for algorithm-parity tests only; production dispatch goes
    through :func:`require_numba`.
    """
    if not allow_fallback:
        require_numba()
    m = len(boxes)
    stats.pairs += m
    uni = np.zeros(m, dtype=np.int64)
    if m == 0:
        return np.zeros(0, dtype=np.int64), uni
    skip = policy.skip_subdivision_max_dim
    nx, ny = cfg.grid
    inter, counters = _pixelbox_chunk(
        table_p.xs, table_p.lo, table_p.hi,
        table_p.ys, table_p.xlo, table_p.xhi,
        table_p.offsets,
        table_q.xs, table_q.lo, table_q.hi,
        table_q.ys, table_q.xlo, table_q.xhi,
        table_q.offsets,
        np.ascontiguousarray(boxes),
        np.ascontiguousarray(has_box),
        int(row_base),
        int(cfg.threshold),
        int(nx),
        int(ny),
        -1 if skip is None else int(skip),
    )
    totals = counters.sum(axis=0)
    stats.pops += int(totals[_C_POPS])
    stats.partitions += int(totals[_C_PARTITIONS])
    stats.boxes_classified += int(totals[_C_CLASSIFIED])
    stats.boxes_decided += int(totals[_C_DECIDED])
    stats.leaf_boxes += int(totals[_C_LEAVES])
    stats.pixel_tests += int(totals[_C_PIXEL_TESTS])
    stats.batched_pairs += int(totals[_C_BATCHED])
    stats.fallback_pairs += int(totals[_C_FALLBACK])
    return inter, uni
