"""Spatial predicates built on PixelBox (paper §3.4's generalization).

The paper sketches how the PixelBox machinery accelerates other
compute-intensive spatial operators:

* ``ST_Contains(p, q)`` — "computing the area of intersection and testing
  whether it equals the area of the object being contained";
* ``ST_Equals`` — both containments, i.e. the intersection equals both
  areas;
* ``ST_Touches(p, q)`` — no edge-to-edge crossing, no vertex of one
  polygon strictly inside the other, and at least one point of contact.

These are drop-in alternatives to the exact-overlay predicates in
:mod:`repro.exact.predicates`; the test-suite checks they agree on random
workloads.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import LaunchConfig, Method
from repro.pixelbox.engine import compute_pair

__all__ = [
    "contains_pixelbox",
    "equals_pixelbox",
    "intersects_pixelbox",
    "touches_pixelbox",
]


def _intersection_area(
    p: RectilinearPolygon, q: RectilinearPolygon, config: LaunchConfig | None
) -> int:
    cfg = config or LaunchConfig(tight_mbr=True)
    return compute_pair(p, q, Method.PIXELBOX, cfg).intersection


def contains_pixelbox(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    config: LaunchConfig | None = None,
) -> bool:
    """``ST_Contains`` via the §3.4 area identity."""
    if not p.mbr.contains_box(q.mbr):
        return False
    return _intersection_area(p, q, config) == q.area


def equals_pixelbox(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    config: LaunchConfig | None = None,
) -> bool:
    """``ST_Equals``: the intersection covers both polygons."""
    if p.area != q.area or p.mbr != q.mbr:
        return False
    return _intersection_area(p, q, config) == p.area


def intersects_pixelbox(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    config: LaunchConfig | None = None,
) -> bool:
    """``ST_Intersects`` (closed-set semantics) via areas + edge tests."""
    if not p.mbr.intersects_or_touches(q.mbr):
        return False
    if _intersection_area(p, q, config) > 0:
        return True
    return _boundary_contact(p, q)


def touches_pixelbox(
    p: RectilinearPolygon,
    q: RectilinearPolygon,
    config: LaunchConfig | None = None,
) -> bool:
    """``ST_Touches``: boundaries meet but interiors do not.

    Follows the paper's recipe: interiors disjoint (zero area of
    intersection) plus at least one edge/vertex contact.
    """
    if not p.mbr.intersects_or_touches(q.mbr):
        return False
    if _intersection_area(p, q, config) > 0:
        return False
    return _boundary_contact(p, q)


def _boundary_contact(p: RectilinearPolygon, q: RectilinearPolygon) -> bool:
    """Closed-segment contact between the two boundaries (vectorized)."""
    return _family_contact(p.vertical_edges, q.horizontal_edges) or \
        _family_contact(q.vertical_edges, p.horizontal_edges) or \
        _collinear_contact(p.vertical_edges, q.vertical_edges) or \
        _collinear_contact(p.horizontal_edges, q.horizontal_edges)


def _family_contact(vertical: np.ndarray, horizontal: np.ndarray) -> bool:
    if len(vertical) == 0 or len(horizontal) == 0:
        return False
    vx = vertical[:, 0][:, None]
    v_lo = vertical[:, 1][:, None]
    v_hi = vertical[:, 2][:, None]
    hy = horizontal[:, 0][None, :]
    h_lo = horizontal[:, 1][None, :]
    h_hi = horizontal[:, 2][None, :]
    hit = (h_lo <= vx) & (vx <= h_hi) & (v_lo <= hy) & (hy <= v_hi)
    return bool(hit.any())


def _collinear_contact(a: np.ndarray, b: np.ndarray) -> bool:
    if len(a) == 0 or len(b) == 0:
        return False
    same = a[:, 0][:, None] == b[:, 0][None, :]
    overlap = (a[:, 1][:, None] <= b[:, 2][None, :]) & (
        b[:, 1][None, :] <= a[:, 2][:, None]
    )
    return bool((same & overlap).any())
