"""Line-by-line reference transcription of the paper's Algorithm 1.

This module exists for *fidelity*, not speed: it simulates the
thread-block execution of the PixelBox GPU kernel — the shared sampling-box
stack, the per-thread partial accumulators, the "mark the old stack top as
no-probe instead of overwriting" trick (lines 37-38), and the strided
pixelization loop — with plain Python loops standing in for threads.

The test-suite uses it two ways: to check that the optimized engines
compute identical areas, and to check that the stack discipline of
Algorithm 1 itself is sound (every pushed box is eventually popped, no
double counting).

Note: line 31-32 of the pseudo-code reads ``BoxPosition(box, ...)``; the
positions must of course be evaluated on the freshly created *sub*-box
(``subbox``), which is what both the paper's prose and this transcription
do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import (
    BoxPosition,
    LaunchConfig,
    PairAreas,
)
from repro.pixelbox.sampling import box_contribute, box_continue, box_position

__all__ = ["ReferenceKernel", "StackTrace"]


@dataclass(slots=True)
class StackTrace:
    """Observability hooks for the stack discipline (used by tests)."""

    max_depth: int = 0
    pushes: int = 0
    pops: int = 0
    skipped_markers: int = 0
    events: list[str] = field(default_factory=list)


class ReferenceKernel:
    """Sequential simulation of one PixelBox thread block.

    Parameters
    ----------
    config:
        Launch configuration; ``block_size`` plays the role of
        ``blockDim.x``.
    record_events:
        When ``True`` the :class:`StackTrace` keeps a textual event log
        (push/pop/marker) for debugging.
    """

    def __init__(self, config: LaunchConfig | None = None, record_events: bool = False):
        self._cfg = config or LaunchConfig()
        self._record = record_events

    def run_pair(
        self, p: RectilinearPolygon, q: RectilinearPolygon
    ) -> tuple[PairAreas, StackTrace]:
        """Execute Algorithm 1 for a single polygon pair."""
        cfg = self._cfg
        n = cfg.block_size
        trace = StackTrace()

        # Lines 11-12: per-thread partial polygon areas.  PolyArea assigns
        # ring vertices to threads round-robin; summed they equal the
        # shoelace area (signed), and the sign cancels in the final
        # |p| + |q| - |p n q| only if we take absolute values after the
        # reduction, as the CPU-side reduction in the paper does.
        area_partials = [0] * n
        for poly in (p, q):
            v = poly.vertices
            count = len(v)
            for tid in range(n):
                acc = 0
                j = tid
                while j < count:
                    x_j, y_j = int(v[j][0]), int(v[j][1])
                    x_k, y_k = int(v[(j + 1) % count][0]), int(v[(j + 1) % count][1])
                    acc += x_j * y_k - x_k * y_j
                    j += n
                area_partials[tid] += acc  # doubled signed partial

        inter_partials = [0] * n

        # Line 13: the pair MBR is the first sampling box.
        mbr = p.mbr.cover(q.mbr)
        stack: list[tuple[Box, int]] = [(mbr, 1)]
        trace.pushes += 1
        top = 1

        while top > 0:
            top -= 1
            box, c = stack[top]
            trace.pops += 1
            trace.max_depth = max(trace.max_depth, top + 1)
            if self._record:
                trace.events.append(f"pop {box.as_tuple()} c={c}")
            if c == 0:
                trace.skipped_markers += 1
                continue

            if box.size < cfg.threshold or box.size == 1:
                # Lines 22-28: strided pixelization, one pixel per thread
                # per round.
                for tid in range(n):
                    j = tid
                    while j < box.size:
                        px = box.x0 + (j % box.width)
                        py = box.y0 + (j // box.width)
                        phi1 = p.contains_pixel(px, py)
                        phi2 = q.contains_pixel(px, py)
                        inter_partials[tid] += 1 if (phi1 and phi2) else 0
                        j += n
                continue

            # Lines 30-39: each thread takes one sub-box.
            nx, ny = cfg.grid
            children = box.split(nx, ny)
            # Line 38: the old top stays in place as a no-probe marker
            # (stack[top].c = 0); threads skip it when it is popped again.
            del stack[top:]
            stack.append((box, 0))
            if self._record:
                trace.events.append(f"mark {box.as_tuple()}")
            # Line 37: each thread pushes its sub-box above the old top
            # (stack[top + 1 + tid]) without overwriting it.
            for tid, subbox in enumerate(children):
                phi1 = box_position(subbox, p)
                phi2 = box_position(subbox, q)
                cont = 1 if box_continue(phi1, phi2) else 0
                contribute = 1 if box_contribute(phi1, phi2) else 0
                inter_partials[tid % n] += (1 - cont) * contribute * subbox.size
                stack.append((subbox, cont))
                trace.pushes += 1
            top = top + 1 + len(children)

        # CPU-side reduction (the paper reduces on the host, §3.3).
        inter = sum(inter_partials)
        doubled_area_sum = sum(area_partials)
        # area_partials hold p and q doubled signed areas combined; both
        # rings share orientation conventions, so the magnitudes add.
        total_area = abs(p.signed_area) + abs(q.signed_area)
        del doubled_area_sum  # kept for symmetry with the paper's A array
        union = total_area - inter
        return PairAreas(inter, union, p.area, q.area), trace
