"""Sampling-box position tests (Lemma 1 of the paper).

A sampling box's position relative to a polygon is ``INSIDE``, ``OUTSIDE``
or ``HOVER``.  Lemma 1 gives the criteria:

  (i)  none of the box's four edges crosses the polygon's boundary;
  (ii) none of the polygon's vertices lies (strictly) inside the box;
  (iii) the box's geometric center lies inside the polygon.

inside = i & ii & iii; outside = i & ii & !iii; hover otherwise.  An
equivalent formulation used here: the box hovers iff some polygon edge
intersects the *open* box interior (an edge that crosses the boundary
satisfies (i); an edge strictly inside the box has its endpoints — polygon
vertices — inside, satisfying (ii)); otherwise the center decides.
Boundary overlap (an edge lying exactly on a box edge) intentionally does
not force hover — the paper notes such boxes may be classified either way
because the next partitioning level resolves their contribution.

Both a scalar and a vectorized (many boxes vs one polygon) implementation
are provided; the vectorized form is what the NumPy device engine uses to
classify a whole partitioning step at once.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import BoxPosition

__all__ = [
    "box_position",
    "box_positions_vectorized",
    "box_continue",
    "box_contribute",
    "nosep_continue",
    "nosep_contribution",
]


def box_position(box: Box, polygon: RectilinearPolygon) -> BoxPosition:
    """Scalar Lemma 1 test — ``BoxPosition`` in Algorithm 1."""
    for xe, y_lo, y_hi in polygon.vertical_edges:
        if box.x0 < xe < box.x1 and y_lo < box.y1 and y_hi > box.y0:
            return BoxPosition.HOVER
    for ye, x_lo, x_hi in polygon.horizontal_edges:
        if box.y0 < ye < box.y1 and x_lo < box.x1 and x_hi > box.x0:
            return BoxPosition.HOVER
    cx, cy = box.center_pixel
    if polygon.contains_pixel(cx, cy):
        return BoxPosition.INSIDE
    return BoxPosition.OUTSIDE


def box_positions_vectorized(
    boxes: np.ndarray, polygon: RectilinearPolygon
) -> np.ndarray:
    """Classify ``(B, 4)`` boxes ``(x0, y0, x1, y1)`` against one polygon.

    Returns a ``(B,)`` uint8 array of :class:`BoxPosition` values.  This is
    the data-parallel center of the sampling-box procedure: one thread per
    sub-box in Algorithm 1, one SIMD lane per sub-box here.
    """
    boxes = np.asarray(boxes, dtype=np.int64)
    x0, y0, x1, y1 = boxes[:, 0], boxes[:, 1], boxes[:, 2], boxes[:, 3]

    vert = polygon.vertical_edges
    hover = np.zeros(len(boxes), dtype=bool)
    if len(vert):
        xe = vert[:, 0][None, :]
        v_lo = vert[:, 1][None, :]
        v_hi = vert[:, 2][None, :]
        crosses = (
            (x0[:, None] < xe)
            & (xe < x1[:, None])
            & (v_lo < y1[:, None])
            & (v_hi > y0[:, None])
        )
        hover |= crosses.any(axis=1)

    horz = polygon.horizontal_edges
    if len(horz):
        ye = horz[:, 0][None, :]
        h_lo = horz[:, 1][None, :]
        h_hi = horz[:, 2][None, :]
        crosses = (
            (y0[:, None] < ye)
            & (ye < y1[:, None])
            & (h_lo < x1[:, None])
            & (h_hi > x0[:, None])
        )
        hover |= crosses.any(axis=1)

    # Center-pixel parity for the non-hovering boxes.
    cx = x0 + (x1 - x0) // 2
    cy = y0 + (y1 - y0) // 2
    if len(vert):
        xe = vert[:, 0][None, :]
        v_lo = vert[:, 1][None, :]
        v_hi = vert[:, 2][None, :]
        crossings = (xe <= cx[:, None]) & (v_lo <= cy[:, None]) & (cy[:, None] < v_hi)
        inside = (crossings.sum(axis=1) % 2).astype(bool)
    else:
        inside = np.zeros(len(boxes), dtype=bool)

    out = np.full(len(boxes), BoxPosition.OUTSIDE.value, dtype=np.uint8)
    out[inside] = BoxPosition.INSIDE.value
    out[hover] = BoxPosition.HOVER.value
    return out


# ----------------------------------------------------------------------
# Continuation / contribution rules
# ----------------------------------------------------------------------
def box_continue(phi1: int, phi2: int) -> bool:
    """``BoxContinue`` for the intersection-only (PIXELBOX) variant.

    The intersection contribution of a box is undecided exactly when one
    polygon hovers and the other does not rule the box out.
    """
    if phi1 == BoxPosition.OUTSIDE or phi2 == BoxPosition.OUTSIDE:
        return False
    return phi1 == BoxPosition.HOVER or phi2 == BoxPosition.HOVER


def box_contribute(phi1: int, phi2: int) -> bool:
    """``BoxContribute``: the box adds its full size to the intersection."""
    return phi1 == BoxPosition.INSIDE and phi2 == BoxPosition.INSIDE


def nosep_continue(phi1: int, phi2: int) -> bool:
    """Continuation rule when intersection *and* union are tracked (NoSep).

    A box may be decided for the intersection yet undecided for the union
    (e.g. hover/outside, the example in §3.2), forcing extra partitionings
    — precisely the overhead the indirect-union optimization removes.
    """
    inter_decided = (
        phi1 == BoxPosition.OUTSIDE
        or phi2 == BoxPosition.OUTSIDE
        or (phi1 == BoxPosition.INSIDE and phi2 == BoxPosition.INSIDE)
    )
    union_decided = (
        phi1 == BoxPosition.INSIDE
        or phi2 == BoxPosition.INSIDE
        or (phi1 == BoxPosition.OUTSIDE and phi2 == BoxPosition.OUTSIDE)
    )
    return not (inter_decided and union_decided)


def nosep_contribution(phi1: int, phi2: int, size: int) -> tuple[int, int]:
    """(intersection, union) contribution of a *decided* NoSep box."""
    inter = size if (phi1 == BoxPosition.INSIDE and phi2 == BoxPosition.INSIDE) else 0
    union = size if (phi1 == BoxPosition.INSIDE or phi2 == BoxPosition.INSIDE) else 0
    return inter, union
