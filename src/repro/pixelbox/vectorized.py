"""Array-based PixelBox: level-synchronous subdivision across many pairs.

The per-pair engine in :mod:`repro.pixelbox.engine` mirrors Algorithm 1's
control flow; this module mirrors its *execution* on a wide device.  All
sampling boxes of all pairs at one subdivision level are classified in a
handful of NumPy operations:

* polygon edges live in CSR tables (one row span per pair side);
* the (box, edge) interaction is expanded raggedly with ``np.repeat`` and
  reduced per box with ``np.add.reduceat`` — crossing tests for Lemma 1
  and center-parity in the same pass;
* decided boxes scatter-add their contribution to their pair; undecided
  boxes below the threshold become pixelization leaves; the rest split
  into the next level's frontier with closed-form proportional cuts;
* all leaves (from every pair and level) are pixelized in one stacked
  XOR-scan pass.

Everything is exact integer arithmetic; results equal the per-pair engine
and the exact overlay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import BoxPosition, KernelStats, LaunchConfig, Method

__all__ = ["EdgeTable", "classify_boxes", "plan_levels", "stacked_leaf_counts"]

_IN = BoxPosition.INSIDE.value
_OUT = BoxPosition.OUTSIDE.value
_HOVER = BoxPosition.HOVER.value

# Cap on leaves * H * W cells materialized per stacked chunk.
_CHUNK_CELLS = 1 << 23


@dataclass(slots=True)
class EdgeTable:
    """CSR edge table for one side of a pair list.

    ``xs/lo/hi`` concatenate the *vertical* edges of every polygon and
    ``ys/xlo/xhi`` the *horizontal* ones; a rectilinear ring alternates
    the two families, so their counts are equal and both share
    ``offsets`` (``offsets[i]:offsets[i+1]`` is polygon ``i``'s span).
    """

    xs: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    ys: np.ndarray
    xlo: np.ndarray
    xhi: np.ndarray
    offsets: np.ndarray

    @classmethod
    def build(cls, polygons: list[RectilinearPolygon]) -> "EdgeTable":
        """Collect the edge arrays of ``polygons`` (int32 hot-path copies)."""
        offsets = np.zeros(len(polygons) + 1, dtype=np.int64)
        v_chunks = []
        h_chunks = []
        for i, poly in enumerate(polygons):
            v_edges = poly.vertical_edges
            h_edges = poly.horizontal_edges
            if len(v_edges) != len(h_edges):
                raise KernelError(
                    "rectilinear ring with unbalanced edge families"
                )
            offsets[i + 1] = offsets[i] + len(v_edges)
            v_chunks.append(v_edges)
            h_chunks.append(h_edges)
        if v_chunks:
            v_flat = np.concatenate(v_chunks, axis=0).astype(np.int32)
            h_flat = np.concatenate(h_chunks, axis=0).astype(np.int32)
        else:
            v_flat = np.zeros((0, 3), dtype=np.int32)
            h_flat = np.zeros((0, 3), dtype=np.int32)
        return cls(
            np.ascontiguousarray(v_flat[:, 0]),
            np.ascontiguousarray(v_flat[:, 1]),
            np.ascontiguousarray(v_flat[:, 2]),
            np.ascontiguousarray(h_flat[:, 0]),
            np.ascontiguousarray(h_flat[:, 1]),
            np.ascontiguousarray(h_flat[:, 2]),
            offsets,
        )

    def counts(self) -> np.ndarray:
        """Edges per polygon (per family)."""
        return np.diff(self.offsets)


def _expand(owner: np.ndarray, table: EdgeTable):
    """Ragged (box, edge) expansion.

    Returns ``(box_idx, edge_idx, seg_starts)`` such that row ``r`` pairs
    box ``box_idx[r]`` with edge ``edge_idx[r]``, rows of one box are
    contiguous, and ``seg_starts`` are the reduceat segment starts.
    """
    counts = table.counts()[owner]
    if np.any(counts == 0):
        raise KernelError("polygon with no vertical edges in batch")
    total = int(counts.sum())
    box_idx = np.repeat(np.arange(len(owner)), counts)
    seg_starts = np.zeros(len(owner), dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
    edge_idx = np.repeat(table.offsets[owner], counts) + within
    return box_idx, edge_idx, seg_starts


def classify_boxes(
    boxes: np.ndarray, owner: np.ndarray, table: EdgeTable
) -> np.ndarray:
    """Lemma 1 positions of ``(K, 4)`` boxes vs their owners' polygons.

    ``owner[k]`` selects the polygon (row of ``table``) box ``k`` is
    classified against.  Returns ``(K,)`` uint8 of
    :class:`~repro.pixelbox.common.BoxPosition` values.

    Hot path: everything runs on int32 rows with in-place boolean
    fusion, and the per-box reductions use ``logical_or.reduceat`` (hover)
    and ``bitwise_xor.reduceat`` (center parity — XOR of crossing flags is
    exactly the crossing count's parity), avoiding any int64 widening.
    """
    if len(boxes) == 0:
        return np.zeros(0, dtype=np.uint8)
    box_idx, edge_idx, seg_starts = _expand(owner, table)
    b32 = boxes.astype(np.int32, copy=False)
    x0 = b32[box_idx, 0]
    y0 = b32[box_idx, 1]
    x1 = b32[box_idx, 2]
    y1 = b32[box_idx, 3]
    xe = table.xs[edge_idx]
    lo = table.lo[edge_idx]
    hi = table.hi[edge_idx]

    # Hover test: some polygon edge intersects the open box interior.
    # (Equivalent to Lemma 1's conditions (i) or (ii): an edge crossing
    # the box boundary satisfies (i); an edge strictly inside has its
    # endpoints — polygon vertices — inside, satisfying (ii).)
    rows = np.less(x0, xe)
    scratch = np.less(xe, x1)
    rows &= scratch
    np.less(lo, y1, out=scratch)
    rows &= scratch
    np.greater(hi, y0, out=scratch)
    rows &= scratch
    hover_rows = rows.copy()

    ye = table.ys[edge_idx]
    xlo = table.xlo[edge_idx]
    xhi = table.xhi[edge_idx]
    np.less(y0, ye, out=rows)
    np.less(ye, y1, out=scratch)
    rows &= scratch
    np.less(xlo, x1, out=scratch)
    rows &= scratch
    np.greater(xhi, x0, out=scratch)
    rows &= scratch
    hover_rows |= rows
    hover = np.logical_or.reduceat(hover_rows, seg_starts)

    cx = x0 + ((x1 - x0) >> 1)
    cy = y0 + ((y1 - y0) >> 1)
    np.less_equal(xe, cx, out=rows)
    np.less_equal(lo, cy, out=scratch)
    rows &= scratch
    np.less(cy, hi, out=scratch)
    rows &= scratch
    inside = np.bitwise_xor.reduceat(rows, seg_starts)

    out = np.full(len(boxes), _OUT, dtype=np.uint8)
    out[inside] = _IN
    out[hover] = _HOVER
    return out


def _split_cuts(
    boxes: np.ndarray, nx: int, ny: int
) -> tuple[np.ndarray, np.ndarray]:
    """Proportional partition cuts for every box (``SubSampBox``).

    ``cuts_x[k, i] = x0 + i * width // nx`` — the same formula as
    :meth:`repro.geometry.box.Box.split`, so every implementation builds
    an identical subdivision tree.
    """
    x0, y0, x1, y1 = boxes[:, 0], boxes[:, 1], boxes[:, 2], boxes[:, 3]
    ix = np.arange(nx + 1, dtype=np.int64)
    iy = np.arange(ny + 1, dtype=np.int64)
    cuts_x = x0[:, None] + (ix[None, :] * (x1 - x0)[:, None]) // nx
    cuts_y = y0[:, None] + (iy[None, :] * (y1 - y0)[:, None]) // ny
    return cuts_x, cuts_y


def _ranged_expand(starts: np.ndarray, spans: np.ndarray):
    """Row indices + offsets for ragged ranges ``[starts, starts+spans)``."""
    total = int(spans.sum())
    row_of = np.repeat(np.arange(len(spans)), spans)
    excl = np.zeros(len(spans), dtype=np.int64)
    np.cumsum(spans[:-1], out=excl[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(excl, spans)
    return row_of, starts.astype(np.int64)[row_of] + within


def _level_positions(
    parents: np.ndarray,
    owner: np.ndarray,
    table: EdgeTable,
    nx: int,
    ny: int,
    cuts_x: np.ndarray,
    cuts_y: np.ndarray,
) -> np.ndarray:
    """Lemma 1 positions of every child of every parent box, banded.

    Exploits the regular child grid: a vertical polygon edge crosses the
    open interior of children in exactly one *column* (found in O(1) by
    inverting the proportional cut) and a contiguous run of *rows*; a
    horizontal edge the transpose.  Hover marks are therefore
    O(edges x rows) scatter events instead of O(edges x children) tests.
    The center parity uses the matching trick: within one child row all
    centers share ``cy``, so each straddling edge contributes a suffix of
    columns, accumulated with one scatter + prefix-sum.

    Returns ``(K, ny, nx)`` uint8 of positions (entries for zero-size
    children of narrow parents are meaningless and must be masked by the
    caller).
    """
    k = len(parents)
    cells = k * ny * nx
    box_idx, edge_idx, _ = _expand(owner, table)
    x0 = parents[box_idx, 0]
    y0 = parents[box_idx, 1]
    w = parents[box_idx, 2] - x0
    h = parents[box_idx, 3] - y0

    xe = table.xs[edge_idx].astype(np.int64)
    e_lo = table.lo[edge_idx].astype(np.int64)
    e_hi = table.hi[edge_idx].astype(np.int64)

    # --- hover marks from vertical edges -----------------------------
    c = xe - x0
    in_x = (c > 0) & (c < w)
    ci = np.zeros_like(c)
    np.floor_divide((c + 1) * nx - 1, w, out=ci, where=in_x)
    on_cut = (ci * w) // nx == c
    lo_rel = np.clip(e_lo - y0, 0, h)
    hi_rel = np.clip(e_hi - y0, 0, h)
    valid = in_x & ~on_cut & (hi_rel > lo_rel)
    ba = np.zeros_like(c)
    bb = np.zeros_like(c)
    np.floor_divide((lo_rel + 1) * ny - 1, h, out=ba, where=valid)
    np.floor_divide(hi_rel * ny - 1, h, out=bb, where=valid)
    spans = np.where(valid, bb - ba + 1, 0)
    row_of, bands = _ranged_expand(ba, spans)
    flat_v = (box_idx[row_of] * ny + bands) * nx + ci[row_of]
    hover_counts = np.bincount(flat_v, minlength=cells)

    # --- hover marks from horizontal edges ---------------------------
    ye = table.ys[edge_idx].astype(np.int64)
    x_lo = table.xlo[edge_idx].astype(np.int64)
    x_hi = table.xhi[edge_idx].astype(np.int64)
    d = ye - y0
    in_y = (d > 0) & (d < h)
    bi = np.zeros_like(d)
    np.floor_divide((d + 1) * ny - 1, h, out=bi, where=in_y)
    on_cut_y = (bi * h) // ny == d
    xlo_rel = np.clip(x_lo - x0, 0, w)
    xhi_rel = np.clip(x_hi - x0, 0, w)
    valid_h = in_y & ~on_cut_y & (xhi_rel > xlo_rel)
    ia = np.zeros_like(d)
    ib = np.zeros_like(d)
    np.floor_divide((xlo_rel + 1) * nx - 1, w, out=ia, where=valid_h)
    np.floor_divide(xhi_rel * nx - 1, w, out=ib, where=valid_h)
    spans_h = np.where(valid_h, ib - ia + 1, 0)
    row_of_h, cols = _ranged_expand(ia, spans_h)
    flat_h = (box_idx[row_of_h] * ny + bi[row_of_h]) * nx + cols
    hover_counts += np.bincount(flat_h, minlength=cells)
    hover = hover_counts.reshape(k, ny, nx) > 0

    # --- center parity ------------------------------------------------
    centers_y = cuts_y[:, :-1] + (cuts_y[:, 1:] - cuts_y[:, :-1]) // 2  # (K, ny)
    centers_x = cuts_x[:, :-1] + (cuts_x[:, 1:] - cuts_x[:, :-1]) // 2  # (K, nx)
    cy_rows = centers_y[box_idx]  # (R, ny)
    straddle = (e_lo[:, None] <= cy_rows) & (cy_rows < e_hi[:, None])
    row_s, band_s = np.nonzero(straddle)
    suffix_start = np.sum(
        centers_x[box_idx[row_s]] < xe[row_s, None], axis=1
    )
    keep = suffix_start < nx
    flat_s = (box_idx[row_s[keep]] * ny + band_s[keep]) * nx + suffix_start[keep]
    counts = np.bincount(flat_s, minlength=cells).reshape(k, ny, nx)
    np.cumsum(counts, axis=2, out=counts)
    inside = (counts & 1).astype(bool)

    out = np.full((k, ny, nx), _OUT, dtype=np.uint8)
    out[inside] = _IN
    out[hover] = _HOVER
    return out


def plan_levels(
    table_p: EdgeTable,
    table_q: EdgeTable,
    boxes: np.ndarray,
    owner: np.ndarray,
    cfg: LaunchConfig,
    method: Method,
    stats: KernelStats,
    n_pairs: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Level-synchronous sampling-box subdivision for a whole pair batch.

    Returns ``(decided_inter, decided_union, leaf_boxes, leaf_owner)``
    where the decided arrays have one slot per pair and the leaves are the
    boxes awaiting pixelization.
    """
    if method is Method.PIXEL_ONLY:
        return (
            np.zeros(n_pairs, dtype=np.int64),
            np.zeros(n_pairs, dtype=np.int64),
            boxes,
            owner,
        )
    nosep = method is Method.NOSEP
    threshold = cfg.threshold
    nx, ny = cfg.grid
    dec_i = np.zeros(n_pairs, dtype=np.int64)
    dec_u = np.zeros(n_pairs, dtype=np.int64)
    leaf_parts: list[np.ndarray] = []
    leaf_owner_parts: list[np.ndarray] = []

    frontier, fowner = boxes, owner
    while len(frontier):
        sizes = (frontier[:, 2] - frontier[:, 0]) * (frontier[:, 3] - frontier[:, 1])
        stats.pops += len(frontier)
        is_leaf = (sizes < threshold) | (sizes == 1)
        if np.any(is_leaf):
            leaf_parts.append(frontier[is_leaf])
            leaf_owner_parts.append(fowner[is_leaf])
        frontier, fowner = frontier[~is_leaf], fowner[~is_leaf]
        if not len(frontier):
            break

        stats.partitions += len(frontier)
        k = len(frontier)
        cuts_x, cuts_y = _split_cuts(frontier, nx, ny)
        phi1 = _level_positions(
            frontier, fowner, table_p, nx, ny, cuts_x, cuts_y
        ).reshape(-1)
        phi2 = _level_positions(
            frontier, fowner, table_q, nx, ny, cuts_x, cuts_y
        ).reshape(-1)
        cx0 = np.broadcast_to(cuts_x[:, None, :-1], (k, ny, nx))
        cx1 = np.broadcast_to(cuts_x[:, None, 1:], (k, ny, nx))
        cy0 = np.broadcast_to(cuts_y[:, :-1, None], (k, ny, nx))
        cy1 = np.broadcast_to(cuts_y[:, 1:, None], (k, ny, nx))
        children = np.stack([cx0, cy0, cx1, cy1], axis=-1).reshape(-1, 4)
        cowner = np.repeat(fowner, nx * ny)
        nonempty = (children[:, 2] > children[:, 0]) & (
            children[:, 3] > children[:, 1]
        )
        children = children[nonempty]
        cowner = cowner[nonempty]
        phi1 = phi1[nonempty]
        phi2 = phi2[nonempty]
        stats.boxes_classified += len(children)
        csizes = (children[:, 2] - children[:, 0]) * (
            children[:, 3] - children[:, 1]
        )

        if nosep:
            inter_decided = (
                (phi1 == _OUT) | (phi2 == _OUT) | ((phi1 == _IN) & (phi2 == _IN))
            )
            union_decided = (
                (phi1 == _IN) | (phi2 == _IN) | ((phi1 == _OUT) & (phi2 == _OUT))
            )
            cont = ~(inter_decided & union_decided)
            gain_i = ~cont & (phi1 == _IN) & (phi2 == _IN)
            gain_u = ~cont & ((phi1 == _IN) | (phi2 == _IN))
            np.add.at(dec_i, cowner[gain_i], csizes[gain_i])
            np.add.at(dec_u, cowner[gain_u], csizes[gain_u])
        else:
            cont = (
                (phi1 != _OUT)
                & (phi2 != _OUT)
                & ((phi1 == _HOVER) | (phi2 == _HOVER))
            )
            gain_i = (phi1 == _IN) & (phi2 == _IN)
            np.add.at(dec_i, cowner[gain_i], csizes[gain_i])

        stats.boxes_decided += int(np.count_nonzero(~cont))
        frontier, fowner = children[cont], cowner[cont]

    if leaf_parts:
        leaves = np.concatenate(leaf_parts, axis=0)
        leaf_owner = np.concatenate(leaf_owner_parts)
    else:
        leaves = np.zeros((0, 4), dtype=np.int64)
        leaf_owner = np.zeros(0, dtype=np.int64)
    return dec_i, dec_u, leaves, leaf_owner


# ----------------------------------------------------------------------
# Stacked leaf pixelization
# ----------------------------------------------------------------------
def stacked_leaf_counts(
    table_p: EdgeTable,
    table_q: EdgeTable,
    leaves: np.ndarray,
    leaf_owner: np.ndarray,
    want_union: bool,
    leaf_mode: str = "scan",
) -> tuple[np.ndarray, np.ndarray]:
    """Pixel counts of ``p AND q`` (and optionally ``p OR q``) per leaf.

    ``"scan"`` mode: every polygon edge becomes two scatter events in a
    ``(leaves, H+1, W+1)`` tensor; one XOR-scan along y expands the edge
    spans and one along x resolves the ray-cast parity — O(pixels+edges).

    ``"crossing"`` mode: the paper's pixelization procedure verbatim —
    every pixel of every leaf is tested against every polygon edge
    (threads strided over pixels on the GPU, SIMD lanes here) —
    O(pixels x edges).
    """
    n = len(leaves)
    inter = np.zeros(n, dtype=np.int64)
    union = np.zeros(n, dtype=np.int64)
    if n == 0:
        return inter, union

    widths = leaves[:, 2] - leaves[:, 0]
    heights = leaves[:, 3] - leaves[:, 1]
    if leaf_mode == "crossing":
        # Tight buckets: the per-edge pixel loop multiplies any padding
        # waste, so round to multiples of 8 instead of powers of two, and
        # bucket by edge count as well.
        pad_w = _pad_multiple(widths, 8)
        pad_h = _pad_multiple(heights, 8)
        counts_p = table_p.counts()[leaf_owner]
        counts_q = table_q.counts()[leaf_owner]
        pad_e = _pad_multiple(np.maximum(counts_p, counts_q), 16)
        keys = (pad_w * (1 << 40) + pad_h * (1 << 20) + pad_e).astype(np.int64)
    else:
        pad_w = _pad_pow2(widths)
        pad_h = _pad_pow2(heights)
        keys = pad_w * (1 << 32) + pad_h
    for key in np.unique(keys):
        members = np.flatnonzero(keys == key)
        bw = int(pad_w[members[0]])
        bh = int(pad_h[members[0]])
        chunk = max(1, _CHUNK_CELLS // ((bw + 1) * (bh + 1)))
        for lo in range(0, len(members), chunk):
            part = members[lo : lo + chunk]
            if leaf_mode == "crossing":
                i_part, u_part = _bucket_counts_crossing(
                    table_p, table_q, leaves, leaf_owner, part, bw, bh,
                    want_union,
                )
            else:
                i_part, u_part = _bucket_counts(
                    table_p, table_q, leaves, leaf_owner, part, bw, bh,
                    want_union,
                )
            inter[part] = i_part
            if want_union:
                union[part] = u_part
    return inter, union


def _pad_pow2(extents: np.ndarray) -> np.ndarray:
    """Round extents up to the bucket grid (powers of two >= 8)."""
    clipped = np.maximum(extents, 8)
    return (1 << np.ceil(np.log2(clipped)).astype(np.int64)).astype(np.int64)


def _pad_multiple(extents: np.ndarray, step: int) -> np.ndarray:
    """Round extents up to the next multiple of ``step``."""
    return ((np.maximum(extents, 1) + step - 1) // step) * step


def _bucket_counts(
    table_p: EdgeTable,
    table_q: EdgeTable,
    leaves: np.ndarray,
    leaf_owner: np.ndarray,
    part: np.ndarray,
    bw: int,
    bh: int,
    want_union: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked parity counts for one bucket chunk."""
    count = len(part)
    boxes = leaves[part]
    owner = leaf_owner[part]
    widths = boxes[:, 2] - boxes[:, 0]
    heights = boxes[:, 3] - boxes[:, 1]
    plane = (bh + 1) * (bw + 1)
    masks = []
    for table in (table_p, table_q):
        box_idx, edge_idx, _ = _expand(owner, table)
        cols = np.clip(table.xs[edge_idx] - boxes[box_idx, 0], 0, widths[box_idx])
        lows = np.clip(table.lo[edge_idx] - boxes[box_idx, 1], 0, heights[box_idx])
        highs = np.clip(table.hi[edge_idx] - boxes[box_idx, 1], 0, heights[box_idx])
        keep = (lows < highs) & (cols < widths[box_idx])
        base = box_idx[keep] * plane + cols[keep]
        flat = np.concatenate(
            [base + lows[keep] * (bw + 1), base + highs[keep] * (bw + 1)]
        )
        # XOR-toggling a bit equals the parity of how many events hit the
        # cell; np.bincount computes that ~100x faster than ufunc.at.
        toggles = np.bincount(flat, minlength=count * plane)
        grid = (toggles & 1).astype(np.uint8).reshape(count, bh + 1, bw + 1)
        np.bitwise_xor.accumulate(grid, axis=1, out=grid)  # expand y spans
        np.bitwise_xor.accumulate(grid, axis=2, out=grid)  # ray-cast parity
        masks.append(grid)

    valid = (np.arange(bh + 1)[None, :, None] < heights[:, None, None]) & (
        np.arange(bw + 1)[None, None, :] < widths[:, None, None]
    )
    mask_p, mask_q = masks
    inter = ((mask_p & mask_q).astype(bool) & valid).sum(axis=(1, 2), dtype=np.int64)
    if want_union:
        uni = ((mask_p | mask_q).astype(bool) & valid).sum(
            axis=(1, 2), dtype=np.int64
        )
    else:
        uni = np.zeros(count, dtype=np.int64)
    return inter, uni


def _padded_edges(
    table: EdgeTable, owner: np.ndarray, e_max: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-leaf ``(C, e_max)`` edge arrays padded with never-hit sentinels."""
    count = len(owner)
    counts = table.counts()[owner]
    xs = np.full((count, e_max), np.iinfo(np.int64).max, dtype=np.int64)
    lo = np.zeros((count, e_max), dtype=np.int64)
    hi = np.zeros((count, e_max), dtype=np.int64)
    slot = np.repeat(np.arange(count), counts)
    seg_starts = np.zeros(count, dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_starts[1:])
    within = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(
        seg_starts, counts
    )
    edge_idx = np.repeat(table.offsets[owner], counts) + within
    xs[slot, within] = table.xs[edge_idx]
    lo[slot, within] = table.lo[edge_idx]
    hi[slot, within] = table.hi[edge_idx]
    return xs, lo, hi


def _bucket_counts_crossing(
    table_p: EdgeTable,
    table_q: EdgeTable,
    leaves: np.ndarray,
    leaf_owner: np.ndarray,
    part: np.ndarray,
    bw: int,
    bh: int,
    want_union: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel ray-cast counts for one bucket chunk (paper-faithful).

    ``PixelInPoly`` of Algorithm 1: pixel ``(x, y)`` is inside when an odd
    number of vertical edges ``(xe, lo, hi)`` satisfy ``xe <= x`` and
    ``lo <= y < hi``.  The edge loop runs in Python; each iteration tests
    one edge slot of every pixel of every leaf in the chunk — the SIMD
    image of the GPU's per-thread edge loop (and the loop the paper
    unrolls in §3.3).
    """
    count = len(part)
    boxes = leaves[part]
    owner = leaf_owner[part]
    widths = boxes[:, 2] - boxes[:, 0]
    heights = boxes[:, 3] - boxes[:, 1]
    px = boxes[:, 0][:, None, None] + np.arange(bw)[None, None, :]
    py = boxes[:, 1][:, None, None] + np.arange(bh)[None, :, None]

    masks = []
    for table in (table_p, table_q):
        e_max = int(table.counts()[owner].max())
        xs, lo, hi = _padded_edges(table, owner, e_max)
        acc = np.zeros((count, bh, bw), dtype=bool)
        for e in range(e_max):
            xe = xs[:, e][:, None, None]
            y_lo = lo[:, e][:, None, None]
            y_hi = hi[:, e][:, None, None]
            acc ^= (xe <= px) & (y_lo <= py) & (py < y_hi)
        masks.append(acc)

    valid = (np.arange(bh)[None, :, None] < heights[:, None, None]) & (
        np.arange(bw)[None, None, :] < widths[:, None, None]
    )
    mask_p, mask_q = masks
    inter = (mask_p & mask_q & valid).sum(axis=(1, 2), dtype=np.int64)
    if want_union:
        uni = ((mask_p | mask_q) & valid).sum(axis=(1, 2), dtype=np.int64)
    else:
        uni = np.zeros(count, dtype=np.int64)
    return inter, uni
