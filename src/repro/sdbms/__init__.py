"""Mini spatial DBMS — the PostGIS baseline stand-in.

Polygon tables with Hilbert R-tree indexes, a Volcano-style executor,
``ST_*`` spatial functions backed by exact overlay geometry, per-component
profiling (Figure 2), and chunked parallel execution (PostGIS-M).
"""

from repro.sdbms.functions import FUNCTIONS, get_function, st_area
from repro.sdbms.parallel import ParallelQueryResult, parallel_cross_compare
from repro.sdbms.plan import (
    AvgAggregate,
    BinOp,
    Col,
    Const,
    Expr,
    Filter,
    Func,
    IndexNestLoopJoin,
    PlanNode,
    Project,
)
from repro.sdbms.profiler import Bucket, Profiler
from repro.sdbms.queries import (
    QueryResult,
    build_optimized_plan,
    build_unoptimized_plan,
    run_cross_compare,
)
from repro.sdbms.table import Catalog, PolygonTable

__all__ = [
    "PolygonTable",
    "Catalog",
    "Profiler",
    "Bucket",
    "FUNCTIONS",
    "get_function",
    "st_area",
    "Expr",
    "Col",
    "Const",
    "Func",
    "BinOp",
    "PlanNode",
    "IndexNestLoopJoin",
    "Filter",
    "Project",
    "AvgAggregate",
    "QueryResult",
    "build_unoptimized_plan",
    "build_optimized_plan",
    "run_cross_compare",
    "ParallelQueryResult",
    "parallel_cross_compare",
]
