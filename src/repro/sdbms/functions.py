"""Spatial function registry — the engine's ``ST_*`` implementations.

Every function is backed by the exact vector-geometry library
(:mod:`repro.exact`), matching how PostGIS delegates its spatial operators
to GEOS (paper §2.3).  Functions are plain callables registered by name so
plans can reference them symbolically and the profiler can attribute
their cost.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import QueryError
from repro.exact import boolean, predicates
from repro.exact.region import RectRegion
from repro.geometry.polygon import RectilinearPolygon

__all__ = ["FUNCTIONS", "get_function", "st_area"]

Geometry = RectilinearPolygon | RectRegion


def st_area(geom: Geometry) -> int:
    """``ST_Area``: pixels covered by a polygon or overlay region."""
    if isinstance(geom, RectilinearPolygon):
        return geom.area
    if isinstance(geom, RectRegion):
        return geom.area
    raise QueryError(f"ST_Area: unsupported geometry {type(geom).__name__}")


def st_intersection(p: RectilinearPolygon, q: RectilinearPolygon) -> RectRegion:
    """``ST_Intersection``: overlay geometry of ``p AND q``."""
    return boolean.intersection(p, q)


def st_union(p: RectilinearPolygon, q: RectilinearPolygon) -> RectRegion:
    """``ST_Union``: overlay geometry of ``p OR q``."""
    return boolean.union(p, q)


FUNCTIONS: dict[str, Callable] = {
    "ST_Area": st_area,
    "ST_Intersection": st_intersection,
    "ST_Union": st_union,
    "ST_Intersects": predicates.st_intersects,
    "ST_Touches": predicates.st_touches,
    "ST_Contains": predicates.st_contains,
    "ST_Within": predicates.st_within,
    "ST_Equals": predicates.st_equals,
    "ST_Disjoint": predicates.st_disjoint,
}


def get_function(name: str) -> Callable:
    """Resolve a registered spatial function by name."""
    if name not in FUNCTIONS:
        raise QueryError(
            f"unknown spatial function {name!r} "
            f"(known: {', '.join(sorted(FUNCTIONS))})"
        )
    return FUNCTIONS[name]
