"""Parallelized SDBMS execution — the paper's PostGIS-M scheme (§5.7).

The paper parallelizes PostGIS "by evenly partitioning polygon tables
into 16 chunks and launching 16 query streams to process different chunks
concurrently".  This module does the same with worker *processes* (real
parallelism; the engine is pure Python): the outer table is chunked, each
worker runs the optimized cross-comparing query of its chunk against the
full inner table, and the partial (sum, count) aggregates are merged.

Workers are forked after the polygon sets are staged in module globals,
so the inner table is shared copy-on-write instead of being pickled per
task; each worker builds its own index over the inner table once (the
paper likewise excludes table partitioning time, §5.7 "Being generous to
PostGIS").
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

from repro.errors import QueryError
from repro.geometry.polygon import RectilinearPolygon
from repro.sdbms.queries import run_cross_compare

__all__ = ["ParallelQueryResult", "parallel_cross_compare"]

# Staging area inherited by forked workers (copy-on-write).
_STAGE: dict[str, object] = {}


@dataclass(frozen=True, slots=True)
class ParallelQueryResult:
    """Merged output of all query streams."""

    jaccard_mean: float
    pair_count: int
    streams: int


def _run_chunk(span: tuple[int, int]) -> tuple[float, int]:
    """Worker body: optimized query of one outer-table chunk."""
    polygons_a: list[RectilinearPolygon] = _STAGE["a"]  # type: ignore[assignment]
    polygons_b: list[RectilinearPolygon] = _STAGE["b"]  # type: ignore[assignment]
    lo, hi = span
    result = run_cross_compare(polygons_a[lo:hi], polygons_b, optimized=True)
    return (result.ratio_sum, result.pair_count)


def parallel_cross_compare(
    polygons_a: list[RectilinearPolygon],
    polygons_b: list[RectilinearPolygon],
    workers: int = 4,
    streams: int = 16,
) -> ParallelQueryResult:
    """Cross-compare with chunked parallel query streams.

    Parameters
    ----------
    workers:
        Process count (the paper used 8 cores / 16 hardware threads).
    streams:
        Number of table chunks / query streams (the paper used 16).
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    if streams < 1:
        raise QueryError(f"streams must be >= 1, got {streams}")

    if workers == 1 or len(polygons_a) < 2 * streams:
        result = run_cross_compare(polygons_a, polygons_b, optimized=True)
        return ParallelQueryResult(result.jaccard_mean, result.pair_count, 1)

    step = -(-len(polygons_a) // streams)
    spans = [
        (lo, min(lo + step, len(polygons_a)))
        for lo in range(0, len(polygons_a), step)
    ]
    _STAGE["a"] = polygons_a
    _STAGE["b"] = polygons_b
    try:
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            partials = pool.map(_run_chunk, spans)
    finally:
        _STAGE.clear()
    total = sum(s for s, _ in partials)
    count = sum(c for _, c in partials)
    return ParallelQueryResult(
        jaccard_mean=total / count if count else 0.0,
        pair_count=count,
        streams=len(spans),
    )
