"""Query plans: expressions and iterator-model operators.

The mini engine executes trees of pull-based operators (Volcano style)
over polygon tables.  Expressions may be annotated with a profiler
*bucket*; an annotated expression charges its entire evaluation — including
nested spatial function calls — to that bucket, which is how the paper
attributes ``ST_Area(ST_Intersection(...))`` to a single
``Area_Of_Intersection`` component in Figure 2.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import QueryError
from repro.pixelbox.common import LaunchConfig
from repro.sdbms.functions import get_function
from repro.sdbms.profiler import Bucket, Profiler
from repro.sdbms.table import PolygonTable

__all__ = [
    "Expr",
    "Col",
    "Const",
    "Func",
    "BinOp",
    "PlanNode",
    "IndexNestLoopJoin",
    "Filter",
    "Project",
    "BackendAreaProject",
    "AvgAggregate",
]

Row = dict[str, Any]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base expression; subclasses implement :meth:`_compute`."""

    bucket: str | None = None

    def evaluate(self, row: Row, profiler: Profiler) -> Any:
        """Evaluate against ``row``, charging ``bucket`` when annotated."""
        if self.bucket is None:
            return self._compute(row, profiler)
        with profiler.measure(self.bucket):
            return self._compute(row, profiler)

    def _compute(self, row: Row, profiler: Profiler) -> Any:
        raise NotImplementedError


class Col(Expr):
    """Column reference."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _compute(self, row: Row, profiler: Profiler) -> Any:
        if self.name not in row:
            raise QueryError(f"unknown column {self.name!r}")
        return row[self.name]

    def __repr__(self) -> str:
        return f"Col({self.name})"


class Const(Expr):
    """Literal value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def _compute(self, row: Row, profiler: Profiler) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Func(Expr):
    """Spatial function call, e.g. ``ST_Area(ST_Intersection(a, b))``."""

    def __init__(self, name: str, args: list[Expr], bucket: str | None = None):
        self.name = name
        self.args = args
        self.fn = get_function(name)
        self.bucket = bucket

    def _compute(self, row: Row, profiler: Profiler) -> Any:
        values = [arg.evaluate(row, profiler) for arg in self.args]
        return self.fn(*values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


class BinOp(Expr):
    """Arithmetic/comparison operator."""

    _OPS: dict[str, Callable[[Any, Any], Any]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "=": lambda a, b: a == b,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPS:
            raise QueryError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compute(self, row: Row, profiler: Profiler) -> Any:
        return self._OPS[self.op](
            self.left.evaluate(row, profiler),
            self.right.evaluate(row, profiler),
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


# ----------------------------------------------------------------------
# Plan operators
# ----------------------------------------------------------------------
class PlanNode:
    """Base iterator-model operator."""

    def rows(self, profiler: Profiler) -> Iterator[Row]:
        """Yield result rows."""
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        """Indented plan-tree description."""
        raise NotImplementedError


class IndexNestLoopJoin(PlanNode):
    """MBR-overlap join: scan the outer table, probe the inner index.

    This is the ``a.geom && b.geom`` join of the optimized query (Figure
    1(b)); probes are charged to ``Index_Search``, index construction to
    ``Index_Build``.
    """

    def __init__(self, outer: PolygonTable, inner: PolygonTable) -> None:
        self.outer = outer
        self.inner = inner

    def rows(self, profiler: Profiler) -> Iterator[Row]:
        self.inner.build_index(profiler)
        index = self.inner.index
        inner_polys = self.inner.polygons
        for i, poly in enumerate(self.outer.polygons):
            with profiler.measure(Bucket.INDEX_SEARCH):
                matches = index.search(poly.mbr)
            for j in matches:
                yield {"a_id": i, "b_id": j, "a": poly, "b": inner_polys[j]}

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        return (
            f"{pad}IndexNestLoopJoin ({self.outer.name} && {self.inner.name})"
        )


class Filter(PlanNode):
    """Keep rows whose predicate evaluates truthy."""

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    def rows(self, profiler: Profiler) -> Iterator[Row]:
        for row in self.child.rows(profiler):
            if self.predicate.evaluate(row, profiler):
                yield row

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        return (
            f"{pad}Filter ({self.predicate!r})\n"
            + self.child.explain(depth + 1)
        )


class Project(PlanNode):
    """Extend each row with computed columns."""

    def __init__(self, child: PlanNode, columns: dict[str, Expr]) -> None:
        self.child = child
        self.columns = columns

    def rows(self, profiler: Profiler) -> Iterator[Row]:
        for row in self.child.rows(profiler):
            for name, expr in self.columns.items():
                row[name] = expr.evaluate(row, profiler)
            yield row

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        cols = ", ".join(f"{k}={v!r}" for k, v in self.columns.items())
        return f"{pad}Project ({cols})\n" + self.child.explain(depth + 1)


class BackendAreaProject(PlanNode):
    """Vectorized area columns through an execution backend.

    The row-at-a-time plans compute ``ST_Area(ST_Intersection(a, b))``
    with the exact overlay per pair — faithful to how an SDBMS calls out
    to its geometry library, and exactly the bottleneck the paper
    removes.  This operator is the accelerated counterpart: it
    materializes the child's rows, ships **all** pairs in a single
    launch through a registered execution backend
    (:mod:`repro.backends`), and extends each row with the ``ai`` /
    ``ap`` / ``aq`` columns the similarity projection consumes.  The
    launch is charged to ``Area_Of_Intersection``, keeping Figure-2
    style decompositions comparable across executors.
    """

    def __init__(
        self,
        child: PlanNode,
        backend: str = "batch",
        config: LaunchConfig | None = None,
    ) -> None:
        self.child = child
        self.backend = backend
        self.config = config

    def rows(self, profiler: Profiler) -> Iterator[Row]:
        from repro.backends import get_backend

        executor = get_backend(self.backend)
        materialized = list(self.child.rows(profiler))
        pairs = [(row["a"], row["b"]) for row in materialized]
        with profiler.measure(Bucket.AREA_OF_INTERSECTION):
            areas = executor.compare_pairs(pairs, self.config)
        for i, row in enumerate(materialized):
            row["ai"] = int(areas.intersection[i])
            row["ap"] = int(areas.area_p[i])
            row["aq"] = int(areas.area_q[i])
            yield row

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        return (
            f"{pad}BackendAreaProject (backend={self.backend})\n"
            + self.child.explain(depth + 1)
        )


class AvgAggregate(PlanNode):
    """``AVG(column)`` over rows passing an optional qualifier.

    Yields a single row ``{"avg": float, "count": int, "sum": float}`` —
    the similarity score of the whole comparison.
    """

    def __init__(
        self,
        child: PlanNode,
        column: str,
        where: Expr | None = None,
    ) -> None:
        self.child = child
        self.column = column
        self.where = where

    def rows(self, profiler: Profiler) -> Iterator[Row]:
        total = 0.0
        count = 0
        for row in self.child.rows(profiler):
            if self.where is not None and not self.where.evaluate(row, profiler):
                continue
            total += row[self.column]
            count += 1
        yield {
            "avg": total / count if count else 0.0,
            "count": count,
            "sum": total,
        }

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        qual = f" where {self.where!r}" if self.where is not None else ""
        return (
            f"{pad}AvgAggregate ({self.column}{qual})\n"
            + self.child.explain(depth + 1)
        )
