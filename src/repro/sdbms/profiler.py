"""Per-component execution profiling (reproduces Figure 2's methodology).

The paper splits cross-comparing query execution into components — index
build, index search, ``ST_Intersects``, area-of-intersection,
area-of-union, stand-alone ``ST_Area`` — and measures the time the engine
spends in each on a single core.  :class:`Profiler` provides named
accumulation buckets; the executor and spatial functions charge their
work to the bucket the current expression is annotated with.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Profiler", "Bucket"]


class Bucket:
    """Canonical component names (Figure 2's bars)."""

    INDEX_BUILD = "Index_Build"
    INDEX_SEARCH = "Index_Search"
    ST_INTERSECTS = "ST_Intersects"
    AREA_OF_INTERSECTION = "Area_Of_Intersection"
    AREA_OF_UNION = "Area_Of_Union"
    ST_AREA = "ST_Area"
    OTHER = "Other"


@dataclass(slots=True)
class Profiler:
    """Named wall-time accumulation buckets.

    >>> prof = Profiler()
    >>> with prof.measure("Index_Build"):
    ...     _ = sum(range(100))
    >>> prof.seconds("Index_Build") >= 0.0
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    wall_start: float | None = None
    wall_total: float = 0.0

    @contextmanager
    def measure(self, bucket: str):
        """Charge the enclosed block's wall time to ``bucket``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[bucket] = self.totals.get(bucket, 0.0) + elapsed
            self.counts[bucket] = self.counts.get(bucket, 0) + 1

    @contextmanager
    def run(self):
        """Measure the total query wall time (for the Other residual)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.wall_total += time.perf_counter() - start

    def seconds(self, bucket: str) -> float:
        """Accumulated seconds in ``bucket``."""
        return self.totals.get(bucket, 0.0)

    def decomposition(self) -> dict[str, float]:
        """Component shares of the total wall time (fractions, sum ~1).

        The residual between total wall time and the measured buckets is
        reported as ``Other`` — in the paper's profile this is tuple
        shuffling, predicate glue, and aggregation.
        """
        measured = sum(self.totals.values())
        total = max(self.wall_total, measured)
        if total == 0:
            return {}
        out = {name: value / total for name, value in self.totals.items()}
        other = (total - measured) / total
        if other > 0:
            out[Bucket.OTHER] = out.get(Bucket.OTHER, 0.0) + other
        return out

    def merge(self, other: "Profiler") -> None:
        """Accumulate another profiler's buckets into this one."""
        for name, value in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + value
        for name, value in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + value
        self.wall_total += other.wall_total

    def report(self) -> str:
        """Human-readable decomposition table."""
        rows = sorted(
            self.decomposition().items(), key=lambda kv: kv[1], reverse=True
        )
        lines = [f"total wall time: {self.wall_total:.3f}s"]
        for name, share in rows:
            lines.append(
                f"  {name:<22} {100 * share:6.2f}%  "
                f"({self.totals.get(name, 0.0):.3f}s, "
                f"{self.counts.get(name, 0)} calls)"
            )
        return "\n".join(lines)
