"""The cross-comparing queries of Figure 1, as executable plans.

:func:`build_unoptimized_plan` is Figure 1(a): join on ``ST_Intersects``,
compute both ``ST_Area(ST_Intersection)`` and ``ST_Area(ST_Union)`` per
pair.  :func:`build_optimized_plan` is Figure 1(b): join on the MBR ``&&``
operator only, compute the intersection area once, and derive the union
through ``|p u q| = |p| + |q| - |p n q|``.

:func:`run_cross_compare` executes either plan under a fresh profiler and
returns the similarity plus the Figure-2-style decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.polygon import RectilinearPolygon
from repro.sdbms.plan import (
    AvgAggregate,
    BinOp,
    Col,
    Const,
    Filter,
    Func,
    IndexNestLoopJoin,
    PlanNode,
    Project,
)
from repro.sdbms.profiler import Bucket, Profiler
from repro.sdbms.table import PolygonTable

__all__ = [
    "QueryResult",
    "build_unoptimized_plan",
    "build_optimized_plan",
    "run_cross_compare",
]


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Similarity output of one cross-comparing query."""

    jaccard_mean: float
    pair_count: int
    ratio_sum: float
    profiler: Profiler


def build_unoptimized_plan(
    table_a: PolygonTable, table_b: PolygonTable
) -> PlanNode:
    """Figure 1(a): ST_Intersects join + direct intersection/union areas."""
    join = IndexNestLoopJoin(table_a, table_b)
    intersecting = Filter(
        join,
        Func("ST_Intersects", [Col("a"), Col("b")], bucket=Bucket.ST_INTERSECTS),
    )
    ratio = Project(
        intersecting,
        {
            "ai": Func(
                "ST_Area",
                [Func("ST_Intersection", [Col("a"), Col("b")])],
                bucket=Bucket.AREA_OF_INTERSECTION,
            ),
            "au": Func(
                "ST_Area",
                [Func("ST_Union", [Col("a"), Col("b")])],
                bucket=Bucket.AREA_OF_UNION,
            ),
        },
    )
    with_ratio = Project(
        ratio, {"ratio": BinOp("/", Col("ai"), Col("au"))}
    )
    # Pairs that only touch have ratio 0 and are excluded from J'
    # (Formula 1 requires a non-empty intersection).
    return AvgAggregate(
        with_ratio, "ratio", where=BinOp(">", Col("ai"), Const(0))
    )


def build_optimized_plan(
    table_a: PolygonTable, table_b: PolygonTable
) -> PlanNode:
    """Figure 1(b): MBR-only join + indirect union areas."""
    join = IndexNestLoopJoin(table_a, table_b)
    areas = Project(
        join,
        {
            "ai": Func(
                "ST_Area",
                [Func("ST_Intersection", [Col("a"), Col("b")])],
                bucket=Bucket.AREA_OF_INTERSECTION,
            ),
            "ap": Func("ST_Area", [Col("a")], bucket=Bucket.ST_AREA),
            "aq": Func("ST_Area", [Col("b")], bucket=Bucket.ST_AREA),
        },
    )
    with_ratio = Project(
        areas,
        {
            "ratio": BinOp(
                "/",
                Col("ai"),
                BinOp("-", BinOp("+", Col("ap"), Col("aq")), Col("ai")),
            )
        },
    )
    return AvgAggregate(
        with_ratio, "ratio", where=BinOp(">", Col("ai"), Const(0))
    )


def run_cross_compare(
    polygons_a: list[RectilinearPolygon],
    polygons_b: list[RectilinearPolygon],
    optimized: bool = True,
    profiler: Profiler | None = None,
) -> QueryResult:
    """Execute a cross-comparing query over two polygon sets."""
    table_a = PolygonTable("set_a", polygons_a)
    table_b = PolygonTable("set_b", polygons_b)
    build = build_optimized_plan if optimized else build_unoptimized_plan
    plan = build(table_a, table_b)
    prof = profiler or Profiler()
    with prof.run():
        rows = list(plan.rows(prof))
    result = rows[0]
    return QueryResult(
        jaccard_mean=result["avg"],
        pair_count=result["count"],
        ratio_sum=result["sum"],
        profiler=prof,
    )
