"""The cross-comparing queries of Figure 1, as executable plans.

:func:`build_unoptimized_plan` is Figure 1(a): join on ``ST_Intersects``,
compute both ``ST_Area(ST_Intersection)`` and ``ST_Area(ST_Union)`` per
pair.  :func:`build_optimized_plan` is Figure 1(b): join on the MBR ``&&``
operator only, compute the intersection area once, and derive the union
through ``|p u q| = |p| + |q| - |p n q|``.

:func:`build_backend_plan` is the accelerated plan this reproduction
adds: the same MBR join feeding a single batched launch through an
execution backend (:class:`~repro.sdbms.plan.BackendAreaProject`) — the
paper's "replace the GIS library call with the kernel" rewiring expressed
inside the query engine.

:func:`run_cross_compare` executes any of the plans under a fresh
profiler and returns the similarity plus the Figure-2-style
decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.polygon import RectilinearPolygon
from repro.sdbms.plan import (
    AvgAggregate,
    BackendAreaProject,
    BinOp,
    Col,
    Const,
    Filter,
    Func,
    IndexNestLoopJoin,
    PlanNode,
    Project,
)
from repro.sdbms.profiler import Bucket, Profiler
from repro.sdbms.table import PolygonTable

__all__ = [
    "QueryResult",
    "build_unoptimized_plan",
    "build_optimized_plan",
    "build_backend_plan",
    "run_cross_compare",
]


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Similarity output of one cross-comparing query."""

    jaccard_mean: float
    pair_count: int
    ratio_sum: float
    profiler: Profiler


def build_unoptimized_plan(
    table_a: PolygonTable, table_b: PolygonTable
) -> PlanNode:
    """Figure 1(a): ST_Intersects join + direct intersection/union areas."""
    join = IndexNestLoopJoin(table_a, table_b)
    intersecting = Filter(
        join,
        Func("ST_Intersects", [Col("a"), Col("b")], bucket=Bucket.ST_INTERSECTS),
    )
    ratio = Project(
        intersecting,
        {
            "ai": Func(
                "ST_Area",
                [Func("ST_Intersection", [Col("a"), Col("b")])],
                bucket=Bucket.AREA_OF_INTERSECTION,
            ),
            "au": Func(
                "ST_Area",
                [Func("ST_Union", [Col("a"), Col("b")])],
                bucket=Bucket.AREA_OF_UNION,
            ),
        },
    )
    with_ratio = Project(
        ratio, {"ratio": BinOp("/", Col("ai"), Col("au"))}
    )
    # Pairs that only touch have ratio 0 and are excluded from J'
    # (Formula 1 requires a non-empty intersection).
    return AvgAggregate(
        with_ratio, "ratio", where=BinOp(">", Col("ai"), Const(0))
    )


def build_optimized_plan(
    table_a: PolygonTable, table_b: PolygonTable
) -> PlanNode:
    """Figure 1(b): MBR-only join + indirect union areas."""
    join = IndexNestLoopJoin(table_a, table_b)
    areas = Project(
        join,
        {
            "ai": Func(
                "ST_Area",
                [Func("ST_Intersection", [Col("a"), Col("b")])],
                bucket=Bucket.AREA_OF_INTERSECTION,
            ),
            "ap": Func("ST_Area", [Col("a")], bucket=Bucket.ST_AREA),
            "aq": Func("ST_Area", [Col("b")], bucket=Bucket.ST_AREA),
        },
    )
    with_ratio = Project(
        areas,
        {
            "ratio": BinOp(
                "/",
                Col("ai"),
                BinOp("-", BinOp("+", Col("ap"), Col("aq")), Col("ai")),
            )
        },
    )
    return AvgAggregate(
        with_ratio, "ratio", where=BinOp(">", Col("ai"), Const(0))
    )


def build_backend_plan(
    table_a: PolygonTable,
    table_b: PolygonTable,
    backend: str = "batch",
) -> PlanNode:
    """MBR-only join + one batched launch on an execution backend.

    Same shape as the optimized plan, but the per-pair exact overlay is
    replaced by a single :class:`BackendAreaProject` launch — identical
    similarity output (the backends are bit-for-bit exact), different
    executor.
    """
    join = IndexNestLoopJoin(table_a, table_b)
    areas = BackendAreaProject(join, backend=backend)
    with_ratio = Project(
        areas,
        {
            "ratio": BinOp(
                "/",
                Col("ai"),
                BinOp("-", BinOp("+", Col("ap"), Col("aq")), Col("ai")),
            )
        },
    )
    return AvgAggregate(
        with_ratio, "ratio", where=BinOp(">", Col("ai"), Const(0))
    )


def run_cross_compare(
    polygons_a: list[RectilinearPolygon],
    polygons_b: list[RectilinearPolygon],
    optimized: bool = True,
    profiler: Profiler | None = None,
    backend: str | None = None,
) -> QueryResult:
    """Execute a cross-comparing query over two polygon sets.

    ``backend=None`` runs the row-at-a-time plans (the SDBMS baselines);
    naming a backend runs the batched plan through that executor.
    """
    table_a = PolygonTable("set_a", polygons_a)
    table_b = PolygonTable("set_b", polygons_b)
    if backend is not None:
        plan = build_backend_plan(table_a, table_b, backend)
    else:
        build = build_optimized_plan if optimized else build_unoptimized_plan
        plan = build(table_a, table_b)
    prof = profiler or Profiler()
    with prof.run():
        rows = list(plan.rows(prof))
    result = rows[0]
    return QueryResult(
        jaccard_mean=result["avg"],
        pair_count=result["count"],
        ratio_sum=result["sum"],
        profiler=prof,
    )
