"""Polygon tables and the catalog — the storage layer of the mini SDBMS.

A :class:`PolygonTable` is a named, immutable collection of polygons with
an optional GiST-style spatial index over polygon MBRs (built with the
Hilbert bulk loader, timed under the profiler's ``Index_Build`` bucket —
the "build indexes" step of the paper's §2.2 workflow).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.errors import CatalogError
from repro.geometry.polygon import RectilinearPolygon
from repro.index.hilbert_rtree import bulk_load_polygons
from repro.index.rtree import RTree
from repro.io.polyfile import read_polygons
from repro.sdbms.profiler import Bucket, Profiler

__all__ = ["PolygonTable", "Catalog"]


class PolygonTable:
    """An immutable polygon relation."""

    def __init__(self, name: str, polygons: list[RectilinearPolygon]) -> None:
        if not name.isidentifier():
            raise CatalogError(f"table name must be an identifier: {name!r}")
        self.name = name
        self.polygons = list(polygons)
        self._index: RTree | None = None

    def __len__(self) -> int:
        return len(self.polygons)

    def __repr__(self) -> str:
        indexed = "indexed" if self._index is not None else "no index"
        return f"PolygonTable({self.name!r}, {len(self)} rows, {indexed})"

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_files(
        cls, name: str, paths: Iterable[str | Path]
    ) -> "PolygonTable":
        """COPY-style load from polygon text files."""
        polygons: list[RectilinearPolygon] = []
        for path in paths:
            polygons.extend(read_polygons(path))
        return cls(name, polygons)

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    def build_index(self, profiler: Profiler | None = None) -> RTree:
        """Build (or return) the spatial index over polygon MBRs."""
        if self._index is None:
            prof = profiler or Profiler()
            with prof.measure(Bucket.INDEX_BUILD):
                self._index = bulk_load_polygons(self.polygons)
        return self._index

    @property
    def index(self) -> RTree:
        """The spatial index (raises if not yet built)."""
        if self._index is None:
            raise CatalogError(
                f"table {self.name!r} has no index; call build_index() first"
            )
        return self._index

    def chunk(self, parts: int) -> list["PolygonTable"]:
        """Split into ``parts`` near-equal tables (PostGIS-M partitioning)."""
        if parts < 1:
            raise CatalogError(f"parts must be >= 1, got {parts}")
        step = -(-len(self.polygons) // parts) if self.polygons else 1
        out = []
        for k, lo in enumerate(range(0, max(len(self.polygons), 1), step)):
            out.append(
                PolygonTable(
                    f"{self.name}_part{k}", self.polygons[lo : lo + step]
                )
            )
        return out


class Catalog:
    """Name -> table registry."""

    def __init__(self) -> None:
        self._tables: dict[str, PolygonTable] = {}

    def register(self, table: PolygonTable) -> None:
        """Add a table; duplicate names are an error."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def get(self, name: str) -> PolygonTable:
        """Look up a table by name."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)
