"""Async comparison service: the layer that turns the batch kernel into
an interactive system.

Architecture note
-----------------
Everything below this package answers *one* ``compare_pairs`` call as
fast as one executor can; everything in this package is about answering
*many concurrent* calls from one warm executor:

* :mod:`repro.service.core` — :class:`ComparisonService`: warm backend
  pool (persistent multiprocess workers included), bounded admission
  queue with per-request timeout/cancellation, and the micro-batching
  coalescer sized by the cycle cost model;
* :mod:`repro.service.protocol` — the JSON-lines wire format (WKT
  polygons in, area arrays out);
* :mod:`repro.service.server` — ``repro serve``: the protocol over
  asyncio TCP or stdio, graceful drain on shutdown;
* :mod:`repro.service.client` — a small blocking client for scripts,
  smoke tests, and CI.

Service metrics (queue depth, batch occupancy, latency quantiles) live
with the other measurement code in :mod:`repro.metrics.service`.  The
planned distributed-sharding backend (ROADMAP) slots in *behind* this
queue: the service's admission and coalescing layer is transport-
agnostic, it only sees the :class:`repro.backends.Backend` protocol.
"""

from repro.service.client import ServiceClient
from repro.service.core import ComparisonService, ServiceConfig
from repro.service.server import serve

__all__ = ["ComparisonService", "ServiceConfig", "ServiceClient", "serve"]
