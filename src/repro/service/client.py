"""Blocking JSON-lines client for ``repro serve``.

A deliberately small synchronous client — the smoke tests, the CI
service job, and driver scripts need "connect, compare, read arrays"
without an event loop.  One client holds one connection and keeps one
request in flight at a time; to exercise the server's request
coalescing, run several clients concurrently (one per thread), which is
exactly what ``examples/service_smoke.py`` does.
"""

from __future__ import annotations

import json
import socket
from typing import Any

import numpy as np

from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service import protocol

__all__ = ["ServiceClient"]

_KIND_ERRORS: dict[str, type[Exception]] = {
    "overloaded": ServiceOverloadedError,
    "closed": ServiceClosedError,
    "timeout": TimeoutError,
}


class ServiceClient:
    """One blocking connection to a running comparison server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        self._next_id += 1
        request = {"id": self._next_id, "op": op, **fields}
        self._file.write(protocol.encode(request))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            error_cls = _KIND_ERRORS.get(response.get("kind"), ServiceError)
            raise error_cls(response.get("error", "unknown server error"))
        return response

    # ------------------------------------------------------------------
    def compare(
        self,
        pairs: list,
        config: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, np.ndarray]:
        """Exact areas for polygon ``pairs`` (as parallel NumPy arrays)."""
        fields: dict[str, Any] = {"pairs": protocol.pairs_to_wire(pairs)}
        if config is not None:
            fields["config"] = config
        if timeout is not None:
            fields["timeout"] = timeout
        response = self._call("compare", **fields)
        return {
            "intersection": np.asarray(response["intersection"], np.int64),
            "union": np.asarray(response["union"], np.int64),
            "area_p": np.asarray(response["area_p"], np.int64),
            "area_q": np.asarray(response["area_q"], np.int64),
            "jaccard": np.asarray(response["jaccard"], np.float64),
        }

    def ping(self) -> bool:
        return bool(self._call("ping").get("pong"))

    def stats(self) -> dict[str, Any]:
        """Service-metrics snapshot (see :mod:`repro.metrics.service`)."""
        return self._call("stats")["stats"]

    def metrics(self) -> str:
        """Prometheus text exposition of the server's metrics snapshot."""
        return self._call("metrics")["metrics"]

    def cache_clear(self) -> bool:
        """Drop every cache tier on the server (request + backend)."""
        return bool(self._call("cache_clear").get("cleared"))

    def shutdown(self) -> None:
        """Ask the server to stop accepting and drain; returns once acked."""
        self._call("shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
