"""The asyncio comparison service: warm backend pool + micro-batching.

Why a service layer exists at all: every ``compare_pairs`` call through
the registry constructs its executor from scratch — for the
multiprocess backend that means forking a worker pool and packing
shared-memory CSR tables *per call*.  Fine for batch jobs, fatal for an
interactive system answering many small concurrent requests.
:class:`ComparisonService` inverts the lifecycle:

* **warm backend pool** — the executor is resolved once at
  :meth:`~ComparisonService.start` and reused for every request; the
  multiprocess backend is automatically put in its persistent-worker
  mode (and pre-spawned), so process forking happens once per service
  lifetime;
* **admission control** — a bounded request queue; a full queue rejects
  immediately with :class:`~repro.errors.ServiceOverloadedError` instead
  of letting latency grow without bound, and every request can carry a
  timeout (the default comes from :class:`ServiceConfig`);
* **micro-batching coalescer** — the dispatcher merges small concurrent
  requests into one backend launch sized by the cycle cost model
  (:func:`repro.gpu.cost.recommend_batch_pairs`), then scatters the
  result slices back to the awaiting futures.  Merging changes *when*
  pairs are computed, never *what*: every pair's result is computed
  independently, so a coalesced dispatch is bit-for-bit identical to
  per-request calls (the service tests assert this).

The service is asyncio-native.  Backend launches are CPU-bound, so the
dispatcher runs them on a single worker thread via
``loop.run_in_executor`` — one launch at a time, mirroring the exclusive
device contract of :class:`repro.pipeline.device.GpuDevice` — which
keeps the event loop free to accept, reject, and time out requests while
a batch is in flight.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.backends import get_backend
from repro.backends.auto import profile_pairs
from repro.backends.base import Backend, Pairs
from repro.cache import LRUCacheStore, areas_nbytes, copy_areas, pairs_key
from repro.errors import (
    KernelError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.gpu.cost import recommend_batch_pairs
from repro.metrics.service import ServiceMetrics, ServiceSnapshot
from repro.obs.events import EVENTS
from repro.obs.trace import Tracer, activate, current_context, current_tracer
from repro.pixelbox.common import KernelStats, LaunchConfig
from repro.pixelbox.engine import BatchAreas

__all__ = ["ServiceConfig", "ComparisonService"]

# Queue sentinel: close() enqueues it behind every accepted request, so
# the dispatcher drains the backlog before exiting (graceful shutdown).
_STOP = object()

# Pairs sampled when profiling a request for the cost-model batch
# budget.  Profiling runs on the event loop, so it must stay O(1) in
# request size; the workload means it feeds converge long before this.
_PROFILE_SAMPLE = 256

_UNSET = object()


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Tuning knobs of the comparison service.

    Attributes
    ----------
    backend:
        Registry name of the warm executor (``repro backends``).
    backend_options:
        Factory keyword arguments (e.g. ``{"workers": 4}``).  For the
        multiprocess and auto backends, ``persistent=True`` is implied
        unless explicitly overridden.
    max_queue:
        Admission-control bound: requests beyond this many waiting are
        rejected with :class:`~repro.errors.ServiceOverloadedError`.
    max_batch_pairs:
        Hard cap on pairs per coalesced dispatch; ``None`` asks the
        cycle cost model per batch (:func:`recommend_batch_pairs`).
    coalesce_window:
        Seconds the dispatcher waits for more requests to merge once one
        is in hand and the queue runs dry.  Zero disables waiting
        (requests still coalesce when they are genuinely concurrent).
    default_timeout:
        Per-request timeout in seconds applied when ``submit`` is not
        given one; ``None`` means wait indefinitely.
    cache:
        Enable the service's content-addressed request cache: results
        are keyed by pair geometry + launch parameters, repeat requests
        are answered without a backend dispatch, and identical
        concurrent requests within one coalesced batch are computed
        once.  Off by default.
    cache_bytes:
        Byte budget of the request cache (LRU eviction past it).
    """

    backend: str = "batch"
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    max_queue: int = 256
    max_batch_pairs: int | None = None
    coalesce_window: float = 0.002
    default_timeout: float | None = None
    cache: bool = False
    cache_bytes: int = 64 * 2**20
    #: The CompareOptions this config was derived from (when built with
    #: :meth:`from_options`); the wire front-end overlays per-request
    #: launch parameters onto it so every service request parses into
    #: the same CompareRequest spec the CLI and library build.
    base_options: Any = None

    @classmethod
    def from_options(cls, options, **serving_knobs) -> "ServiceConfig":
        """Build a service config from one :class:`repro.CompareOptions`.

        The execution substrate (backend name, factory options, cluster
        hosts) comes from the shared request spec; ``serving_knobs`` are
        the service-only fields (``max_queue``, ``coalesce_window``,
        ``max_batch_pairs``, ``default_timeout``).
        """
        return cls(
            backend=options.backend,
            backend_options=options.resolved_backend_options(),
            cache=options.cache,
            cache_bytes=options.cache_bytes,
            base_options=options,
            **serving_knobs,
        )

    def compare_options(self):
        """The :class:`repro.CompareOptions` requests overlay onto."""
        if self.base_options is not None:
            return self.base_options
        from repro.api.options import CompareOptions

        return CompareOptions(
            backend=self.backend, backend_options=dict(self.backend_options)
        )

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch_pairs is not None and self.max_batch_pairs < 1:
            raise ServiceError(
                f"max_batch_pairs must be >= 1, got {self.max_batch_pairs}"
            )
        if self.coalesce_window < 0:
            raise ServiceError("coalesce_window cannot be negative")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ServiceError("default_timeout must be positive")
        if self.cache_bytes < 1:
            raise ServiceError(
                f"cache_bytes must be >= 1, got {self.cache_bytes}"
            )


@dataclass(slots=True)
class _Request:
    """One queued ``compare_pairs`` request."""

    pairs: Pairs
    config: LaunchConfig | None
    future: asyncio.Future
    enqueued: float
    #: Content-addressed request-cache key (``None`` with caching off).
    key: str | None = None
    #: ``(tracer, parent_span_id)`` captured at submission — the
    #: dispatcher task does not inherit the submitter's ContextVar, so
    #: the request carries its trace context explicitly.
    trace: tuple[Tracer, str | None] | None = None

    @property
    def size(self) -> int:
        return len(self.pairs)


def _slice_result(areas: BatchAreas, lo: int, hi: int) -> BatchAreas:
    """One request's slice of a merged dispatch.

    Kernel work counters cannot be attributed to a single rider of a
    merged batch, so each slice carries only its own pair count; the
    dispatch-level totals go to the service metrics instead.
    """
    return BatchAreas(
        np.ascontiguousarray(areas.intersection[lo:hi]),
        np.ascontiguousarray(areas.union[lo:hi]),
        np.ascontiguousarray(areas.area_p[lo:hi]),
        np.ascontiguousarray(areas.area_q[lo:hi]),
        KernelStats(pairs=hi - lo),
    )


class ComparisonService:
    """Async front-end serving ``compare_pairs`` from one warm backend.

    Usage::

        async with ComparisonService(ServiceConfig(backend="multiprocess")) as svc:
            areas = await svc.submit(pairs)

    ``submit`` calls may come from many tasks concurrently; the service
    coalesces them.  A custom ``backend`` instance can be injected for
    testing (it must satisfy the :class:`repro.backends.Backend`
    protocol); the service still owns its lifecycle and closes it.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: ServiceMetrics | None = None,
        backend: Backend | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or ServiceMetrics()
        self._injected_backend = backend
        self._backend: Backend | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        self._request_cache: LRUCacheStore | None = None
        if self.config.cache:
            self._request_cache = LRUCacheStore(
                self.config.cache_bytes, name="service.request"
            )
            self.metrics.attach_cache("service.request", self._request_cache)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ComparisonService":
        """Resolve and warm the backend, start the dispatcher."""
        if self._dispatcher is not None:
            return self
        if self._closed:
            raise ServiceClosedError("service already closed")
        loop = asyncio.get_running_loop()
        if self._injected_backend is not None:
            self._backend = self._injected_backend
        else:
            options = dict(self.config.backend_options)
            if self.config.backend in ("multiprocess", "auto"):
                # The warm pool is the point: pooled executors keep
                # their workers across dispatches for the service's
                # lifetime (auto threads the flag to its delegates).
                options.setdefault("persistent", True)
            try:
                self._backend = get_backend(self.config.backend, **options)
            except (TypeError, KernelError) as exc:
                # e.g. `repro serve --backend batch --workers 4`: the
                # batch factory takes no options.  Fail with the real
                # story, not a bare constructor TypeError.
                raise ServiceError(
                    f"backend {self.config.backend!r} rejected options "
                    f"{sorted(options)}: {exc}"
                ) from None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service"
        )
        caps = getattr(self._backend, "capabilities", None)
        if callable(caps) and caps().persistent_pooling:
            # Pre-spawn pooled state off-loop — worker processes for the
            # multiprocess backend, worker connections (and the HELLO
            # handshake) for the cluster — so the first request does not
            # pay the cost the warm pool exists to avoid.  A cluster
            # with no reachable workers must fail here, at startup, not
            # on the first request.
            warm = getattr(self._backend, "warm", None)
            if callable(warm):
                try:
                    await loop.run_in_executor(self._executor, warm)
                except ReproError as exc:
                    await self.close(drain=False)
                    raise ServiceError(
                        f"backend {self.config.backend!r} failed to warm: "
                        f"{exc}"
                    ) from exc
        worker_stats = getattr(self._backend, "worker_stats", None)
        if callable(worker_stats):
            # Cluster backends: per-worker shard-cache hit counters, read
            # at snapshot time so the stats op and the metrics export see
            # live numbers (the coordinator used to drop these).
            self.metrics.attach_worker_stats(worker_stats)
        cache_stats = getattr(self._backend, "cache_stats", None)
        if callable(cache_stats):
            # Surface backend-owned cache tiers (coordinator shard/merge,
            # pooled shard-result stores) in the same metrics snapshot as
            # the request tier; read lazily so counters stay live.
            for tier in cache_stats():
                self.metrics.attach_cache(
                    tier, lambda t=tier: cache_stats().get(t, {})
                )
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._dispatcher = loop.create_task(self._dispatch_loop())
        return self

    async def __aenter__(self) -> "ComparisonService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self, drain: bool = True) -> None:
        """Stop accepting requests, then shut down.

        ``drain=True`` (the default) answers every already-accepted
        request before the backend is released; ``drain=False`` cancels
        pending requests immediately (their submitters see
        ``CancelledError``).
        """
        if self._closed and self._dispatcher is None:
            return
        self._closed = True
        if self._dispatcher is not None:
            if drain:
                # The sentinel lands behind every accepted request; the
                # dispatcher exits only after answering all of them.
                await self._queue.put(_STOP)
                await self._dispatcher
            else:
                self._dispatcher.cancel()
                try:
                    await self._dispatcher
                except asyncio.CancelledError:
                    pass
                while not self._queue.empty():
                    stale = self._queue.get_nowait()
                    if stale is not _STOP and not stale.future.done():
                        stale.future.cancel()
            self._dispatcher = None
        if self._backend is not None:
            close = getattr(self._backend, "close", None)
            if callable(close):
                close()
            self._backend = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def submit(
        self,
        pairs: Pairs,
        config: LaunchConfig | None = None,
        timeout: float | None | object = _UNSET,
    ) -> BatchAreas:
        """Enqueue one comparison request and await its result.

        Raises
        ------
        ServiceClosedError
            The service is not running (never started, or closing).
        ServiceOverloadedError
            Admission control rejected the request (queue full).
        asyncio.TimeoutError
            The per-request timeout elapsed (queued or mid-batch); the
            request is abandoned and its slot reclaimed.
        """
        if self._closed or self._queue is None:
            raise ServiceClosedError("service is not accepting requests")
        if timeout is _UNSET:
            timeout = self.config.default_timeout
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        pairs = list(pairs)
        tracer = current_tracer()
        ctx = current_context()
        trace = (tracer, ctx[1]) if tracer is not None else None
        key: str | None = None
        if self._request_cache is not None:
            key = pairs_key(pairs, config or LaunchConfig())
            cached = self._request_cache.get(key)
            EVENTS.record(
                "cache.lookup",
                tier="service.request",
                hit=cached is not None,
                **({"trace_id": tracer.trace_id} if tracer is not None else {}),
            )
            if cached is not None:
                # Served at admission: no queue slot, no dispatch.  The
                # request still counts as accepted + completed so the
                # throughput counters describe real traffic.
                self.metrics.note_request_cache(True)
                self.metrics.note_enqueued(self._queue.qsize())
                self.metrics.note_completed(time.perf_counter() - started)
                return copy_areas(cached)
            self.metrics.note_request_cache(False)
        request = _Request(
            pairs=pairs,
            config=config,
            future=loop.create_future(),
            enqueued=started,
            key=key,
            trace=trace,
        )
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            self.metrics.note_rejected()
            EVENTS.record(
                "service.reject", pairs=len(pairs), depth=self._queue.qsize()
            )
            raise ServiceOverloadedError(
                f"request queue at capacity ({self.config.max_queue})"
            ) from None
        self.metrics.note_enqueued(self._queue.qsize())
        EVENTS.record(
            "service.admit", pairs=len(pairs), depth=self._queue.qsize()
        )
        try:
            if timeout is None:
                return await request.future
            return await asyncio.wait_for(request.future, timeout)
        except asyncio.TimeoutError:
            self.metrics.note_timeout()
            raise
        except asyncio.CancelledError:
            self.metrics.note_cancelled()
            if not request.future.done():
                request.future.cancel()
            raise

    def snapshot(self) -> ServiceSnapshot:
        """Current service metrics."""
        return self.metrics.snapshot()

    @property
    def backend(self) -> Backend | None:
        """The warm backend instance (``None`` before start/after close)."""
        return self._backend

    def clear_caches(self) -> None:
        """Drop every cache tier (request cache + backend-owned tiers)."""
        if self._request_cache is not None:
            self._request_cache.clear()
        clear = getattr(self._backend, "clear_caches", None)
        if callable(clear):
            clear()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _serve_cached(self, live: list[_Request]) -> list[_Request]:
        """Answer queued requests the cache can already satisfy."""
        still: list[_Request] = []
        now = time.perf_counter()
        for r in live:
            # contains() first so a request that missed at admission does
            # not count a second store-level miss here.
            if r.key is not None and self._request_cache.contains(r.key):
                cached = self._request_cache.get(r.key)
                if cached is not None:
                    if not r.future.done():
                        r.future.set_result(copy_areas(cached))
                        self.metrics.note_request_cache(True)
                        self.metrics.note_completed(now - r.enqueued)
                    continue
            still.append(r)
        return still

    @staticmethod
    def _dedupe(
        live: list[_Request],
    ) -> tuple[list[_Request], dict[int, list[_Request]]]:
        """Collapse identical keyed requests within one dispatch.

        Returns ``(leaders, riders)``: the requests whose pairs actually
        enter the merged launch, and for each leader (by identity) the
        requests that will be answered with copies of its slice.
        """
        leaders: list[_Request] = []
        riders: dict[int, list[_Request]] = {}
        by_key: dict[str, _Request] = {}
        for r in live:
            leader = by_key.get(r.key) if r.key is not None else None
            if leader is not None:
                riders.setdefault(id(leader), []).append(r)
                continue
            if r.key is not None:
                by_key[r.key] = r
            leaders.append(r)
        return leaders, riders

    def _execute_batch(
        self,
        merged: Pairs,
        config: LaunchConfig | None,
        trace: tuple[Tracer, str | None] | None,
        requests: int,
    ) -> BatchAreas:
        """One backend launch (executor thread), traced when requested.

        The dispatcher task was created long before any request, so the
        submitter's trace context arrives here explicitly on the batch
        leader; re-activating it makes the backend's spans (cluster
        dispatch, remote worker kernels) children of the request tree.
        """
        if trace is None:
            return self._backend.compare_pairs(merged, config)
        tracer, parent = trace
        with activate(tracer, parent):
            with tracer.span(
                "service.dispatch", requests=requests, pairs=len(merged)
            ):
                return self._backend.compare_pairs(merged, config)

    def _batch_budget(self, head: _Request) -> int:
        """Pair budget for the dispatch opened by ``head``."""
        if self.config.max_batch_pairs is not None:
            return self.config.max_batch_pairs
        cfg = head.config or LaunchConfig()
        mean_edges, mean_pixels = profile_pairs(head.pairs[:_PROFILE_SAMPLE])
        return recommend_batch_pairs(
            mean_edges, mean_pixels, cfg.threshold, cfg.block_size
        )

    async def _coalesce(
        self, head: _Request, batch: list[_Request]
    ) -> tuple[list[_Request], _Request | None, bool]:
        """Merge queued compatible requests behind ``head`` into ``batch``.

        ``batch`` is the caller's ``held`` list (already containing
        ``head``) so requests taken off the queue here stay visible to
        the dispatcher's cancellation cleanup.  Returns ``(batch, carry,
        stopping)``: the requests to dispatch together, an incompatible
        request to open the next batch with, and whether the stop
        sentinel was consumed.
        """
        total = head.size
        budget = self._batch_budget(head)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.coalesce_window
        while total < budget:
            try:
                nxt = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if nxt is _STOP:
                return batch, None, True
            if nxt.future.done():  # cancelled or timed out while queued
                continue
            if nxt.config != head.config:
                # Different launch parameters cannot share a dispatch;
                # the mismatched request opens the next batch instead.
                return batch, nxt, False
            batch.append(nxt)
            total += nxt.size
        return batch, None, False

    async def _dispatch_loop(self) -> None:
        """Consume the queue forever: coalesce, launch, scatter.

        ``held`` tracks the requests this coroutine has taken off the
        queue but not yet answered; if the dispatcher itself is
        cancelled (``close(drain=False)``) they are cancelled too, so no
        submitter is left awaiting a future nobody will resolve.
        """
        loop = asyncio.get_running_loop()
        carry: _Request | None = None
        held: list[_Request] = []
        stopping = False
        try:
            while True:
                if carry is not None:
                    head, carry = carry, None
                elif stopping:
                    return
                else:
                    head = await self._queue.get()
                    if head is _STOP:
                        return
                if head.future.done():
                    continue
                held = [head]
                try:
                    batch, carry, saw_stop = await self._coalesce(head, held)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - poison request
                    # A request whose pairs cannot even be profiled
                    # (e.g. non-polygon objects) fails itself — the
                    # dispatcher must survive to serve everyone else.
                    self.metrics.note_failure()
                    for r in held:
                        if not r.future.done():
                            r.future.set_exception(exc)
                    held = []
                    continue
                stopping = stopping or saw_stop
                live = [r for r in batch if not r.future.done()]
                held = list(live)
                self.metrics.note_queue_depth(self._queue.qsize())
                if self._request_cache is not None:
                    # Requests that missed at admission may have been
                    # filled while they waited in the queue; serve them
                    # now rather than recomputing.
                    live = self._serve_cached(live)
                    held = list(live)
                if not live:
                    held = []
                    continue
                # Within one dispatch, identical keyed requests collapse
                # to a single leader; riders are answered with copies of
                # the leader's slice after the launch.
                leaders, riders = self._dedupe(live)
                merged = [pair for r in leaders for pair in r.pairs]
                EVENTS.record(
                    "service.coalesce",
                    requests=len(live),
                    leaders=len(leaders),
                    pairs=len(merged),
                )
                call = functools.partial(
                    self._execute_batch, merged, leaders[0].config,
                    leaders[0].trace, len(live),
                )
                try:
                    areas = await loop.run_in_executor(self._executor, call)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - goes to callers
                    self.metrics.note_failure()
                    for r in live:
                        if not r.future.done():
                            r.future.set_exception(exc)
                    held = []
                    continue
                self.metrics.note_batch(requests=len(live), pairs=len(merged))
                self.metrics.note_kernel(areas.stats.as_dict())
                offset = 0
                now = time.perf_counter()
                for r in leaders:
                    lo, offset = offset, offset + r.size
                    part = _slice_result(areas, lo, offset)
                    if self._request_cache is not None and r.key is not None:
                        entry = copy_areas(part)
                        self._request_cache.put(
                            r.key, entry, areas_nbytes(entry)
                        )
                    if not r.future.done():  # cancelled while batch ran
                        r.future.set_result(part)
                        self.metrics.note_completed(now - r.enqueued)
                    for rider in riders.get(id(r), ()):
                        if not rider.future.done():
                            rider.future.set_result(copy_areas(part))
                            self.metrics.note_request_cache(True)
                            self.metrics.note_completed(now - rider.enqueued)
                held = []
        except asyncio.CancelledError:
            for r in held + ([carry] if carry is not None else []):
                if not r.future.done():
                    r.future.cancel()
            raise
