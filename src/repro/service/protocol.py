"""JSON-lines wire protocol of ``repro serve``.

One request per line, one response per line, UTF-8 JSON — consumable
from any language with a socket and a JSON parser, no web framework
required.  Polygons travel as WKT ``POLYGON`` literals (the format the
paper's toolchains already exchange, see :mod:`repro.geometry.wkt`).

Request shape::

    {"id": 7, "op": "compare", "pairs": [[wkt_p, wkt_q], ...],
     "config": {"block_size": 64}, "timeout": 5.0}
    {"id": 8, "op": "ping" | "stats" | "metrics" | "cache_clear" | "shutdown"}

Response shape::

    {"id": 7, "ok": true, "intersection": [...], "union": [...],
     "area_p": [...], "area_q": [...], "jaccard": [...]}
    {"id": 8, "ok": false, "kind": "overloaded", "error": "..."}

``kind`` classifies failures so clients can retry sensibly:
``bad-request`` (malformed input — do not retry), ``overloaded``
(admission control — retry with backoff), ``timeout``, ``closed``
(service shutting down), ``internal``.

This module owns the framing (encode/parse/validate, payload and error
rendering); the server decodes each ``compare`` body into the shared
declarative spec via :func:`repro.api.request.request_from_wire`, so
wire requests, CLI flags, and library calls all build the identical
:class:`~repro.api.request.CompareRequest`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.geometry.wkt import polygon_to_wkt
from repro.pixelbox.engine import BatchAreas

__all__ = [
    "OPS",
    "encode",
    "parse_request",
    "validate_request",
    "decode_request",
    "pairs_to_wire",
    "compare_payload",
    "error_payload",
]

OPS = ("compare", "ping", "stats", "metrics", "cache_clear", "shutdown")


def encode(message: dict[str, Any]) -> bytes:
    """One wire line for ``message`` (compact JSON + newline)."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def parse_request(line: bytes | str) -> dict[str, Any]:
    """JSON-parse one request line (no field validation yet).

    Split from :func:`validate_request` so the server can recover the
    request ``id`` for the error response even when the request body is
    invalid.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed JSON request: {exc}") from None
    if not isinstance(message, dict):
        raise ServiceError("request must be a JSON object")
    return message


def validate_request(message: dict[str, Any]) -> dict[str, Any]:
    """Check a parsed request's op and required fields."""
    op = message.get("op")
    if op not in OPS:
        raise ServiceError(f"unknown op {op!r} (expected one of {OPS})")
    if op == "compare":
        if not isinstance(message.get("pairs"), list):
            raise ServiceError("compare request needs a 'pairs' list")
        timeout = message.get("timeout")
        if timeout is not None and (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
            or timeout <= 0
        ):
            raise ServiceError(
                f"'timeout' must be a positive number, got {timeout!r}"
            )
    return message


def decode_request(line: bytes | str) -> dict[str, Any]:
    """Parse and validate one request line."""
    return validate_request(parse_request(line))


def pairs_to_wire(pairs: list) -> list[list[str]]:
    """Polygon pair list -> WKT pair list (client side)."""
    return [[polygon_to_wkt(p), polygon_to_wkt(q)] for p, q in pairs]


def compare_payload(areas: BatchAreas) -> dict[str, Any]:
    """Response payload for one answered compare request."""
    return {
        "intersection": areas.intersection.tolist(),
        "union": areas.union.tolist(),
        "area_p": areas.area_p.tolist(),
        "area_q": areas.area_q.tolist(),
        "jaccard": areas.ratios().tolist(),
    }


def error_payload(exc: BaseException) -> dict[str, Any]:
    """Failure classification for the wire (see module docstring)."""
    if isinstance(exc, ServiceOverloadedError):
        kind = "overloaded"
    elif isinstance(exc, ServiceClosedError):
        kind = "closed"
    elif isinstance(exc, asyncio.TimeoutError):
        kind = "timeout"
    elif isinstance(exc, ReproError):
        kind = "bad-request"
    else:
        kind = "internal"
    return {"ok": False, "kind": kind, "error": str(exc) or type(exc).__name__}
