"""The ``repro serve`` front-end: JSON-lines over TCP or stdio.

No web framework — ``asyncio.start_server`` plus the line protocol in
:mod:`repro.service.protocol` is enough for an interactive comparison
service.  Each connection may pipeline requests: every received line is
handled in its own task, so concurrent requests from one *or many*
connections reach :class:`~repro.service.core.ComparisonService`
together and coalesce into merged dispatches.

Shutdown is graceful by construction: a ``shutdown`` op (or closing
stdin in stdio mode) stops the listener, then the service drains every
accepted request before the warm backend is released.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
from typing import Any, Callable

from repro.api.request import request_from_wire
from repro.obs.export import MetricsServer, render_snapshot
from repro.service import protocol
from repro.service.core import ComparisonService, ServiceConfig

__all__ = ["serve"]


async def _answer(
    service: ComparisonService,
    message: dict[str, Any],
    shutdown: asyncio.Event,
) -> dict[str, Any]:
    """Compute the response body for one decoded request."""
    op = message["op"]
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {"ok": True, "stats": service.snapshot().as_dict()}
    if op == "metrics":
        return {"ok": True, "metrics": render_snapshot(service.snapshot())}
    if op == "cache_clear":
        service.clear_caches()
        return {"ok": True, "cleared": True}
    if op == "shutdown":
        shutdown.set()
        return {"ok": True, "stopping": True}
    # Each compare line parses into the same declarative CompareRequest
    # the CLI and the library build; the service's own CompareOptions
    # are the base the per-request config overlays.
    request = request_from_wire(message, service.config.compare_options())
    kwargs: dict[str, Any] = {}
    if "timeout" in message:
        kwargs["timeout"] = message["timeout"]
    areas = await service.submit(
        list(request.pairs), request.launch_config(), **kwargs
    )
    return {"ok": True, **protocol.compare_payload(areas)}


async def _handle_line(
    service: ComparisonService,
    line: bytes,
    writer: asyncio.StreamWriter,
    write_lock: asyncio.Lock,
    shutdown: asyncio.Event,
) -> None:
    """Decode, serve, and answer one request line."""
    request_id = None
    try:
        message = protocol.parse_request(line)
        request_id = message.get("id")
        response = await _answer(
            service, protocol.validate_request(message), shutdown
        )
    except Exception as exc:  # noqa: BLE001 - every failure goes on the wire
        response = protocol.error_payload(exc)
    response["id"] = request_id
    async with write_lock:
        writer.write(protocol.encode(response))
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass


async def _connection(
    service: ComparisonService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    shutdown: asyncio.Event,
) -> None:
    """Serve one connection; each line becomes a concurrent task.

    The read loop races ``readline`` against the shutdown event instead
    of relying on task cancellation, so a shutdown leaves every
    connection to flush its in-flight responses and close its writer
    normally — no cancelled-task noise at loop teardown.
    """
    write_lock = asyncio.Lock()
    pending: set[asyncio.Task] = set()
    stop = asyncio.ensure_future(shutdown.wait())
    try:
        while not shutdown.is_set():
            read = asyncio.ensure_future(reader.readline())
            done, _ = await asyncio.wait(
                {read, stop}, return_when=asyncio.FIRST_COMPLETED
            )
            if read not in done:
                read.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await read
                break
            line = read.result()
            if not line:
                break
            task = asyncio.ensure_future(
                _handle_line(service, line, writer, write_lock, shutdown)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    finally:
        stop.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await stop
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass


async def _stdio_streams() -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Asyncio stream pair over this process's stdin/stdout."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, proto = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, proto, reader, loop)
    return reader, writer


async def serve(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    stdio: bool = False,
    announce: Callable[[str], None] | None = None,
    metrics: bool = False,
    metrics_host: str = "127.0.0.1",
    metrics_port: int = 0,
) -> None:
    """Run the comparison service until shutdown; returns after draining.

    TCP mode announces ``repro-serve ready HOST PORT`` (via ``announce``,
    default stdout) once the socket is bound — with ``port=0`` the
    kernel-assigned port is what's announced, which is how the smoke
    tests find the server.  Stdio mode serves one JSON-lines session on
    stdin/stdout and exits when stdin closes.

    ``metrics=True`` additionally binds a plain-HTTP ``/metrics``
    endpoint (stdlib ``http.server``, Prometheus text exposition) and
    announces it as ``repro-serve metrics HOST PORT`` right after the
    ready line.  The endpoint renders a fresh service snapshot per
    scrape and shuts down with the service.
    """
    announce = announce or (lambda text: print(text, flush=True))
    shutdown = asyncio.Event()
    async with ComparisonService(config) as service:
        exporter: MetricsServer | None = None
        if metrics:
            exporter = MetricsServer(
                lambda: render_snapshot(service.snapshot()),
                host=metrics_host,
                port=metrics_port,
            )
            exporter.start()
        try:
            await _serve_streams(
                service, host, port, stdio, announce, shutdown, exporter
            )
        finally:
            if exporter is not None:
                exporter.close()


async def _serve_streams(
    service: ComparisonService,
    host: str,
    port: int,
    stdio: bool,
    announce: Callable[[str], None],
    shutdown: asyncio.Event,
    exporter: MetricsServer | None,
) -> None:
    """The listener half of :func:`serve` (split for the metrics wrap)."""

    def announce_metrics() -> None:
        if exporter is not None:
            mhost, mport = exporter.address
            announce(f"repro-serve metrics {mhost} {mport}")

    if stdio:
        reader, writer = await _stdio_streams()
        announce("repro-serve ready stdio")
        announce_metrics()
        await _connection(service, reader, writer, shutdown)
        return
    connections: set[asyncio.Task] = set()

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        connections.add(task)
        try:
            await _connection(service, reader, writer, shutdown)
        finally:
            connections.discard(task)

    server = await asyncio.start_server(on_connection, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    announce(f"repro-serve ready {host} {bound_port}")
    announce_metrics()
    async with server:
        await shutdown.wait()
    if connections:
        # Every handler saw the shutdown event (its read loop races
        # it); wait for them to flush and close before draining.
        await asyncio.gather(*connections, return_exceptions=True)
    # Leaving the `async with service` block drains every accepted
    # request, then releases the warm backend.
