"""``Session``: the library's front door, owning one backend lifecycle.

The paper's system exposes one logical operation — cross-compare two
spatial result sets on whatever mix of CPU/GPU resources is available.
:class:`Session` is that operation as an object:

* it owns the **backend lifecycle** — the executor named by its
  :class:`~repro.api.options.CompareOptions` is resolved lazily on first
  use, kept warm across calls (pooled executors run in persistent mode,
  exactly like the comparison service's warm pool), pre-spawnable with
  :meth:`warm`, and released by :meth:`close` / the context manager;
* every comparison — explicit pairs (:meth:`compare`), two polygon sets
  (:meth:`compare_sets`), two result-set directories
  (:meth:`compare_files`), an incremental :meth:`stream`, an async
  :meth:`submit`, or a pre-built declarative spec (:meth:`run`) — goes
  through the **same** :class:`~repro.api.request.CompareRequest`
  the CLI and the service protocol parse into;
* :meth:`explain` resolves any request into its execution plan (chosen
  backend, cost-model sizing, capability checks) **without executing**.

Usage::

    from repro import Session, CompareOptions

    with Session(CompareOptions(backend="multiprocess")) as session:
        result = session.compare_files("results_a", "results_b")
        areas = session.compare(pairs)          # raw per-pair areas
        for outcome in session.stream(pairs):   # incremental, per shard
            ...

Results are bit-for-bit identical across every backend and every entry
point — execution choices are performance knobs, never semantics — and
bit-for-bit identical to the legacy ``cross_compare*`` functions, which
are now deprecation shims over this class.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import functools
import threading
import time
from pathlib import Path
from typing import AsyncIterator, Iterator, Sequence

from repro.api.options import CompareOptions
from repro.api.plan import ResolvedPlan, explain as _explain
from repro.api.request import CompareRequest, Pair
from repro.api.result import CompareResult, PairOutcome
from repro.cache import (
    LRUCacheStore,
    SingleFlight,
    areas_nbytes,
    calibration_fingerprint,
    copy_areas,
    request_key,
)
from repro.errors import RequestError, SessionClosedError
from repro.metrics.jaccard import jaccard_from_areas
from repro.obs.events import EVENTS
from repro.obs.trace import Tracer, activate, current_tracer
from repro.pixelbox.engine import BatchAreas

__all__ = ["Session"]

# Backends whose factories accept a persistence knob; a session is a
# long-lived owner, so (like the comparison service) it defaults their
# pools to session lifetime instead of per-call lifetime.
_POOLED_BACKENDS = ("multiprocess", "auto")


def _profile_calibration(options: CompareOptions):
    """The options' cost profile as a loaded calibration, or ``None``.

    Loaded fresh per resolution and threaded explicitly — never
    installed process-wide.  Two sessions with different profiles in one
    process therefore plan independently, and closing a session leaves
    global calibration state untouched (it used to call
    ``set_calibration()``, silently corrupting every other session's
    cost model).
    """
    if options.cost_profile is None:
        return None
    from repro.gpu.cost import load_calibration

    return load_calibration(options.cost_profile)


def _factory_options(options: CompareOptions) -> dict:
    """Backend factory kwargs for ``options``, calibration included.

    Shared by the warm-backend resolution and per-request matching so
    the "does this request reuse the warm executor" comparison sees the
    same dict on both sides.
    """
    factory_options = options.resolved_backend_options()
    if options.backend == "auto" and options.cost_profile is not None:
        factory_options.setdefault(
            "calibration", _profile_calibration(options)
        )
    return factory_options


class Session:
    """One warm execution context for many comparisons.

    Parameters
    ----------
    options:
        The session-wide :class:`CompareOptions` (defaults apply when
        ``None``).  Per-call ``options`` may override it request by
        request; requests that match the session backend reuse the warm
        executor, others resolve a throwaway one.
    **overrides:
        Convenience field overrides, e.g. ``Session(backend="auto")``
        instead of ``Session(CompareOptions(backend="auto"))``.
    """

    def __init__(
        self, options: CompareOptions | None = None, **overrides
    ) -> None:
        base = options or CompareOptions()
        self.options = base.replace(**overrides) if overrides else base
        self._backend = None
        self._closed = False
        # Front-door request cache (created lazily by the first request
        # whose options enable caching) plus the stampede guard that
        # keeps N concurrent identical requests at one computation.
        self._request_cache: LRUCacheStore | None = None
        self._flight = SingleFlight()
        self._lock = threading.Lock()
        # One launch at a time on the warm backend (the exclusive-device
        # contract GpuDevice enforces for the pipeline); concurrent
        # submit()/compare() calls from many threads serialize here.
        self._dispatch_lock = threading.Lock()
        # The tracer of the most recent traced request (None until a
        # request runs with CompareOptions(trace=True)).
        self.last_trace: Tracer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                "session is closed; create a new Session (close() released "
                "its backend and the session cannot be reused)"
            )

    @property
    def backend(self):
        """The warm backend instance, resolved on first access."""
        self._check_open()
        with self._lock:
            if self._backend is None:
                from repro.backends import get_backend

                factory_options = _factory_options(self.options)
                if self.options.backend in _POOLED_BACKENDS:
                    factory_options.setdefault("persistent", True)
                self._backend = get_backend(
                    self.options.backend, **factory_options
                )
            return self._backend

    def warm(self) -> "Session":
        """Resolve the backend and pre-spawn its pooled state.

        For pooled executors (worker processes, cluster connections)
        this pays the spin-up cost now instead of on the first request —
        and a cluster with no reachable workers fails here, not later.
        """
        backend = self.backend
        warm = getattr(backend, "warm", None)
        if callable(warm):
            warm()
        return self

    def close(self) -> None:
        """Release the backend; idempotent.  The session cannot be reused."""
        with self._lock:
            backend, self._backend = self._backend, None
            self._closed = True
        if backend is not None:
            backend.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # ------------------------------------------------------------------
    # Request construction + execution
    # ------------------------------------------------------------------
    def _options_for(self, options: CompareOptions | None) -> CompareOptions:
        return options if options is not None else self.options

    def _backend_for(self, options: CompareOptions):
        """The executor for one request (warm when the spec matches)."""
        if (
            options.backend == self.options.backend
            and _factory_options(options) == _factory_options(self.options)
        ):
            return self.backend, False
        from repro.backends import get_backend

        return (
            get_backend(options.backend, **_factory_options(options)),
            True,
        )

    def run(self, request: CompareRequest):
        """Execute a declarative request (dispatch on its kind).

        ``pairs`` requests return raw :class:`BatchAreas`; ``sets`` and
        ``files`` requests return a :class:`CompareResult`.  With
        ``options.trace`` the request runs under a request-scoped
        :class:`~repro.obs.Tracer`; the finished tracer is kept on
        :attr:`last_trace`, ``CompareResult`` answers carry its trace
        id, and ``options.trace_out`` appends every span and lifecycle
        event to a JSON-lines file.
        """
        self._check_open()
        if request.options.trace:
            return self._run_traced(request)
        return self._dispatch(request)

    def _dispatch(self, request: CompareRequest):
        if request.kind == "pairs":
            return self._run_pairs(request)
        if request.kind == "sets":
            return self._run_sets(request)
        return self._run_files(request)

    def _run_traced(self, request: CompareRequest):
        """Run one request under a tracer (reusing any ambient one)."""
        ambient = current_tracer()
        tracer = ambient if ambient is not None else Tracer()
        sink = None
        if request.options.trace_out is not None:
            sink = open(request.options.trace_out, "a", encoding="utf-8")
            EVENTS.add_sink(sink)
        try:
            with activate(tracer):
                with tracer.span(
                    "session.run",
                    kind=request.kind,
                    backend=request.options.backend,
                ):
                    result = self._dispatch(request)
        finally:
            self.last_trace = tracer
            if ambient is None:
                # Root of the trace: publish the finished span records
                # to the event log (ring + any attached sinks).
                EVENTS.extend(
                    [{"kind": "span", **r.as_dict()} for r in tracer.records()]
                )
            if sink is not None:
                EVENTS.remove_sink(sink)
                sink.close()
        if isinstance(result, CompareResult):
            result = dataclasses.replace(result, trace_id=tracer.trace_id)
        return result

    def _store_for(self, options: CompareOptions) -> LRUCacheStore | None:
        """The request-cache store, iff ``options`` enable caching."""
        if not options.cache:
            return None
        with self._lock:
            if self._request_cache is None:
                self._request_cache = LRUCacheStore(
                    options.cache_bytes, name="session.request"
                )
            return self._request_cache

    def _request_cache_key(self, request: CompareRequest) -> str:
        """Canonical request JSON + effective cost-profile fingerprint.

        The fingerprint is the same calibration ``explain()`` resolves,
        so a profile change invalidates cached answers exactly when it
        would change the plan — the two can never disagree.
        """
        calibration = _profile_calibration(request.options)
        if calibration is None:
            from repro.gpu.cost import active_calibration

            calibration = active_calibration()
        return request_key(
            request, extra=(calibration_fingerprint(calibration),)
        )

    def _run_pairs(self, request: CompareRequest) -> BatchAreas:
        store = self._store_for(request.options)
        if store is None:
            return self._execute_pairs(request)
        key = self._request_cache_key(request)
        cached = store.get(key)
        tracer = current_tracer()
        if tracer is not None:
            EVENTS.record(
                "cache.lookup",
                tier="session.request",
                hit=cached is not None,
                trace_id=tracer.trace_id,
            )
        if cached is not None:
            return copy_areas(cached)

        value, leader = self._flight.do(
            key, lambda: self._execute_pairs(request)
        )
        if leader:
            entry = copy_areas(value)
            store.put(key, entry, areas_nbytes(entry))
            return value
        # Followers share the leader's flight but must not share its
        # arrays: a caller may mutate what it gets back.
        return copy_areas(value)

    def _execute_pairs(self, request: CompareRequest) -> BatchAreas:
        backend, throwaway = self._backend_for(request.options)
        tracer = current_tracer()
        span = (
            tracer.span(
                "backend.compare_pairs",
                backend=request.options.backend,
                pairs=len(request.pairs),
            )
            if tracer is not None
            else contextlib.nullcontext()
        )
        try:
            with span:
                if throwaway:
                    return backend.compare_pairs(
                        list(request.pairs), request.launch_config()
                    )
                with self._dispatch_lock:
                    return backend.compare_pairs(
                        list(request.pairs), request.launch_config()
                    )
        finally:
            if throwaway:
                backend.close()

    def _run_sets(self, request: CompareRequest) -> CompareResult:
        from repro.index.join import mbr_pair_join

        set_a, set_b = list(request.set_a), list(request.set_b)
        start = time.perf_counter()
        tracer = current_tracer()
        join_span = (
            tracer.span("index.mbr_join", count_a=len(set_a), count_b=len(set_b))
            if tracer is not None
            else contextlib.nullcontext()
        )
        with join_span:
            join = mbr_pair_join(set_a, set_b)
        areas = self._run_pairs(
            CompareRequest.from_pairs(
                join.pairs(set_a, set_b), request.options
            )
        )
        pw = jaccard_from_areas(
            areas, join.left_idx, join.right_idx, len(set_a), len(set_b)
        )
        return CompareResult.from_pairwise(
            pw, wall_seconds=time.perf_counter() - start
        )

    def _run_files(self, request: CompareRequest) -> CompareResult:
        from repro.pipeline.device import GpuDevice
        from repro.pipeline.engine import run_pipelined

        options = request.options
        backend, throwaway = self._backend_for(options)
        try:
            # The session's warm executor *is* the pipeline's aggregator
            # device: lifecycle stays owned here, the pipeline only
            # borrows the instance for the run.
            device = GpuDevice(backend_instance=backend)
            tracer = current_tracer()
            span = (
                tracer.span("pipeline.run", backend=options.backend)
                if tracer is not None
                else contextlib.nullcontext()
            )
            with span:
                outcome = run_pipelined(
                    request.dir_a,
                    request.dir_b,
                    options.pipeline_options(devices=[device]),
                )
        finally:
            if throwaway:
                backend.close()
        return CompareResult.from_outcome(outcome)

    # ------------------------------------------------------------------
    # Front-door methods (thin wrappers building the same request spec)
    # ------------------------------------------------------------------
    def compare(
        self, pairs: Sequence[Pair], options: CompareOptions | None = None
    ) -> BatchAreas:
        """Exact areas for explicit candidate pairs, in input order."""
        self._check_open()
        return self.run(
            CompareRequest.from_pairs(pairs, self._options_for(options))
        )

    def compare_sets(
        self,
        set_a,
        set_b,
        options: CompareOptions | None = None,
    ) -> CompareResult:
        """Cross-compare two in-memory polygon sets (one tile)."""
        self._check_open()
        return self.run(
            CompareRequest.from_sets(set_a, set_b, self._options_for(options))
        )

    def compare_files(
        self,
        dir_a: str | Path,
        dir_b: str | Path,
        options: CompareOptions | None = None,
    ) -> CompareResult:
        """Cross-compare two on-disk result sets with the SCCG pipeline."""
        self._check_open()
        return self.run(
            CompareRequest.from_files(dir_a, dir_b, self._options_for(options))
        )

    # ------------------------------------------------------------------
    # Async + incremental
    # ------------------------------------------------------------------
    async def submit(
        self, pairs: Sequence[Pair], options: CompareOptions | None = None
    ) -> BatchAreas:
        """Async :meth:`compare`: the launch runs off the event loop.

        One session backend serves one launch at a time — concurrent
        ``submit`` calls serialize on the session's dispatch lock (the
        exclusive-device contract).  For high-concurrency serving with
        admission control and coalescing, use
        :class:`repro.ComparisonService`.
        """
        self._check_open()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self.compare, list(pairs), options)
        )

    def stream(
        self,
        pairs: Sequence[Pair],
        options: CompareOptions | None = None,
        shard_pairs: int | None = None,
    ) -> Iterator[PairOutcome]:
        """Yield per-pair results incrementally as shards complete.

        The request is cut into cost-model-sized shards (overridable
        with ``shard_pairs``); each shard is one backend launch, and its
        pairs are yielded in input order as soon as it returns.  Chunk
        boundaries never change results (the kernel's shard-invariance
        guarantee), so consuming the whole stream equals one
        :meth:`compare` call bit for bit.
        """
        pair_list, opts, shard_pairs = self._stream_plan(
            pairs, options, shard_pairs
        )
        for lo in range(0, len(pair_list), shard_pairs):
            areas = self.compare(pair_list[lo : lo + shard_pairs], opts)
            yield from self._shard_outcomes(lo, areas)

    async def stream_async(
        self,
        pairs: Sequence[Pair],
        options: CompareOptions | None = None,
        shard_pairs: int | None = None,
    ) -> AsyncIterator[PairOutcome]:
        """Async variant of :meth:`stream` (shards run off the loop)."""
        pair_list, opts, shard_pairs = self._stream_plan(
            pairs, options, shard_pairs
        )
        loop = asyncio.get_running_loop()
        for lo in range(0, len(pair_list), shard_pairs):
            areas = await loop.run_in_executor(
                None,
                functools.partial(
                    self.compare, pair_list[lo : lo + shard_pairs], opts
                ),
            )
            for outcome in self._shard_outcomes(lo, areas):
                yield outcome

    def _stream_plan(
        self,
        pairs: Sequence[Pair],
        options: CompareOptions | None,
        shard_pairs: int | None,
    ) -> tuple[list[Pair], CompareOptions, int]:
        """Shared setup of both stream variants (validated shard size)."""
        self._check_open()
        opts = self._options_for(options)
        pair_list = list(pairs)
        if shard_pairs is None:
            shard_pairs = self._stream_shard_pairs(pair_list, opts)
        if shard_pairs < 1:
            raise RequestError(
                f"shard_pairs must be >= 1, got {shard_pairs}"
            )
        return pair_list, opts, shard_pairs

    @staticmethod
    def _shard_outcomes(lo: int, areas: BatchAreas) -> Iterator[PairOutcome]:
        for i in range(len(areas)):
            yield PairOutcome(
                index=lo + i,
                intersection=int(areas.intersection[i]),
                union=int(areas.union[i]),
                area_p=int(areas.area_p[i]),
                area_q=int(areas.area_q[i]),
            )

    def _stream_shard_pairs(
        self, pairs: list[Pair], options: CompareOptions
    ) -> int:
        """Cost-model shard size for one incremental stream."""
        if not pairs:
            return 1
        from repro.backends.auto import profile_pairs
        from repro.gpu.cost import recommend_shard_pairs

        cfg = options.launch_config()
        mean_edges, mean_pixels = profile_pairs(pairs)
        return recommend_shard_pairs(
            len(pairs),
            mean_edges,
            mean_pixels,
            cfg.threshold,
            cfg.block_size,
            calibration=_profile_calibration(options),
            substrate="numba" if options.backend == "numba" else "numpy",
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def explain(self, request: CompareRequest) -> ResolvedPlan:
        """Resolve ``request`` into its plan without executing it.

        The plan's cache section is answered against *this* session's
        request cache, so ``would_hit`` tells the truth about what a
        :meth:`run` of the same request would do here.
        """
        # Resolve the store exactly as the run path would (creating it
        # for a cache-enabled request), so the first explain of a fresh
        # session answers would_hit=False rather than "no store".
        return _explain(
            request, request_cache=self._store_for(request.options)
        )

    # ------------------------------------------------------------------
    # Cache observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, dict]:
        """Snapshots of every cache tier this session can see."""
        with self._lock:
            store = self._request_cache
            backend = self._backend
        out: dict[str, dict] = {}
        if store is not None:
            out["session.request"] = store.snapshot().as_dict()
        stats = getattr(backend, "cache_stats", None)
        if callable(stats):
            out.update(stats())
        return out

    def clear_caches(self) -> None:
        """Drop every cached result (request tier + backend tiers)."""
        with self._lock:
            store = self._request_cache
            backend = self._backend
        if store is not None:
            store.clear()
        clear = getattr(backend, "clear_caches", None)
        if callable(clear):
            clear()
