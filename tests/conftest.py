"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import extract_polygons, fill_holes


def random_mask(rng: np.random.Generator, h: int = 12, w: int = 14,
                density: float = 0.45) -> np.ndarray:
    """A random boolean mask with interior holes filled."""
    return fill_holes(rng.random((h, w)) < density)


def random_polygon(rng: np.random.Generator, h: int = 12, w: int = 14,
                   density: float = 0.5) -> RectilinearPolygon:
    """The largest polygon traced from a random mask (never empty)."""
    while True:
        polys = extract_polygons(random_mask(rng, h, w, density))
        if polys:
            return max(polys, key=lambda p: p.area)


def random_pair(rng: np.random.Generator, h: int = 12, w: int = 14):
    """Two random polygons sharing a coordinate frame."""
    return (random_polygon(rng, h, w), random_polygon(rng, h, w))


def mask_of(polygon: RectilinearPolygon, box: Box) -> np.ndarray:
    """Ground-truth rasterization inside ``box``."""
    from repro.geometry.raster import polygon_to_mask

    return polygon_to_mask(polygon, box)


@pytest.fixture(autouse=True)
def _clean_cost_calibration():
    """No test inherits (or leaks) a process-global cost profile.

    ``set_calibration`` / ``REPRO_COST_PROFILE`` mutate module state in
    :mod:`repro.gpu.cost`; a test that loads a profile must not change
    which plan the *next* test's profile-less session resolves to.
    """
    from repro.gpu import cost

    cost.clear_calibration()
    yield
    cost.clear_calibration()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tile_pair():
    """One synthetic tile's two polygon sets (session-cached)."""
    from repro.data.synth import generate_tile_pair

    return generate_tile_pair(seed=77, nuclei=30, width=256, height=256)


@pytest.fixture(scope="session")
def small_dataset(tmp_path_factory):
    """A small on-disk dataset (4 tiles, both result sets)."""
    from repro.data.datasets import DatasetSpec, generate_dataset

    root = tmp_path_factory.mktemp("dataset")
    spec = DatasetSpec(
        name="testset", tiles=4, nuclei_per_tile=25,
        tile_width=256, tile_height=256, seed=123,
    )
    return generate_dataset(spec, root)
