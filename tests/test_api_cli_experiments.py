"""Tests for the top-level API, the CLI, and experiment smoke runs."""

import json
import os

import pytest

from repro.api import cross_compare, cross_compare_files
from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, geometric_mean
from repro.metrics.jaccard import jaccard_pairwise


class TestApi:
    def test_cross_compare_in_memory(self, tile_pair):
        a, b = tile_pair
        with pytest.deprecated_call():
            result = cross_compare(a, b)
        pw = jaccard_pairwise(a, b)
        assert result.jaccard_mean == pytest.approx(pw.mean_ratio)
        assert result.intersecting_pairs == pw.intersecting_pairs
        assert "J'" in str(result)

    def test_cross_compare_files(self, small_dataset):
        dir_a, dir_b = small_dataset
        with pytest.deprecated_call():
            result = cross_compare_files(dir_a, dir_b)
        assert 0.3 < result.jaccard_mean < 1.0
        assert result.tiles == 4

    def test_lazy_api_import(self):
        import repro

        assert callable(repro.cross_compare)
        assert callable(repro.Session)
        with pytest.raises(AttributeError):
            _ = repro.not_a_symbol


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig7", "--full"])
        assert args.experiment == "fig7" and args.full

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table1" in out

    def test_compare_command(self, small_dataset, capsys):
        dir_a, dir_b = small_dataset
        assert main(["compare", str(dir_a), str(dir_b), "--no-migration"]) == 0
        assert "J' =" in capsys.readouterr().out

    def test_backends_json(self, capsys):
        assert main(["backends", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in listing}
        assert {"batch", "multiprocess", "cluster", "auto", "numba"} <= names
        for entry in listing:
            # Availability-gated entries (the numba extra) report why
            # instead of capabilities; everything else reports both.
            assert isinstance(entry["available"], bool)
            if not entry["available"]:
                assert entry["reason"]
                continue
            assert "description" in entry
            caps = entry["capabilities"]
            assert set(caps) >= {
                "persistent_pooling", "stateful_lifecycle",
                "configurable_workers", "max_workers", "remote", "notes",
                "compiled",
            }

    def test_calibrate_prints_an_absolute_profile_path(
        self, tmp_path, monkeypatch, capsys
    ):
        """The export hint must survive a later cd: relative paths in
        REPRO_COST_PROFILE break as soon as the shell moves."""
        from repro.gpu import calibrate
        from repro.gpu.cost import CostCalibration

        monkeypatch.setattr(
            calibrate,
            "run_calibration",
            lambda quick=False: CostCalibration(1e9, 1e8, 1e6, source="t"),
        )
        monkeypatch.chdir(tmp_path)
        assert main(["calibrate", "--quick", "--output", "prof.json"]) == 0
        out = capsys.readouterr().out
        export = next(
            ln for ln in out.splitlines() if "REPRO_COST_PROFILE" in ln
        )
        assert str(tmp_path / "prof.json") in export
        assert (tmp_path / "prof.json").exists()

    def test_explain_command(self, tmp_path, capsys):
        spec = {
            "kind": "pairs",
            "pairs": [[
                "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))",
            ]],
            "options": {"backend": "auto"},
        }
        path = tmp_path / "request.json"
        path.write_text(json.dumps(spec))
        assert main(["explain", str(path)]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["backend"] == "auto"
        assert plan["resolved_backend"] in (
            "batch", "vectorized", "multiprocess"
        )
        assert plan["workload"]["n_pairs"] == 1

    def test_explain_command_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "request.json"
        path.write_text(json.dumps({"kind": "pairs"}))
        assert main(["explain", str(path)]) == 1
        assert "does not resolve" in capsys.readouterr().err
        assert main(["explain", str(tmp_path / "missing.json")]) == 1

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            main(["run", "fig99"])


class TestExperimentHarness:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0

    def test_result_render(self):
        result = ExperimentResult(
            name="demo",
            headers=["a", "b"],
            rows=[["x", 1.5]],
            paper_expectation="n/a",
            notes=["hello"],
        )
        text = result.render()
        assert "demo" in text and "1.500" in text and "hello" in text

    def test_registry_lists_all_figures(self):
        from repro.experiments.registry import experiment_names

        assert experiment_names() == [
            "fig2", "fig7", "fig8", "fig9", "fig10", "table1", "fig11",
            "fig12",
        ]

    def test_registry_rejects_unknown(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(ExperimentError):
            run_experiment("fig0")


@pytest.mark.slow
class TestExperimentSmoke:
    """Every experiment runs end-to-end at quick scale."""

    @pytest.fixture(autouse=True)
    def _data_dir(self, tmp_path_factory, monkeypatch):
        root = tmp_path_factory.mktemp("exp-data")
        monkeypatch.setenv("REPRO_DATA_DIR", str(root))

    @pytest.mark.parametrize(
        "name", ["fig2", "fig7", "fig8", "fig9", "fig10", "table1", "fig11"]
    )
    def test_experiment_runs(self, name):
        from repro.experiments.registry import run_experiment

        result = run_experiment(name, quick=True)
        assert result.rows
        assert result.render()

    def test_fig12_runs(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("fig12", quick=True)
        assert result.rows[-1][0] == "geometric mean"
        # Every dataset's similarity must agree between the two systems.
        for row in result.rows[:-1]:
            assert row[-1] == "yes"
