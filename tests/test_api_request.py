"""Tests for the declarative request spec (CompareOptions/CompareRequest).

The headline guarantees:

* **one set of defaults** — the old drift (``api.cross_compare_files``
  defaulting ``LaunchConfig()`` while the pipeline defaulted
  ``tight_mbr=True``, and silently dropping ``buffer_capacity`` /
  ``batch_pairs`` / ``migration``) is pinned closed by regression tests;
* **one spec behind every door** — the CLI adapter, the service wire
  adapter, and the library constructors produce the *identical*
  ``CompareRequest`` for equivalent inputs;
* **serializability** — ``to_dict``/``from_dict`` round-trip every
  request kind bit-for-bit (polygons as WKT).
"""

from __future__ import annotations

import pytest

from repro.api.options import DEFAULT_OPTIONS, CompareOptions
from repro.api.request import (
    CompareRequest,
    request_from_cli,
    request_from_wire,
)
from repro.errors import RequestError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.wkt import polygon_to_wkt
from repro.pipeline.engine import PipelineOptions
from repro.pipeline.migration import MigrationConfig


def _square(x: int, y: int, side: int = 4) -> RectilinearPolygon:
    return RectilinearPolygon.from_box(Box(x, y, x + side, y + side))


PAIRS = [(_square(0, 0), _square(2, 2)), (_square(0, 0), _square(100, 100))]


class TestCompareOptionsDefaults:
    """Regression: api and pipeline defaults are the same defaults."""

    def test_launch_config_matches_pipeline_default(self):
        # The historical drift: cross_compare_files built LaunchConfig()
        # (tight_mbr=False) while run_pipelined defaulted tight_mbr=True.
        assert (
            CompareOptions().launch_config()
            == PipelineOptions().launch_config
        )

    def test_pipeline_shape_matches_pipeline_defaults(self):
        derived = CompareOptions().pipeline_options()
        reference = PipelineOptions()
        assert derived.parser_workers == reference.parser_workers
        assert derived.buffer_capacity == reference.buffer_capacity
        assert derived.batch_pairs == reference.batch_pairs
        assert derived.backend == reference.backend
        assert derived.migration == reference.migration  # both off

    def test_pipeline_knobs_no_longer_dropped(self):
        # buffer_capacity / batch_pairs / migration used to be silently
        # discarded on the api path; now every knob arrives.
        options = CompareOptions(
            buffer_capacity=3, batch_pairs=77, migration=True,
            parser_workers=5,
        )
        derived = options.pipeline_options()
        assert derived.buffer_capacity == 3
        assert derived.batch_pairs == 77
        assert derived.parser_workers == 5
        assert isinstance(derived.migration, MigrationConfig)

    def test_hosts_fold_into_cluster_factory_options(self):
        options = CompareOptions(backend="cluster", hosts="h1:9001,h2:9002")
        assert options.resolved_backend_options() == {
            "hosts": "h1:9001,h2:9002"
        }

    def test_hosts_rejected_for_non_cluster_backend(self):
        options = CompareOptions(backend="batch", hosts="h1:9001")
        with pytest.raises(RequestError):
            options.resolved_backend_options()

    def test_validation_fails_at_spec_build_time(self):
        with pytest.raises(RequestError):
            CompareOptions(block_size=2)  # kernel minimum is 4
        with pytest.raises(RequestError):
            CompareOptions(leaf_mode="nope")
        with pytest.raises(RequestError):
            CompareOptions(parser_workers=0)
        with pytest.raises(RequestError):
            CompareOptions(batch_pairs=0)

    def test_options_round_trip(self):
        options = CompareOptions(
            backend="multiprocess",
            backend_options={"workers": 3},
            block_size=32,
            migration=True,
        )
        assert CompareOptions.from_dict(options.to_dict()) == options
        # Defaults serialize to the empty spec.
        assert DEFAULT_OPTIONS.to_dict() == {}
        assert CompareOptions.from_dict(None) == DEFAULT_OPTIONS

    def test_options_reject_unknown_fields(self):
        with pytest.raises(RequestError):
            CompareOptions.from_dict({"blocksize": 32})


class TestCompareRequest:
    def test_exactly_one_payload(self):
        with pytest.raises(RequestError):
            CompareRequest()
        with pytest.raises(RequestError):
            CompareRequest(
                pairs=tuple(PAIRS), dir_a="a", dir_b="b"
            )
        with pytest.raises(RequestError):
            CompareRequest(set_a=(PAIRS[0][0],))  # set_b missing

    def test_kinds(self):
        assert CompareRequest.from_pairs(PAIRS).kind == "pairs"
        assert CompareRequest.from_sets([PAIRS[0][0]], [PAIRS[0][1]]).kind \
            == "sets"
        assert CompareRequest.from_files("a", "b").kind == "files"

    @pytest.mark.parametrize("kind", ["pairs", "sets", "files"])
    def test_json_round_trip(self, kind):
        options = CompareOptions(backend="vectorized", block_size=32)
        if kind == "pairs":
            request = CompareRequest.from_pairs(PAIRS, options)
        elif kind == "sets":
            request = CompareRequest.from_sets(
                [p for p, _ in PAIRS], [q for _, q in PAIRS], options
            )
        else:
            request = CompareRequest.from_files("dir/a", "dir/b", options)
        assert CompareRequest.from_json(request.to_json()) == request

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(RequestError):
            CompareRequest.from_dict({"pairs": "nope"})
        with pytest.raises(RequestError):
            CompareRequest.from_dict({"unknown": 1})
        with pytest.raises(RequestError):
            CompareRequest.from_dict({})
        with pytest.raises(RequestError):
            CompareRequest.from_json("{not json")

    def test_non_polygon_payload_rejected(self):
        with pytest.raises(RequestError):
            CompareRequest.from_pairs([("a", "b")])
        with pytest.raises(RequestError):
            CompareRequest.from_sets(["a"], [PAIRS[0][1]])


class TestFrontDoorEquivalence:
    """CLI flags, wire lines, and library kwargs -> the identical spec."""

    def test_cli_adapter_builds_the_library_request(self):
        via_cli = request_from_cli(
            "results_a",
            "results_b",
            backend="cluster",
            hosts="h1:9001",
            migration=False,
        )
        via_library = CompareRequest.from_files(
            "results_a",
            "results_b",
            CompareOptions(backend="cluster", hosts="h1:9001"),
        )
        assert via_cli == via_library

    def test_cli_migration_default_is_on(self):
        # `repro compare` historically migrates unless --no-migration.
        assert request_from_cli("a", "b").options.migration is True
        assert (
            request_from_cli("a", "b", migration=False).options.migration
            is False
        )

    def test_wire_adapter_builds_the_library_request(self):
        message = {
            "op": "compare",
            "pairs": [
                [polygon_to_wkt(p), polygon_to_wkt(q)] for p, q in PAIRS
            ],
            "config": {"block_size": 32, "tight_mbr": False},
        }
        base = CompareOptions(backend="multiprocess")
        via_wire = request_from_wire(message, base)
        via_library = CompareRequest.from_pairs(
            PAIRS, base.replace(block_size=32, tight_mbr=False)
        )
        assert via_wire == via_library

    def test_wire_adapter_without_config_keeps_base_options(self):
        message = {
            "op": "compare",
            "pairs": [[polygon_to_wkt(p), polygon_to_wkt(q)]
                      for p, q in PAIRS[:1]],
        }
        assert request_from_wire(message).options == CompareOptions()

    def test_wire_adapter_rejects_unknown_config(self):
        message = {"op": "compare", "pairs": [], "config": {"backend": "x"}}
        with pytest.raises(RequestError):
            request_from_wire(message)

    def test_wire_adapter_rejects_malformed_pairs(self):
        with pytest.raises(RequestError):
            request_from_wire({"op": "compare", "pairs": [["one"]]})
        with pytest.raises(RequestError):
            request_from_wire({"op": "compare"})
