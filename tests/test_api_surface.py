"""The public-surface guard runs green against the checked-in manifest.

Mirrors the CI step (``python tools/check_api_surface.py``) so a surface
drift fails the tier-1 suite locally too, and exercises the tool's own
diff logic on synthetic drift.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_api_surface", REPO_ROOT / "tools" / "check_api_surface.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_api_surface_matches_manifest(capsys):
    tool = _load_tool()
    assert tool.main([]) == 0, capsys.readouterr().out
    out = capsys.readouterr().out
    assert "api surface intact" in out


def test_manifest_is_checked_in():
    manifest = REPO_ROOT / "tools" / "api_surface.json"
    assert manifest.exists(), "run `python tools/check_api_surface.py --update`"


def test_diff_reports_removals_and_changes():
    tool = _load_tool()
    expected = {
        "m": {
            "gone": {"kind": "function", "signature": "()"},
            "changed": {"kind": "function", "signature": "(a)"},
            "same": {"kind": "function", "signature": "(x)"},
        }
    }
    actual = {
        "m": {
            "changed": {"kind": "function", "signature": "(a, b)"},
            "same": {"kind": "function", "signature": "(x)"},
            "added": {"kind": "function", "signature": "()"},
        }
    }
    problems = "\n".join(tool.diff(expected, actual))
    assert "m.gone: removed" in problems
    assert "m.changed: signature changed" in problems
    assert "m.added: added" in problems
    assert "same" not in problems


def test_snapshot_covers_the_front_door():
    tool = _load_tool()
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    surface = tool.snapshot()
    assert "Session" in surface["repro.api"]
    assert "CompareRequest" in surface["repro.api"]
    assert "explain" in surface["repro.api"]
    assert "cross_compare" in surface["repro.api"]
    assert surface["repro.api"]["Session"]["kind"] == "class"
    assert "compare_files" in surface["repro.api"]["Session"]["methods"]
