"""Cross-backend parity harness.

The architectural guarantee of :mod:`repro.backends` is that every
registered executor computes the *same function*: exact integer
intersection and union areas, bit-for-bit equal to the exact overlay
reference.  This harness enforces the guarantee by introspecting the
registry — a newly registered backend is covered by the act of
registering, with no test changes.

Workloads are seeded and randomized at three shapes:

* ``small``   — pixel-scale polygons plus handcrafted degenerate cases
  (identical, disjoint, touching, single-pixel);
* ``medium``  — polygons whose pair MBRs exceed the pixelization
  threshold, forcing sampling-box subdivision in every engine;
* ``tile``    — a synthetic pathology tile pair joined by MBR overlap,
  the production workload (large enough to engage the multiprocess
  backend's worker pool at its default ``min_pairs``).
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.backends import (
    available_backends,
    backend_availability,
    backend_registry,
    get_backend,
)
from repro.exact import boolean
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import extract_polygons, fill_holes
from repro.pixelbox.common import LaunchConfig


def random_pair(rng, h: int = 12, w: int = 14, density: float = 0.5):
    """Two random hole-free polygons sharing a coordinate frame."""

    def one():
        while True:
            mask = fill_holes(rng.random((h, w)) < density)
            polys = extract_polygons(mask)
            if polys:
                return max(polys, key=lambda p: p.area)

    return one(), one()

EXPECTED_BACKENDS = {
    "auto", "batch", "cluster", "multiprocess", "numba", "scalar", "simt",
    "vectorized",
}


def _get_backend_or_skip(name: str, **kwargs):
    """``get_backend`` that skips (not fails) availability-gated entries.

    The registry intentionally lists backends whose optional compiled
    dependency may be absent (``numba``); the parity harness covers them
    bit-for-bit wherever the extra is installed and skips elsewhere.
    """
    reason = backend_availability(name)
    if reason is not None:
        pytest.skip(reason)
    return get_backend(name, **kwargs)


def _edge_case_pairs():
    """Degenerate pairs every backend must agree on."""
    unit = RectilinearPolygon.from_box(Box(0, 0, 1, 1))
    square = RectilinearPolygon.from_box(Box(0, 0, 8, 8))
    shifted = RectilinearPolygon.from_box(Box(4, 4, 12, 12))
    disjoint = RectilinearPolygon.from_box(Box(100, 100, 108, 108))
    touching = RectilinearPolygon.from_box(Box(8, 0, 16, 8))
    tall = RectilinearPolygon.from_box(Box(0, 0, 1, 200))
    wide = RectilinearPolygon.from_box(Box(0, 0, 200, 1))
    return [
        (unit, unit),
        (square, square),
        (square, shifted),
        (square, disjoint),
        (square, touching),
        (tall, wide),
        (unit, square),
    ]


def _workload(kind: str):
    rng = np.random.default_rng(20260730)
    if kind == "small":
        pairs = [random_pair(rng) for _ in range(60)]
        return pairs + _edge_case_pairs()
    if kind == "medium":
        # MBRs of ~100x120 pixels: far above the default threshold
        # (64**2 / 2), so every engine runs the subdivision loop.
        return [random_pair(rng, h=100, w=120) for _ in range(12)]
    if kind == "tile":
        from repro.data.synth import generate_tile_pair
        from repro.index.join import mbr_pair_join

        set_a, set_b = generate_tile_pair(
            seed=4242, nuclei=400, width=512, height=512
        )
        join = mbr_pair_join(set_a, set_b)
        return join.pairs(set_a, set_b)
    raise AssertionError(kind)


@pytest.fixture(scope="module")
def workloads():
    """Workloads plus their exact-overlay reference areas (computed once)."""
    out = {}
    for kind in ("small", "medium", "tile"):
        pairs = _workload(kind)
        inter = np.array(
            [boolean.intersection(p, q).area for p, q in pairs],
            dtype=np.int64,
        )
        area_p = np.array([p.area for p, _ in pairs], dtype=np.int64)
        area_q = np.array([q.area for _, q in pairs], dtype=np.int64)
        out[kind] = (pairs, inter, area_p + area_q - inter)
    return out


def test_registry_has_expected_backends():
    assert EXPECTED_BACKENDS <= set(available_backends())


@pytest.mark.parametrize("name", sorted(backend_registry()))
def test_backend_reports_structured_capabilities(name):
    """Every backend reports BackendCapabilities — the registry contract
    replacing ad-hoc attribute sniffing (pooling owners branch on it)."""
    from repro.backends import BackendCapabilities

    caps = _get_backend_or_skip(name).capabilities()
    assert isinstance(caps, BackendCapabilities)
    assert caps.max_workers >= 1
    assert isinstance(caps.summary(), str) and caps.summary()
    if name in ("multiprocess", "auto", "cluster"):
        assert caps.persistent_pooling


@pytest.mark.parametrize("name", sorted(backend_registry()))
@pytest.mark.parametrize("kind", ["small", "medium", "tile"])
def test_backend_matches_exact_reference(name, kind, workloads):
    """Every registered backend is bit-for-bit the exact overlay."""
    if name == "simt" and kind == "tile":
        pytest.skip("pure-Python replay at tile scale belongs to tier 2")
    pairs, ref_inter, ref_union = workloads[kind]
    with _get_backend_or_skip(name) as backend:  # close pooled resources
        result = backend.compare_pairs(pairs)
    assert len(result) == len(pairs)
    assert np.array_equal(result.intersection, ref_inter)
    assert np.array_equal(result.union, ref_union)
    assert result.stats.pairs == len(pairs)


@pytest.mark.slow
def test_simt_matches_exact_reference_tile(workloads):
    """The tile-scale simt run, kept out of the fast tier."""
    pairs, ref_inter, ref_union = workloads["tile"]
    result = get_backend("simt").compare_pairs(pairs)
    assert np.array_equal(result.intersection, ref_inter)
    assert np.array_equal(result.union, ref_union)


@pytest.mark.parametrize("workers", [2, 3, 4])
def test_multiprocess_sharding_is_bit_identical(workers, workloads):
    """Any shard boundary yields the same bits (forced pool path)."""
    pairs, ref_inter, ref_union = workloads["tile"]
    backend = get_backend("multiprocess", workers=workers, min_pairs=1)
    result = backend.compare_pairs(pairs)
    assert np.array_equal(result.intersection, ref_inter)
    assert np.array_equal(result.union, ref_union)
    assert result.stats.pairs == len(pairs)


def test_backends_agree_under_nondefault_config(workloads):
    """Parity holds for non-default launch parameters, too."""
    pairs, ref_inter, ref_union = workloads["small"]
    cfg = LaunchConfig(block_size=16, pixel_threshold=64)
    for name in available_backends():
        if backend_availability(name) is not None:
            continue  # availability-gated extras are covered where present
        with get_backend(name) as backend:
            result = backend.compare_pairs(pairs, cfg)
        assert np.array_equal(result.intersection, ref_inter), name
        assert np.array_equal(result.union, ref_union), name


# ----------------------------------------------------------------------
# Degenerate-input sweep: every backend, every boundary condition
# ----------------------------------------------------------------------
def _degenerate_scenarios():
    """Boundary workloads every current and future backend must survive.

    Keyed by name -> ``(pairs, config)``.  Polygons stay tiny so even the
    pure-Python simt replay finishes instantly at ``threshold=1``.
    """
    unit = RectilinearPolygon.from_box(Box(0, 0, 1, 1))
    small = RectilinearPolygon.from_box(Box(0, 0, 5, 5))
    sliver = RectilinearPolygon.from_box(Box(0, 0, 1, 9))
    far = RectilinearPolygon.from_box(Box(50, 50, 55, 55))
    farther = RectilinearPolygon.from_box(Box(200, 7, 205, 12))
    overlapping = RectilinearPolygon.from_box(Box(3, 3, 8, 8))
    disjoint_batch = [
        (small, far),
        (unit, farther),
        (sliver, far),
        (far, farther),
        (small, small.translate(100, 0)),
    ]
    return {
        "empty": ([], None),
        "single-pair": ([(small, overlapping)], None),
        "all-disjoint": (disjoint_batch, None),
        "tight-mbr": (disjoint_batch + [(small, overlapping)],
                      LaunchConfig(tight_mbr=True)),
        "threshold-1": ([(small, overlapping), (small, far), (unit, unit)],
                        LaunchConfig(pixel_threshold=1)),
    }


@pytest.mark.parametrize("name", sorted(backend_registry()))
@pytest.mark.parametrize("scenario", sorted(_degenerate_scenarios()))
def test_backend_survives_degenerate_inputs(name, scenario):
    """Empty lists, all-disjoint batches, tight MBRs, threshold=1: the
    sweep runs through the registry so every future backend inherits it."""
    pairs, cfg = _degenerate_scenarios()[scenario]
    with _get_backend_or_skip(name) as backend:
        result = backend.compare_pairs(pairs, cfg)
    assert len(result) == len(pairs)
    ref_inter = np.array(
        [boolean.intersection(p, q).area for p, q in pairs], dtype=np.int64
    )
    area_p = np.array([p.area for p, _ in pairs], dtype=np.int64)
    area_q = np.array([q.area for _, q in pairs], dtype=np.int64)
    assert np.array_equal(result.intersection, ref_inter)
    assert np.array_equal(result.union, area_p + area_q - ref_inter)
    assert result.stats.pairs == len(pairs)


# ----------------------------------------------------------------------
# Lifecycle: every backend is a context manager with an idempotent close
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(backend_registry()))
def test_backend_lifecycle_context_manager(name, workloads):
    """Registry introspection covers the lifecycle contract too: use as
    a context manager, correct results inside, close idempotent after."""
    pairs, ref_inter, ref_union = workloads["small"]
    with _get_backend_or_skip(name) as backend:
        result = backend.compare_pairs(pairs)
        assert np.array_equal(result.intersection, ref_inter)
        assert np.array_equal(result.union, ref_union)
    backend.close()  # second close must be a no-op


def _shm_segments() -> set[str]:
    """Named shared-memory segments visible on this host (Linux)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def test_multiprocess_persistent_pool_lifecycle(workloads):
    """Persistent mode: one warm pool serves repeated calls bit-for-bit,
    and close() leaks neither processes nor shared-memory segments."""
    pairs, ref_inter, ref_union = workloads["tile"]
    segments_before = _shm_segments()
    backend = get_backend(
        "multiprocess", workers=2, min_pairs=1, persistent=True
    )
    try:
        warm_pids = backend.warm()
        assert warm_pids, "warm() spawned no workers"
        pool_pids = {p.pid for p in multiprocessing.active_children()}
        assert set(warm_pids) <= pool_pids
        for _ in range(2):  # the pool is reused, not re-forked
            result = backend.compare_pairs(pairs)
            assert np.array_equal(result.intersection, ref_inter)
            assert np.array_equal(result.union, ref_union)
        # No new worker processes appeared across repeated calls.
        assert {p.pid for p in multiprocessing.active_children()} == pool_pids
    finally:
        backend.close()
    backend.close()  # idempotent
    alive = {p.pid for p in multiprocessing.active_children()}
    assert not (pool_pids & alive), "workers survived close()"
    assert _shm_segments() <= segments_before, "leaked shared memory"
    # The backend stays usable: the pool is re-created lazily.
    result = backend.compare_pairs(pairs)
    assert np.array_equal(result.intersection, ref_inter)
    backend.close()
