"""Unit tests for the execution-backend layer: registry, selection, wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    AutoBackend,
    Backend,
    available_backends,
    default_workers,
    get_backend,
    profile_pairs,
    register,
)
from repro.backends.base import backend_registry
from repro.errors import KernelError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.gpu.cost import estimate_comparison_cycles, recommend_backend
from repro.pipeline.device import GpuDevice
from repro.pixelbox.api import compare_pairs
from repro.pixelbox.common import LaunchConfig


def _pairs(n: int = 8):
    out = []
    for i in range(n):
        p = RectilinearPolygon.from_box(Box(i, 0, i + 6, 6))
        q = RectilinearPolygon.from_box(Box(i + 2, 2, i + 8, 8))
        out.append((p, q))
    return out


class TestRegistry:
    def test_known_backends_registered(self):
        assert {"scalar", "vectorized", "batch", "simt", "multiprocess",
                "auto"} <= set(available_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(KernelError, match="unknown backend"):
            get_backend("cuda")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KernelError, match="twice"):
            register("batch")(lambda: None)

    def test_instances_satisfy_protocol(self):
        from repro.backends import backend_availability

        for name in available_backends():
            if backend_availability(name) is not None:
                continue  # availability-gated extras can't instantiate here
            instance = get_backend(name)
            assert isinstance(instance, Backend)
            assert instance.name == name
            assert instance.description

    def test_registry_copy_is_isolated(self):
        snapshot = backend_registry()
        snapshot["bogus"] = lambda: None
        assert "bogus" not in available_backends()

    def test_factory_kwargs_forwarded(self):
        backend = get_backend("multiprocess", workers=2, min_pairs=5)
        assert backend.workers == 2 and backend.min_pairs == 5


class TestMultiprocessBackend:
    def test_invalid_workers(self):
        with pytest.raises(KernelError):
            get_backend("multiprocess", workers=0)

    def test_empty_pairs(self):
        result = get_backend("multiprocess").compare_pairs([])
        assert len(result) == 0

    def test_default_workers_bounds(self):
        assert 1 <= default_workers() <= 4

    def test_uneven_shards_match_in_process(self):
        pairs = _pairs(11)  # 11 pairs over 3 workers: shards of 4/4/3
        pooled = get_backend(
            "multiprocess", workers=3, min_pairs=1
        ).compare_pairs(pairs)
        serial = get_backend("vectorized").compare_pairs(pairs)
        assert np.array_equal(pooled.intersection, serial.intersection)
        assert np.array_equal(pooled.union, serial.union)
        assert pooled.stats.pairs == 11

    def test_small_input_skips_pool(self):
        backend = get_backend("multiprocess", workers=4, min_pairs=256)
        result = backend.compare_pairs(_pairs(4))
        assert result.stats.pairs == 4

    def test_pool_from_worker_thread(self):
        """Launching from a thread (the pipeline's shape) must not fork
        a multi-threaded process — the context falls back to spawn."""
        import threading

        pairs = _pairs(10)
        ref = get_backend("vectorized").compare_pairs(pairs)
        out: dict = {}

        def body():
            backend = get_backend("multiprocess", workers=2, min_pairs=1)
            out["result"] = backend.compare_pairs(pairs)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert np.array_equal(out["result"].intersection, ref.intersection)


class TestCostModelSelection:
    CFG = LaunchConfig()

    def test_zero_pairs_cost_nothing(self):
        assert estimate_comparison_cycles(0, 30, 500, self.CFG.threshold) == 0.0

    def test_cost_grows_with_pairs_and_edges(self):
        base = estimate_comparison_cycles(100, 30, 500, self.CFG.threshold)
        assert estimate_comparison_cycles(200, 30, 500, self.CFG.threshold) > base
        assert estimate_comparison_cycles(100, 60, 500, self.CFG.threshold) > base

    def test_small_workload_prefers_batch(self):
        choice = recommend_backend(
            100, 30, 400, self.CFG.threshold, workers=4
        )
        assert choice == "batch"

    def test_heavy_workload_prefers_multiprocess(self):
        # compiled=False pins the NumPy ranking: on hosts with the
        # repro[numba] extra the compiled substrate would win this one.
        choice = recommend_backend(
            2_000_000, 60, 1500, self.CFG.threshold, workers=4,
            compiled=False,
        )
        assert choice == "multiprocess"

    def test_single_worker_never_multiprocess(self):
        choice = recommend_backend(
            2_000_000, 60, 1500, self.CFG.threshold, workers=1,
            compiled=False,
        )
        assert choice != "multiprocess"

    def test_subdivision_dominated_prefers_vectorized(self):
        choice = recommend_backend(
            100, 30, 40 * self.CFG.threshold, self.CFG.threshold, workers=1
        )
        assert choice == "vectorized"

    def test_profile_pairs(self):
        pairs = _pairs(3)
        mean_edges, mean_pixels = profile_pairs(pairs)
        assert mean_edges == 4.0  # two boxes, two vertical edges each
        assert mean_pixels == 64.0  # 8x8 cover MBR
        assert profile_pairs([]) == (0.0, 0.0)

    def test_auto_backend_records_choice(self):
        auto = AutoBackend(workers=4)
        result = auto.compare_pairs(_pairs(6))
        assert auto.last_choice == "batch"
        ref = get_backend("batch").compare_pairs(_pairs(6))
        assert np.array_equal(result.intersection, ref.intersection)


class TestWiring:
    def test_device_dispatches_through_backend(self):
        device = GpuDevice(launch_overhead=0.0, backend="vectorized")
        result = device.run_aggregate(_pairs(5))
        assert len(result) == 5
        assert device.stats.launches == 1
        assert "vectorized" in repr(device)

    def test_device_rejects_unknown_backend_eagerly(self):
        with pytest.raises(KernelError):
            GpuDevice(backend="nope")

    def test_pixelbox_api_compare_pairs(self):
        via_api = compare_pairs(_pairs(5), backend="multiprocess", workers=2)
        ref = compare_pairs(_pairs(5))
        assert np.array_equal(via_api.intersection, ref.intersection)

    def test_pipeline_options_backend(self, small_dataset):
        from repro.pipeline.engine import PipelineOptions, run_pipelined

        dir_a, dir_b = small_dataset
        baseline = run_pipelined(dir_a, dir_b, PipelineOptions())
        routed = run_pipelined(
            dir_a, dir_b, PipelineOptions(backend="vectorized")
        )
        assert routed.jaccard_mean == pytest.approx(baseline.jaccard_mean)
        assert routed.intersecting_pairs == baseline.intersecting_pairs

    def test_sdbms_backend_plan_matches_row_plans(self, tile_pair):
        from repro.sdbms.queries import run_cross_compare

        set_a, set_b = tile_pair
        row_at_a_time = run_cross_compare(set_a, set_b, optimized=True)
        batched = run_cross_compare(set_a, set_b, backend="batch")
        assert batched.jaccard_mean == pytest.approx(
            row_at_a_time.jaccard_mean
        )
        assert batched.pair_count == row_at_a_time.pair_count

    def test_sdbms_backend_plan_explain(self):
        from repro.sdbms.queries import build_backend_plan
        from repro.sdbms.table import PolygonTable

        plan = build_backend_plan(
            PolygonTable("a", []), PolygonTable("b", []), backend="auto"
        )
        assert "BackendAreaProject" in plan.explain()

    def test_cli_backends_command(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("scalar", "vectorized", "batch", "multiprocess", "auto"):
            assert name in out

    def test_cli_compare_with_backend(self, small_dataset, capsys):
        from repro.cli import main

        dir_a, dir_b = small_dataset
        code = main([
            "compare", str(dir_a), str(dir_b),
            "--no-migration", "--backend", "vectorized",
        ])
        assert code == 0
        assert "J' =" in capsys.readouterr().out
