"""The benchmark regression gate: comparison logic + committed baseline.

Mirrors the CI step (``python tools/check_bench_regression.py``) the
same way the api-surface guard is tested: load the tool by path,
exercise its comparison logic on synthetic reports, and pin that the
committed baseline file exists and parses.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression",
        REPO_ROOT / "tools" / "check_bench_regression.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _report(rates: dict[tuple[str, int], float]) -> dict:
    return {
        "backends": [
            {
                "backend": backend,
                "workers": workers,
                "pairs_per_second": rate,
            }
            for (backend, workers), rate in rates.items()
        ]
    }


def test_baseline_is_checked_in():
    baseline = REPO_ROOT / "benchmarks" / "baselines"
    path = baseline / "BENCH_backend_scaling.json"
    assert path.exists(), "commit a baseline BENCH_backend_scaling.json"
    report = json.loads(path.read_text())
    assert report["backends"], "baseline must contain backend rows"
    for row in report["backends"]:
        assert row["pairs_per_second"] > 0


def test_identical_reports_pass():
    tool = _load_tool()
    rates = {("vectorized", 1): 30000.0, ("multiprocess", 2): 25000.0}
    failures, notes = tool.compare(rates, dict(rates), min_ratio=0.5)
    assert failures == []
    assert len(notes) == 2


def test_regression_below_floor_fails():
    tool = _load_tool()
    baseline = {("vectorized", 1): 30000.0, ("multiprocess", 2): 25000.0}
    fresh = {("vectorized", 1): 30000.0, ("multiprocess", 2): 10000.0}
    failures, _ = tool.compare(fresh, baseline, min_ratio=0.5)
    assert len(failures) == 1
    assert "multiprocess (workers=2)" in failures[0]


def test_noise_within_band_passes():
    tool = _load_tool()
    baseline = {("vectorized", 1): 30000.0}
    fresh = {("vectorized", 1): 16000.0}  # 0.53x: noisy but above floor
    failures, _ = tool.compare(fresh, baseline, min_ratio=0.5)
    assert failures == []


def test_unmatched_configurations_never_fail():
    tool = _load_tool()
    baseline = {("vectorized", 1): 30000.0, ("retired", 1): 1.0}
    fresh = {("vectorized", 1): 30000.0, ("brand-new", 8): 1.0}
    failures, notes = tool.compare(fresh, baseline, min_ratio=0.5)
    assert failures == []
    assert any("in baseline only" in n for n in notes)
    assert any("not in baseline" in n for n in notes)


def test_service_speedup_above_floor_passes():
    tool = _load_tool()
    failures, notes = tool.check_service(23.0, min_speedup=2.0)
    assert failures == []
    assert len(notes) == 1 and "23.00x" in notes[0]


def test_service_speedup_below_floor_fails():
    tool = _load_tool()
    failures, _ = tool.check_service(1.3, min_speedup=2.0)
    assert len(failures) == 1
    assert "below 2.00x floor" in failures[0]


def test_load_warm_speedup_field_and_fallback(tmp_path):
    tool = _load_tool()
    with_field = tmp_path / "with_field.json"
    with_field.write_text(json.dumps({"warm_speedup": 7.5}))
    assert tool.load_warm_speedup(with_field) == 7.5
    legacy = tmp_path / "legacy.json"
    legacy.write_text(
        json.dumps(
            {
                "modes": {
                    "per_call_construction": {"requests_per_second": 10.0},
                    "warm_service": {"requests_per_second": 40.0},
                }
            }
        )
    )
    assert tool.load_warm_speedup(legacy) == 4.0


def test_main_gates_service_report(tmp_path, capsys):
    tool = _load_tool()
    scaling = _report({("vectorized", 1): 30000.0})
    (tmp_path / "fresh.json").write_text(json.dumps(scaling))
    (tmp_path / "baseline.json").write_text(json.dumps(scaling))
    good = tmp_path / "service_good.json"
    good.write_text(json.dumps({"warm_speedup": 12.0}))
    bad = tmp_path / "service_bad.json"
    bad.write_text(json.dumps({"warm_speedup": 1.1}))
    base_args = [
        str(tmp_path / "fresh.json"), str(tmp_path / "baseline.json")
    ]
    assert tool.main(base_args + ["--service", str(good)]) == 0
    assert tool.main(base_args + ["--service", str(bad)]) == 1
    # An absent service report never blocks the scaling gate.
    missing = base_args + ["--service", str(tmp_path / "nope.json")]
    assert tool.main(missing) == 0
    capsys.readouterr()


def _cluster_report(local: float, cluster: dict[int, float]) -> dict:
    rows = [
        {
            "executor": "vectorized (local)",
            "workers": 1,
            "pairs_per_second": local,
        }
    ]
    for workers, rate in cluster.items():
        rows.append(
            {
                "executor": "cluster",
                "workers": workers,
                "pairs_per_second": rate,
            }
        )
    return {"benchmark": "cluster_scaling", "rows": rows}


def test_cluster_rows_near_local_pass():
    tool = _load_tool()
    report = _cluster_report(30000.0, {1: 29000.0, 2: 28000.0, 4: 25000.0})
    failures, notes = tool.check_cluster(report["rows"], min_ratio=0.3)
    assert failures == []
    assert len(notes) == 3


def test_cluster_row_below_local_fraction_fails():
    tool = _load_tool()
    report = _cluster_report(30000.0, {1: 29000.0, 4: 5000.0})
    failures, _ = tool.check_cluster(report["rows"], min_ratio=0.3)
    assert len(failures) == 1
    assert "workers=4" in failures[0]
    assert "below 0.30x floor" in failures[0]


def test_cluster_report_without_local_row_fails():
    tool = _load_tool()
    rows = [
        {"executor": "cluster", "workers": 1, "pairs_per_second": 100.0}
    ]
    failures, _ = tool.check_cluster(rows, min_ratio=0.3)
    assert failures and "local" in failures[0]


def test_main_gates_cluster_report(tmp_path, capsys):
    tool = _load_tool()
    scaling = _report({("vectorized", 1): 30000.0})
    (tmp_path / "fresh.json").write_text(json.dumps(scaling))
    (tmp_path / "baseline.json").write_text(json.dumps(scaling))
    base_args = [
        str(tmp_path / "fresh.json"), str(tmp_path / "baseline.json"),
        "--service", str(tmp_path / "no_service.json"),
    ]
    good = tmp_path / "cluster_good.json"
    good.write_text(
        json.dumps(_cluster_report(30000.0, {1: 29000.0, 2: 28000.0}))
    )
    bad = tmp_path / "cluster_bad.json"
    bad.write_text(json.dumps(_cluster_report(30000.0, {2: 4000.0})))
    assert tool.main(base_args + ["--cluster", str(good)]) == 0
    assert tool.main(base_args + ["--cluster", str(bad)]) == 1
    # An absent cluster report never blocks the scaling gate.
    missing = base_args + ["--cluster", str(tmp_path / "nope.json")]
    assert tool.main(missing) == 0
    capsys.readouterr()


def test_committed_cluster_report_passes_gate():
    tool = _load_tool()
    path = (
        REPO_ROOT / "benchmarks" / "reports" / "BENCH_cluster_scaling.json"
    )
    rows = tool.load_cluster_rows(path)
    failures, notes = tool.check_cluster(
        rows, min_ratio=tool.DEFAULT_MIN_CLUSTER_RATIO
    )
    assert failures == []
    assert notes


def test_main_gates_files(tmp_path, capsys):
    tool = _load_tool()
    good = _report({("vectorized", 1): 30000.0})
    bad = _report({("vectorized", 1): 1000.0})
    (tmp_path / "baseline.json").write_text(json.dumps(good))
    (tmp_path / "fresh_ok.json").write_text(json.dumps(good))
    (tmp_path / "fresh_bad.json").write_text(json.dumps(bad))
    ok = tool.main(
        [str(tmp_path / "fresh_ok.json"), str(tmp_path / "baseline.json")]
    )
    assert ok == 0
    bad_rc = tool.main(
        [str(tmp_path / "fresh_bad.json"), str(tmp_path / "baseline.json")]
    )
    assert bad_rc == 1
    assert tool.main([str(tmp_path / "missing.json")]) == 2
    capsys.readouterr()
