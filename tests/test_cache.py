"""The content-addressed result cache: store, keys, and every tier.

The cache's one correctness contract is *transparency*: a cached hit
must be bit-for-bit identical to the cold computation it replaces —
areas **and** kernel work counters — across every backend, and any
change to what would be computed (options, launch parameters, execution
policy, cost profile) must change the cache key.  These tests pin that
contract from below (store/key units) and from above (registry-driven
hit-equals-miss across all available backends, stampede collapse in the
session and the service).
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time

import numpy as np
import pytest

from conftest import random_pair
from repro.api import CompareOptions, CompareRequest, Session
from repro.backends import available_backends, backend_availability
from repro.cache import (
    CacheSnapshot,
    LRUCacheStore,
    SingleFlight,
    calibration_fingerprint,
    config_token,
    copy_areas,
    merge_key,
    pairs_key,
    policy_token,
    request_key,
    shard_key,
)
from repro.errors import CacheError
from repro.gpu.cost import CostCalibration
from repro.pixelbox.common import LaunchConfig, Method
from repro.pixelbox.kernel import ExecutionPolicy


@pytest.fixture
def pairs(rng):
    return [random_pair(rng) for _ in range(12)]


# ----------------------------------------------------------------------
# LRUCacheStore
# ----------------------------------------------------------------------
class TestLRUCacheStore:
    def test_miss_then_hit(self):
        store = LRUCacheStore(1024, name="t")
        assert store.get("k") is None
        store.put("k", "value", 10)
        assert store.get("k") == "value"
        snap = store.snapshot()
        assert (snap.hits, snap.misses, snap.insertions) == (1, 1, 1)
        assert snap.entries == 1
        assert snap.current_bytes == 10

    def test_eviction_is_lru_ordered(self):
        store = LRUCacheStore(100, name="t")
        store.put("a", 1, 40)
        store.put("b", 2, 40)
        # Touch "a" so "b" is the least recently used entry.
        assert store.get("a") == 1
        store.put("c", 3, 40)  # 120 bytes > 100: evict "b", not "a"
        assert store.get("b") is None
        assert store.get("a") == 1
        assert store.get("c") == 3
        snap = store.snapshot()
        assert snap.evictions == 1
        assert snap.current_bytes <= 100

    def test_eviction_frees_enough_for_large_values(self):
        store = LRUCacheStore(100, name="t")
        for key in "abcd":
            store.put(key, key, 25)
        store.put("big", "big", 90)  # must evict several entries
        assert store.get("big") == "big"
        assert store.snapshot().current_bytes <= 100

    def test_oversized_value_not_stored(self):
        store = LRUCacheStore(50, name="t")
        store.put("huge", "x", 51)
        assert store.get("huge") is None
        assert len(store) == 0
        assert store.snapshot().insertions == 0

    def test_replace_same_key_updates_bytes(self):
        store = LRUCacheStore(100, name="t")
        store.put("k", 1, 30)
        store.put("k", 2, 60)
        assert store.get("k") == 2
        assert store.snapshot().current_bytes == 60
        assert len(store) == 1

    def test_contains_has_no_side_effects(self):
        store = LRUCacheStore(100, name="t")
        store.put("k", 1, 10)
        before = store.snapshot()
        assert store.contains("k")
        assert not store.contains("other")
        after = store.snapshot()
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_clear(self):
        store = LRUCacheStore(100, name="t")
        store.put("k", 1, 10)
        store.clear()
        assert len(store) == 0
        assert store.snapshot().current_bytes == 0

    def test_bad_budget_rejected(self):
        with pytest.raises(CacheError):
            LRUCacheStore(0, name="t")
        store = LRUCacheStore(10, name="t")
        with pytest.raises(CacheError):
            store.put("k", 1, -1)

    def test_snapshot_round_trips(self):
        store = LRUCacheStore(100, name="tier")
        store.put("k", 1, 10)
        store.get("k")
        store.get("gone")
        snap = store.snapshot()
        assert isinstance(snap, CacheSnapshot)
        d = snap.as_dict()
        assert d["name"] == "tier"
        assert d["hit_rate"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# SingleFlight
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_stampede_computes_once(self):
        flight = SingleFlight()
        calls = []
        gate = threading.Event()

        def compute():
            calls.append(1)
            gate.wait(2.0)
            return "answer"

        results = []

        def worker():
            results.append(flight.do("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let every thread join the flight
        gate.set()
        for t in threads:
            t.join(5.0)
        assert len(calls) == 1
        assert len(results) == 8
        assert all(value == "answer" for value, _ in results)
        assert sum(1 for _, leader in results if leader) == 1

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        gate = threading.Event()

        def compute():
            gate.wait(2.0)
            raise ValueError("boom")

        errors = []

        def worker():
            try:
                flight.do("k", compute)
            except ValueError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        gate.set()
        for t in threads:
            t.join(5.0)
        assert errors == ["boom"] * 4
        # The failed flight is retired: the next call computes fresh.
        value, leader = flight.do("k", lambda: "recovered")
        assert (value, leader) == ("recovered", True)


# ----------------------------------------------------------------------
# Key derivation: the invalidation matrix
# ----------------------------------------------------------------------

#: One non-default value per CompareOptions field.  Coverage is asserted
#: below, so adding a field without a perturbation fails this suite —
#: new knobs must be cache-relevant (or explicitly excluded here).
_OPTIONS_PERTURB = {
    "backend": "vectorized",
    "backend_options": {"workers": 3},
    "hosts": None,  # constrained: only valid with backend="cluster"
    "cost_profile": None,  # exercised via the calibration fingerprint
    "block_size": 32,
    "pixel_threshold": 7,
    "tight_mbr": False,
    "leaf_mode": "crossing",
    "parser_workers": 5,
    "buffer_capacity": 16,
    "batch_pairs": 999,
    "migration": True,
    "cache": True,
    "cache_bytes": 2**20,
    # Traced requests recompute rather than alias an untraced entry — a
    # cached hit would otherwise produce no kernel/backend spans.
    "trace": True,
    "trace_out": "trace.jsonl",
}

_POLICY_PERTURB = {
    "method": Method.NOSEP,
    "union_mode": "indirect",
    "skip_subdivision_max_dim": 48,
    "chunk_pairs": 123,
    "substrate": "numba",
}

_CONFIG_PERTURB = {
    "block_size": 32,
    "pixel_threshold": 9,
    "tight_mbr": True,
    "leaf_mode": "crossing",
}


class TestKeyInvalidation:
    def test_options_perturbations_cover_every_field(self):
        assert set(_OPTIONS_PERTURB) == {
            f.name for f in dataclasses.fields(CompareOptions)
        }, "new CompareOptions field needs an invalidation perturbation"

    def test_every_option_field_changes_the_request_key(self, pairs):
        base = CompareRequest.from_pairs(pairs, CompareOptions())
        base_key = request_key(base)
        for name, value in _OPTIONS_PERTURB.items():
            if value is None or value == getattr(CompareOptions(), name):
                continue
            request = CompareRequest.from_pairs(
                pairs, CompareOptions(**{name: value})
            )
            assert request_key(request) != base_key, (
                f"perturbing {name} must change the request key"
            )

    def test_policy_perturbations_cover_every_field(self):
        assert set(_POLICY_PERTURB) == {
            f.name for f in dataclasses.fields(ExecutionPolicy)
        }, "new ExecutionPolicy field needs an invalidation perturbation"

    def test_every_policy_field_changes_the_shard_key(self):
        cfg = LaunchConfig()
        base = shard_key("digest", 0, 64, ExecutionPolicy(), cfg)
        for name, value in _POLICY_PERTURB.items():
            policy = dataclasses.replace(ExecutionPolicy(), **{name: value})
            assert shard_key("digest", 0, 64, policy, cfg) != base, (
                f"perturbing {name} must change the shard key"
            )

    def test_config_perturbations_cover_every_field(self):
        assert set(_CONFIG_PERTURB) == {
            f.name for f in dataclasses.fields(LaunchConfig)
        }, "new LaunchConfig field needs an invalidation perturbation"

    def test_every_config_field_changes_the_shard_key(self):
        policy = ExecutionPolicy()
        base = shard_key("digest", 0, 64, policy, LaunchConfig())
        for name, value in _CONFIG_PERTURB.items():
            cfg = dataclasses.replace(LaunchConfig(), **{name: value})
            assert shard_key("digest", 0, 64, policy, cfg) != base, (
                f"perturbing {name} must change the shard key"
            )

    def test_shard_key_depends_on_bundle_and_range(self):
        policy, cfg = ExecutionPolicy(), LaunchConfig()
        base = shard_key("digest", 0, 64, policy, cfg)
        assert shard_key("other", 0, 64, policy, cfg) != base
        assert shard_key("digest", 0, 32, policy, cfg) != base
        assert shard_key("digest", 32, 64, policy, cfg) != base
        assert merge_key("digest", policy, cfg) != base

    def test_calibration_fingerprint(self):
        assert calibration_fingerprint(None) == "modeled"
        a = CostCalibration(
            cycles_per_second=1e9,
            process_spinup_cycles=1e6,
            shard_dispatch_cycles=1e5,
        )
        b = dataclasses.replace(a, cycles_per_second=2e9)
        assert calibration_fingerprint(a) != calibration_fingerprint(b)
        assert calibration_fingerprint(a) == calibration_fingerprint(
            dataclasses.replace(a)
        )

    def test_calibration_invalidates_request_key(self, pairs):
        cal = CostCalibration(
            cycles_per_second=1e9,
            process_spinup_cycles=1e6,
            shard_dispatch_cycles=1e5,
        )
        request = CompareRequest.from_pairs(pairs, CompareOptions())
        k_modeled = request_key(request, extra=(calibration_fingerprint(None),))
        k_profile = request_key(
            request, extra=(calibration_fingerprint(cal),)
        )
        assert k_modeled != k_profile

    def test_pairs_key_tracks_geometry_and_config(self, rng):
        pairs = [random_pair(rng) for _ in range(4)]
        other = [random_pair(rng) for _ in range(4)]
        cfg = LaunchConfig()
        base = pairs_key(pairs, cfg)
        assert pairs_key(pairs, cfg) == base  # deterministic
        assert pairs_key(other, cfg) != base
        assert pairs_key(list(reversed(pairs)), cfg) != base  # order matters
        assert pairs_key(pairs, LaunchConfig(block_size=32)) != base
        assert pairs_key(pairs, cfg, extra=("x",)) != base

    def test_policy_and_config_tokens_are_stable(self):
        assert policy_token(ExecutionPolicy()) == policy_token(
            ExecutionPolicy()
        )
        assert config_token(LaunchConfig()) == config_token(LaunchConfig())


# ----------------------------------------------------------------------
# Session tier: registry-driven hit == miss, bit for bit
# ----------------------------------------------------------------------

def _assert_identical(a, b):
    assert np.array_equal(a.intersection, b.intersection)
    assert np.array_equal(a.union, b.union)
    assert np.array_equal(a.area_p, b.area_p)
    assert np.array_equal(a.area_q, b.area_q)
    assert a.stats.as_dict() == b.stats.as_dict()


def _backend_cache_options(name: str) -> CompareOptions:
    extra = {}
    if name == "cluster":
        extra = {"backend_options": {"min_pairs": 1, "loopback_workers": 2}}
    elif name == "multiprocess":
        extra = {"backend_options": {"workers": 2, "min_pairs": 1}}
    return CompareOptions(backend=name, cache=True, **extra)


@pytest.mark.parametrize("name", available_backends())
def test_cached_hit_is_bit_for_bit_cold_miss(name, pairs):
    """The tentpole contract, for every registered backend."""
    if backend_availability(name) is not None:
        pytest.skip(backend_availability(name))
    with Session(_backend_cache_options(name)) as session:
        cold = session.compare(pairs)
        warm = session.compare(pairs)
        _assert_identical(cold, warm)
        stats = session.cache_stats()
        assert stats["session.request"]["hits"] == 1
        assert stats["session.request"]["misses"] == 1


def test_session_cache_off_by_default(pairs):
    with Session(CompareOptions(backend="vectorized")) as session:
        session.compare(pairs)
        assert session.cache_stats() == {}


def test_session_returned_arrays_are_isolated(pairs):
    """Mutating a returned result must never corrupt the cache."""
    with Session(CompareOptions(backend="vectorized", cache=True)) as session:
        first = session.compare(pairs)
        pristine = copy_areas(first)
        first.intersection[:] = -1
        first.union[:] = -1
        again = session.compare(pairs)
        _assert_identical(pristine, again)


def test_session_cache_invalidated_by_launch_params(pairs):
    with Session(CompareOptions(backend="vectorized", cache=True)) as session:
        session.compare(pairs)
        session.compare(
            pairs,
            CompareOptions(
                backend="vectorized", cache=True, tight_mbr=False
            ),
        )
        stats = session.cache_stats()
        assert stats["session.request"]["hits"] == 0
        assert stats["session.request"]["misses"] == 2


def test_session_stampede_computes_once(pairs):
    options = CompareOptions(backend="vectorized", cache=True)
    with Session(options) as session:
        calls = []
        gate = threading.Event()
        execute = session._execute_pairs

        def slow_execute(request):
            calls.append(1)
            gate.wait(2.0)
            return execute(request)

        session._execute_pairs = slow_execute
        results = []

        def worker():
            results.append(session.compare(pairs))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        time.sleep(0.1)  # all submitters join the same flight
        gate.set()
        for t in threads:
            t.join(10.0)
        assert len(calls) == 1
        assert len(results) == 6
        for r in results[1:]:
            _assert_identical(results[0], r)


def test_session_eviction_under_memory_bound(rng):
    """A budget smaller than two entries keeps exactly one resident."""
    batches = [[random_pair(rng) for _ in range(4)] for _ in range(3)]
    from repro.cache import areas_nbytes

    with Session(CompareOptions(backend="vectorized", cache=True)) as probe:
        one_entry = areas_nbytes(probe.compare(batches[0]))
    options = CompareOptions(
        backend="vectorized", cache=True, cache_bytes=int(one_entry * 1.5)
    )
    with Session(options) as session:
        for batch in batches:
            session.compare(batch)
        stats = session.cache_stats()["session.request"]
        assert stats["entries"] == 1
        assert stats["evictions"] == 2
        assert stats["current_bytes"] <= int(one_entry * 1.5)
        # The survivor is the most recent batch.
        session.compare(batches[-1])
        assert session.cache_stats()["session.request"]["hits"] == 1


def test_session_explain_reports_cache_plan(pairs):
    options = CompareOptions(backend="vectorized", cache=True)
    with Session(options) as session:
        request = CompareRequest.from_pairs(pairs, options)
        plan = session.explain(request)
        assert plan.cache["enabled"] is True
        assert plan.cache["would_hit"] is False
        session.compare(pairs)
        plan = session.explain(request)
        assert plan.cache["would_hit"] is True
        assert plan.cache["request_key"].startswith("request:")
        # explain() itself must not perturb the counters.
        assert session.cache_stats()["session.request"]["hits"] == 0


def test_module_explain_cache_section(pairs):
    from repro.api import explain

    plan = explain(CompareRequest.from_pairs(pairs, CompareOptions()))
    assert plan.cache == {
        "enabled": False,
        "cache_bytes": None,
        "request_key": None,
        "would_hit": None,
    }
    plan = explain(
        CompareRequest.from_pairs(pairs, CompareOptions(cache=True))
    )
    assert plan.cache["enabled"] is True
    assert plan.cache["request_key"] is not None
    assert plan.cache["would_hit"] is None  # no store to consult
    assert "cache" in plan.as_dict()


def test_clear_caches_resets_stores(pairs):
    with Session(CompareOptions(backend="vectorized", cache=True)) as session:
        session.compare(pairs)
        session.clear_caches()
        assert session.cache_stats()["session.request"]["entries"] == 0
        session.compare(pairs)  # recomputed: the entry really was dropped
        stats = session.cache_stats()["session.request"]
        assert stats["entries"] == 1
        assert stats["insertions"] == 2  # counters are cumulative
        assert stats["hits"] == 0


# ----------------------------------------------------------------------
# Backend tiers: coordinator + multiprocess shard caches
# ----------------------------------------------------------------------

def test_cluster_tiers_count_hits(pairs):
    options = CompareOptions(
        backend="cluster",
        cache=True,
        backend_options={"min_pairs": 1, "loopback_workers": 2},
    )
    with Session(options) as session:
        cold = session.compare(pairs)
        session.clear_caches()  # drop the request + coordinator tiers
        # Workers keep their own shard-result tier across coordinator
        # cache clears: the recompute is served from worker memory.
        warm = session.compare(pairs)
        _assert_identical(cold, warm)
        stats = session.cache_stats()
        assert stats["coordinator.merge"]["misses"] >= 2
        assert stats["coordinator.shard"]["insertions"] >= 1


def test_multiprocess_shard_tier(pairs):
    options = CompareOptions(
        backend="multiprocess",
        cache=True,
        backend_options={"workers": 2, "min_pairs": 1},
    )
    with Session(options) as session:
        cold = session.compare(pairs)
        session._request_cache.clear()  # force re-dispatch into the backend
        warm = session.compare(pairs)
        _assert_identical(cold, warm)
        stats = session.cache_stats()
        assert stats["multiprocess.shard"]["hits"] >= 1


# ----------------------------------------------------------------------
# Service tier
# ----------------------------------------------------------------------

def _run(coro):
    return asyncio.run(coro)


def test_service_request_cache_hit_and_isolation(pairs):
    from repro.service import ComparisonService, ServiceConfig

    async def scenario():
        config = ServiceConfig(backend="vectorized", cache=True)
        async with ComparisonService(config) as service:
            cold = await service.submit(pairs)
            warm = await service.submit(pairs)
            _assert_identical(cold, warm)
            cold.intersection[:] = -1  # callers may mutate their copy
            again = await service.submit(pairs)
            _assert_identical(warm, again)
            snap = service.snapshot()
            assert snap.request_cache_hits == 2
            assert snap.request_cache_misses == 1
            assert snap.caches["service.request"]["entries"] == 1
            assert snap.batches == 1  # one real dispatch for three requests

    _run(scenario())


def test_service_stampede_dedupes_within_batch(pairs):
    from repro.backends import get_backend
    from repro.service import ComparisonService, ServiceConfig

    class CountingBackend:
        description = "counting test backend"

        def __init__(self):
            self._inner = get_backend("vectorized")
            self.calls = 0
            self.pairs_seen = 0

        def compare_pairs(self, pairs, config=None):
            self.calls += 1
            self.pairs_seen += len(pairs)
            return self._inner.compare_pairs(pairs, config)

        def close(self):
            self._inner.close()

    backend = CountingBackend()

    async def scenario():
        config = ServiceConfig(
            backend="vectorized", cache=True, coalesce_window=0.05
        )
        async with ComparisonService(config, backend=backend) as service:
            results = await asyncio.gather(
                *[service.submit(pairs) for _ in range(6)]
            )
            for r in results[1:]:
                _assert_identical(results[0], r)
            snap = service.snapshot()
            # All six coalesced into one dispatch carrying ONE copy of
            # the pairs: identical requests collapse to a leader.
            assert backend.pairs_seen == len(pairs)
            assert snap.request_cache_hits >= 5

    _run(scenario())
    assert backend.calls == 1


def test_service_config_carries_cache_knobs():
    from repro.errors import ServiceError
    from repro.service import ServiceConfig

    options = CompareOptions(backend="vectorized", cache=True, cache_bytes=2**20)
    config = ServiceConfig.from_options(options)
    assert config.cache is True
    assert config.cache_bytes == 2**20
    assert ServiceConfig().cache is False
    with pytest.raises(ServiceError):
        ServiceConfig(cache_bytes=0)


def test_service_clear_caches(pairs):
    from repro.service import ComparisonService, ServiceConfig

    async def scenario():
        config = ServiceConfig(backend="vectorized", cache=True)
        async with ComparisonService(config) as service:
            await service.submit(pairs)
            service.clear_caches()
            assert (
                service.snapshot().caches["service.request"]["entries"] == 0
            )
            await service.submit(pairs)
            snap = service.snapshot()
            assert snap.request_cache_hits == 0
            assert snap.request_cache_misses == 2

    _run(scenario())
