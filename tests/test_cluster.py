"""Cluster subsystem tests: wire protocol, caching, scheduling, faults.

The registry-introspecting parity harness (``test_backend_parity.py``)
already covers the ``cluster`` backend's results bit-for-bit — including
the degenerate-input sweep — because registering *is* opting in.  This
file covers what parity cannot: the wire protocol's defensive surface,
the once-per-worker-per-table-version transfer guarantee, and the
failure modes (crashed workers, stragglers, cache eviction, garbage on
the socket) that must degrade without changing a single output bit.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.backends import get_backend
from repro.cluster import (
    ClusterBackend,
    LoopbackCluster,
    Shard,
    ShardScheduler,
    ShardWorker,
    parse_hosts,
)
from repro.cluster import wire
from repro.cluster.scheduler import ShardOutcome
from repro.errors import (
    ClusterConfigError,
    ClusterError,
    ClusterProtocolError,
    KernelError,
)
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.common import KernelStats, LaunchConfig


def _pairs(count: int = 40, seed: int = 20260731):
    """Small randomized polygon pairs plus handcrafted degenerates."""
    from repro.geometry.raster import extract_polygons, fill_holes

    rng = np.random.default_rng(seed)

    def one():
        while True:
            mask = fill_holes(rng.random((12, 14)) < 0.5)
            polys = extract_polygons(mask)
            if polys:
                return max(polys, key=lambda p: p.area)

    square = RectilinearPolygon.from_box(Box(0, 0, 8, 8))
    far = RectilinearPolygon.from_box(Box(100, 100, 108, 108))
    pairs = [(one(), one()) for _ in range(count - 2)]
    return pairs + [(square, square), (square, far)]


@pytest.fixture(scope="module")
def workload():
    pairs = _pairs()
    ref = get_backend("vectorized").compare_pairs(pairs)
    return pairs, ref


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
def test_wire_roundtrip_arrays():
    arrays = {
        "a": np.arange(12, dtype=np.int64).reshape(3, 4),
        "b": np.zeros(0, dtype=np.int32),
        "c": np.array([True, False]),
    }
    frame = wire.pack_frame(wire.MsgType.PUT_TABLES, {"digest": "x"}, arrays)
    # Frame = fixed header + payload; strip the fixed header.
    header, decoded = wire.unpack_payload(frame[8:])
    assert header["digest"] == "x"
    for name, arr in arrays.items():
        assert np.array_equal(decoded[name], arr)
        assert decoded[name].dtype == arr.dtype


@pytest.mark.parametrize(
    "payload",
    [
        b"",
        b"\x00\x00\x00\xffgarbage",
        b"\x00\x00\x00\x02{]",
        b"\x00\x00\x00\x04null",
    ],
)
def test_wire_rejects_malformed_payloads(payload):
    with pytest.raises(ClusterProtocolError):
        wire.unpack_payload(payload)


def test_wire_rejects_lying_manifest():
    frame = wire.pack_frame(
        wire.MsgType.PUT_TABLES, {}, {"a": np.arange(4, dtype=np.int64)}
    )
    payload = bytearray(frame[8:])
    # Corrupt the declared blob size in the manifest.
    mutated = bytes(payload).replace(b'32]', b'31]')
    with pytest.raises(ClusterProtocolError):
        wire.unpack_payload(mutated)


def test_bundle_digest_is_content_addressed():
    a = {"x": np.arange(8, dtype=np.int64)}
    b = {"x": np.arange(8, dtype=np.int64)}
    c = {"x": np.arange(8, dtype=np.int32)}  # same values, new dtype
    assert wire.bundle_digest(a) == wire.bundle_digest(b)
    assert wire.bundle_digest(a) != wire.bundle_digest(c)


def test_config_roundtrips_on_the_wire():
    cfg = LaunchConfig(block_size=16, pixel_threshold=9, tight_mbr=True)
    assert wire.config_from_wire(wire.config_to_wire(cfg)) == cfg
    with pytest.raises(ClusterProtocolError):
        wire.config_from_wire({"block_size": "huge"})
    with pytest.raises(ClusterProtocolError):
        wire.config_from_wire({"unknown_knob": 1})


# ----------------------------------------------------------------------
# Host-list validation (clear failures at configuration time)
# ----------------------------------------------------------------------
def test_parse_hosts_accepts_list_and_string():
    assert parse_hosts("a:1, b:2") == [("a", 1), ("b", 2)]
    assert parse_hosts(["a:1"]) == [("a", 1)]
    assert parse_hosts(None) == []


@pytest.mark.parametrize("bad", ["nonsense", "host:", ":42", "h:0", "h:notaport"])
def test_cluster_misconfiguration_fails_clearly(bad):
    with pytest.raises(ClusterConfigError):
        get_backend("cluster", hosts=bad)


def test_unknown_backend_option_names_the_backend():
    with pytest.raises(KernelError, match="'batch' rejected options"):
        get_backend("batch", hosts="a:1")


# ----------------------------------------------------------------------
# Transfer counting: tables travel once per worker per table version
# ----------------------------------------------------------------------
def test_tables_sent_once_per_worker_per_version(workload):
    pairs, ref = workload
    with LoopbackCluster(2) as cluster:
        backend = get_backend("cluster", hosts=cluster.hosts, min_pairs=1)
        try:
            for _ in range(3):  # same table version three times
                result = backend.compare_pairs(pairs)
                assert np.array_equal(result.intersection, ref.intersection)
                assert np.array_equal(result.union, ref.union)
            assert backend.table_transfers == 2  # once per worker, total
            assert sum(w.tables_received for w in cluster.workers) == 2

            # A different config changes the start boxes -> a new table
            # version -> exactly one more transfer per worker.
            cfg = LaunchConfig(tight_mbr=True)
            ref2 = get_backend("vectorized").compare_pairs(pairs, cfg)
            result = backend.compare_pairs(pairs, cfg)
            assert np.array_equal(result.intersection, ref2.intersection)
            assert backend.table_transfers == 4
        finally:
            backend.close()


def test_worker_cache_survives_coordinator_reconnect(workload):
    pairs, ref = workload
    with LoopbackCluster(1) as cluster:
        backend = get_backend("cluster", hosts=cluster.hosts, min_pairs=1)
        try:
            backend.compare_pairs(pairs)
            assert backend.table_transfers == 1
        finally:
            backend.close()
        # A fresh coordinator learns the cached digests from HELLO_ACK
        # and pays zero transfers for the same table version.
        backend2 = get_backend("cluster", hosts=cluster.hosts, min_pairs=1)
        try:
            result = backend2.compare_pairs(pairs)
            assert np.array_equal(result.intersection, ref.intersection)
            assert backend2.table_transfers == 0
        finally:
            backend2.close()


def test_table_cache_eviction_triggers_resend(workload):
    pairs_a, ref_a = workload
    pairs_b = _pairs(count=30, seed=777)
    ref_b = get_backend("vectorized").compare_pairs(pairs_b)
    with LoopbackCluster(1, max_tables=1) as cluster:
        worker = cluster.workers[0]
        backend = get_backend("cluster", hosts=cluster.hosts, min_pairs=1)
        try:
            for _ in range(2):  # A, B, A, B: each call evicts the other
                res_a = backend.compare_pairs(pairs_a)
                res_b = backend.compare_pairs(pairs_b)
                assert np.array_equal(res_a.intersection, ref_a.intersection)
                assert np.array_equal(res_b.intersection, ref_b.intersection)
            assert worker.tables_evicted >= 3
            assert backend.table_transfers == 4
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class _CrashingWorker(ShardWorker):
    """Dies (listener and connection) on its first RUN_SHARD."""

    def _before_shard(self, header):
        self.stop()
        raise ConnectionResetError("worker killed mid-shard")


class _SlowWorker(ShardWorker):
    """Holds every shard long enough to look like a straggler."""

    delay = 0.6

    def _before_shard(self, header):
        time.sleep(self.delay)


def test_worker_crash_mid_shard_does_not_change_results(workload):
    pairs, ref = workload
    crasher = _CrashingWorker().start()
    healthy = ShardWorker().start()
    hosts = [
        "%s:%d" % crasher.address,
        "%s:%d" % healthy.address,
    ]
    backend = get_backend(
        "cluster",
        hosts=hosts,
        min_pairs=1,
        shard_pairs=8,
        # Long speculation fuse: recovery must come from failure
        # re-dispatch, not from speculation racing ahead of it.
        speculation_delay=5.0,
    )
    try:
        result = backend.compare_pairs(pairs)
        assert np.array_equal(result.intersection, ref.intersection)
        assert np.array_equal(result.union, ref.union)
        assert result.stats.as_dict() == ref.stats.as_dict()
        assert backend.last_report.worker_failures >= 1
        assert healthy.shards_run >= 1
    finally:
        backend.close()
        healthy.stop()
        crasher.stop()


def test_all_workers_dead_falls_back_to_local(workload):
    pairs, ref = workload
    crasher_a = _CrashingWorker().start()
    crasher_b = _CrashingWorker().start()
    hosts = ["%s:%d" % crasher_a.address, "%s:%d" % crasher_b.address]
    backend = get_backend(
        "cluster", hosts=hosts, min_pairs=1, shard_pairs=16
    )
    try:
        result = backend.compare_pairs(pairs)  # must not hang or fail
        assert np.array_equal(result.intersection, ref.intersection)
        assert result.stats.as_dict() == ref.stats.as_dict()
        assert backend.last_report.local_shards >= 1
    finally:
        backend.close()
        crasher_a.stop()
        crasher_b.stop()


def test_slow_worker_triggers_speculative_redispatch(workload):
    pairs, ref = workload
    slow = _SlowWorker().start()
    fast = ShardWorker().start()
    hosts = ["%s:%d" % slow.address, "%s:%d" % fast.address]
    backend = get_backend(
        "cluster",
        hosts=hosts,
        min_pairs=1,
        shard_pairs=len(pairs) // 2,
        speculation_delay=0.05,
    )
    try:
        t0 = time.perf_counter()
        result = backend.compare_pairs(pairs)
        elapsed = time.perf_counter() - t0
        assert np.array_equal(result.intersection, ref.intersection)
        assert result.stats.as_dict() == ref.stats.as_dict()
        assert backend.last_report.speculative >= 1
        # The fast worker's speculative copies finish the request well
        # before the straggler would have served its second shard.
        assert elapsed < 2 * _SlowWorker.delay
    finally:
        backend.close()
        slow.stop()
        fast.stop()


def test_protocol_garbage_is_a_clean_client_error(workload):
    pairs, ref = workload
    with LoopbackCluster(1) as cluster:
        host, port = cluster.workers[0].address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n")
            msgtype, header, _ = wire.recv_frame(sock)
            assert msgtype == wire.MsgType.ERROR
            assert header["kind"] == "bad-request"
            # The worker dropped this connection (framing lost) ...
            try:
                assert sock.recv(1) == b""
            except ConnectionError:
                pass  # RST instead of FIN: also a drop
        assert cluster.workers[0].protocol_errors == 1
        # ... but keeps serving everyone else, correctly.
        backend = get_backend("cluster", hosts=cluster.hosts, min_pairs=1)
        try:
            result = backend.compare_pairs(pairs)
            assert np.array_equal(result.intersection, ref.intersection)
        finally:
            backend.close()


def test_worker_rejects_run_shard_for_unknown_digest():
    with LoopbackCluster(1) as cluster:
        host, port = cluster.workers[0].address
        with socket.create_connection((host, port), timeout=5) as sock:
            wire.send_frame(
                sock,
                wire.MsgType.RUN_SHARD,
                {"digest": "missing", "lo": 0, "hi": 1},
            )
            msgtype, header, _ = wire.recv_frame(sock)
            assert msgtype == wire.MsgType.ERROR
            assert header["kind"] == "missing-tables"


# ----------------------------------------------------------------------
# Scheduler unit behavior (no sockets)
# ----------------------------------------------------------------------
def _outcome(shard: Shard) -> ShardOutcome:
    inter = np.arange(shard.lo, shard.hi, dtype=np.int64)
    return ShardOutcome(inter=inter, stats=KernelStats(pairs=shard.size))


def test_scheduler_with_no_workers_runs_everything_locally():
    shards = [Shard(0, 0, 5), Shard(1, 5, 9)]
    scheduler = ShardScheduler(
        run=lambda worker, shard: (_ for _ in ()).throw(
            ClusterError("unreachable")
        ),
        local_run=_outcome,
    )
    outcomes, report = scheduler.execute(shards, [])
    assert sorted(outcomes) == [0, 1]
    assert report.local_shards == 2
    assert np.array_equal(outcomes[1].inter, np.arange(5, 9))


def test_scheduler_first_result_wins_charges_one_execution():
    """Duplicate executions of one shard must not double work counters."""
    shards = [Shard(i, i * 4, i * 4 + 4) for i in range(3)]
    calls = []
    lock = threading.Lock()

    def run(worker, shard):
        with lock:
            calls.append((worker, shard.index))
        if worker == "slow":
            time.sleep(0.4)
        return _outcome(shard)

    scheduler = ShardScheduler(
        run, _outcome, speculation_delay=0.05, speculation_factor=1.5
    )
    outcomes, report = scheduler.execute(shards, ["slow", "fast"])
    total_pairs = sum(o.stats.pairs for o in outcomes.values())
    assert total_pairs == sum(s.size for s in shards)
    assert report.dispatches >= 3


# ----------------------------------------------------------------------
# Service integration: the queue/coalescer sit above the cluster
# ----------------------------------------------------------------------
def test_service_serves_from_cluster_backend(workload):
    import asyncio

    from repro.service import ComparisonService, ServiceConfig

    pairs, ref = workload

    async def main():
        config = ServiceConfig(
            backend="cluster",
            backend_options={"min_pairs": 1, "loopback_workers": 2},
        )
        async with ComparisonService(config) as service:
            assert service.backend.capabilities().persistent_pooling
            results = await asyncio.gather(
                *(service.submit(pairs[i::4]) for i in range(4))
            )
            return results

    results = asyncio.run(main())
    for i, result in enumerate(results):
        expect = ref.intersection[i::4]
        assert np.array_equal(result.intersection, expect)


def test_service_warm_failure_is_a_service_error():
    import asyncio

    from repro.errors import ServiceError
    from repro.service import ComparisonService, ServiceConfig

    async def main():
        config = ServiceConfig(
            backend="cluster",
            # A port nothing listens on: startup must fail loudly.
            backend_options={"hosts": "127.0.0.1:9", "connect_timeout": 0.2},
        )
        with pytest.raises(ServiceError, match="failed to warm"):
            async with ComparisonService(config):
                pass  # pragma: no cover

    asyncio.run(main())


def test_cluster_warm_reports_reachable_workers():
    with LoopbackCluster(2) as cluster:
        backend = ClusterBackend(hosts=cluster.hosts)
        try:
            assert sorted(backend.warm()) == sorted(cluster.hosts)
        finally:
            backend.close()
    backend = ClusterBackend(hosts="127.0.0.1:9", connect_timeout=0.2)
    try:
        with pytest.raises(ClusterError, match="no cluster workers"):
            backend.warm()
    finally:
        backend.close()
