"""Cost-model calibration: profile fitting, loading, and fallback.

The contract under test: ``repro calibrate`` fits measured constants
into a JSON profile; the recommenders use an active profile's constants
and silently keep the modeled defaults when none is configured — a bad
profile path or malformed file is a loud :class:`DeviceError`, never a
silent fallback.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import DeviceError
from repro.gpu import cost
from repro.gpu.calibrate import run_calibration, write_profile


@pytest.fixture(autouse=True)
def _isolated_calibration():
    """No test leaks an active profile into the rest of the suite."""
    cost.clear_calibration()
    yield
    cost.clear_calibration()


def test_calibration_roundtrip(tmp_path):
    profile = cost.CostCalibration(
        cycles_per_second=1e9,
        process_spinup_cycles=5e7,
        shard_dispatch_cycles=1e6,
        source="unit-test",
    )
    path = write_profile(profile, tmp_path / "profile.json")
    loaded = cost.load_calibration(path)
    assert loaded == profile


@pytest.mark.parametrize(
    "raw",
    [
        "not json",
        json.dumps({"cycles_per_second": 1e9}),  # missing keys
        json.dumps(
            {
                "cycles_per_second": 0,  # non-positive
                "process_spinup_cycles": 1,
                "shard_dispatch_cycles": 1,
            }
        ),
        json.dumps(
            {
                "cycles_per_second": "fast",
                "process_spinup_cycles": 1,
                "shard_dispatch_cycles": 1,
            }
        ),
    ],
)
def test_malformed_profile_is_loud(tmp_path, raw):
    path = tmp_path / "bad.json"
    path.write_text(raw)
    with pytest.raises(DeviceError):
        cost.load_calibration(path)


def test_missing_profile_path_is_loud(tmp_path):
    with pytest.raises(DeviceError):
        cost.load_calibration(tmp_path / "nope.json")


def test_env_var_activates_profile(tmp_path, monkeypatch):
    profile = cost.CostCalibration(
        cycles_per_second=2e9,
        process_spinup_cycles=7e7,
        shard_dispatch_cycles=3e6,
    )
    path = write_profile(profile, tmp_path / "profile.json")
    monkeypatch.setenv("REPRO_COST_PROFILE", str(path))
    cost.clear_calibration()
    assert cost.active_calibration() == profile
    monkeypatch.delenv("REPRO_COST_PROFILE")
    cost.clear_calibration()
    assert cost.active_calibration() is None


def test_recommenders_use_calibrated_constants():
    # A huge measured spin-up cost must push the recommendation away
    # from the multiprocess backend on a workload the modeled constants
    # would shard; calibration is wired in, not decorative.
    workload = dict(
        n_pairs=2_000_000, mean_edges=40.0, mean_mbr_pixels=900.0,
        pixel_threshold=2048, workers=4,
        compiled=False,  # pin the NumPy ranking on numba-equipped hosts
    )
    assert cost.recommend_backend(**workload) == "multiprocess"
    expensive_forks = cost.CostCalibration(
        cycles_per_second=1e9,
        process_spinup_cycles=1e15,
        shard_dispatch_cycles=1e6,
    )
    assert (
        cost.recommend_backend(**workload, calibration=expensive_forks)
        != "multiprocess"
    )

    # Shard sizing: a costlier measured dispatch demands bigger shards.
    small = cost.recommend_shard_pairs(
        10_000, 40.0, 900.0, 2048, workers=2,
        calibration=cost.CostCalibration(1e9, 1e8, 1e6),
    )
    large = cost.recommend_shard_pairs(
        10_000, 40.0, 900.0, 2048, workers=2,
        calibration=cost.CostCalibration(1e9, 1e8, 1e9),
    )
    assert large > small

    # Batch budget: dearer spin-up -> bigger coalesced dispatches.
    lean = cost.recommend_batch_pairs(
        40.0, 900.0, 2048,
        calibration=cost.CostCalibration(1e9, 1e8, 1e6),
    )
    rich = cost.recommend_batch_pairs(
        40.0, 900.0, 2048,
        calibration=cost.CostCalibration(1e9, 1e11, 1e6),
    )
    assert rich >= lean


def test_shard_pairs_bounds():
    assert cost.recommend_shard_pairs(0, 1.0, 1.0, 64) == 1
    n = 1000
    size = cost.recommend_shard_pairs(n, 40.0, 900.0, 2048, workers=4)
    assert 1 <= size <= n


@pytest.mark.slow
def test_quick_calibration_produces_a_usable_profile(tmp_path):
    """End-to-end: measure on this host, write, load, recommend."""
    profile = run_calibration(quick=True)
    assert profile.cycles_per_second > 0
    assert profile.process_spinup_cycles > 0
    assert profile.shard_dispatch_cycles > 0
    path = write_profile(profile, tmp_path / "cost_profile.json")
    loaded = cost.load_calibration(path)
    choice = cost.recommend_backend(
        5000, 40.0, 900.0, 2048, workers=2, calibration=loaded
    )
    assert choice in ("batch", "vectorized", "multiprocess", "numba")
