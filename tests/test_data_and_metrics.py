"""Unit tests for repro.data (synthetic slides) and repro.metrics."""

import numpy as np
import pytest

from repro.data.datasets import DatasetSpec, generate_dataset, suite_specs
from repro.data.perturb import PerturbModel
from repro.data.shapes import rasterize_shape, sample_shape
from repro.data.stats import dataset_stats, polygon_stats
from repro.data.synth import TileSpec, generate_tile, generate_tile_pair
from repro.errors import DatasetError, GeometryError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.io.polyfile import read_polygons
from repro.io.tiles import list_tile_files
from repro.metrics.jaccard import (
    jaccard_from_areas,
    jaccard_global,
    jaccard_pairwise,
)
from repro.pixelbox.api import batch_areas


class TestShapes:
    def test_rasterized_area_reasonable(self, rng):
        shape = sample_shape(rng, 20, 20)
        mask = rasterize_shape(shape, 40, 40)
        assert 20 < mask.sum() < 1200

    def test_grow_monotone(self, rng):
        shape = sample_shape(rng, 20, 20)
        small = rasterize_shape(shape, 40, 40, grow=-0.2).sum()
        base = rasterize_shape(shape, 40, 40).sum()
        big = rasterize_shape(shape, 40, 40, grow=0.2).sum()
        assert small < base < big

    def test_shift_moves_centroid(self, rng):
        shape = sample_shape(rng, 20, 20)
        base = rasterize_shape(shape, 60, 60)
        moved = rasterize_shape(shape, 60, 60, shift=(10.0, 0.0))
        assert abs(
            np.nonzero(moved)[1].mean() - np.nonzero(base)[1].mean() - 10.0
        ) < 1.5

    def test_clipped_at_tile_border(self, rng):
        shape = sample_shape(rng, 1, 1)
        mask = rasterize_shape(shape, 30, 30)
        assert mask.shape == (30, 30)

    def test_invalid_radius(self, rng):
        with pytest.raises(DatasetError):
            sample_shape(rng, 0, 0, mean_radius=-1)


class TestSynthTiles:
    def test_deterministic(self):
        a1, b1 = generate_tile_pair(seed=3, nuclei=15, width=128, height=128)
        a2, b2 = generate_tile_pair(seed=3, nuclei=15, width=128, height=128)
        assert a1 == a2 and b1 == b2

    def test_different_seeds_differ(self):
        a1, _ = generate_tile_pair(seed=3, nuclei=15, width=128, height=128)
        a2, _ = generate_tile_pair(seed=4, nuclei=15, width=128, height=128)
        assert a1 != a2

    def test_polygons_within_tile(self):
        tile = generate_tile(TileSpec(width=128, height=128, nuclei=20, seed=1))
        frame = Box(0, 0, 128, 128)
        for poly in tile.polygons_a + tile.polygons_b:
            assert frame.contains_box(poly.mbr)

    def test_area_statistics_match_paper(self):
        polys = []
        for seed in range(4):
            a, _ = generate_tile_pair(seed=seed, nuclei=60)
            polys.extend(a)
        stats = polygon_stats(polys)
        # Paper: mean ~150 px, sd ~100 px.
        assert 110 < stats.area_mean < 220
        assert 60 < stats.area_sd < 170

    def test_invalid_spec(self):
        with pytest.raises(DatasetError):
            TileSpec(width=8, height=8)

    def test_perturb_validation(self):
        with pytest.raises(DatasetError):
            PerturbModel(drop_rate=1.5)


class TestDatasets:
    def test_generate_and_cache(self, tmp_path):
        spec = DatasetSpec(name="mini", tiles=2, nuclei_per_tile=10,
                           tile_width=128, tile_height=128, seed=5)
        dir_a, dir_b = generate_dataset(spec, tmp_path)
        assert len(list_tile_files(dir_a)) == 2
        first = (dir_a / "tile_0000.txt").read_text()
        # Second call is a cache hit (files unchanged).
        generate_dataset(spec, tmp_path)
        assert (dir_a / "tile_0000.txt").read_text() == first

    def test_tiles_do_not_overlap_in_slide_space(self, tmp_path):
        spec = DatasetSpec(name="grid", tiles=4, nuclei_per_tile=10,
                           tile_width=128, tile_height=128, seed=6)
        dir_a, _ = generate_dataset(spec, tmp_path)
        mbrs = []
        for path in list_tile_files(dir_a).values():
            polys = read_polygons(path)
            mbr = polys[0].mbr
            for p in polys[1:]:
                mbr = mbr.cover(p.mbr)
            mbrs.append(mbr)
        for i in range(len(mbrs)):
            for j in range(i + 1, len(mbrs)):
                assert not mbrs[i].intersects(mbrs[j])

    def test_suite_specs_relative_sizes(self):
        specs = suite_specs(scale=0.05)
        assert len(specs) == 18
        tiles = [s.tiles for s in specs]
        assert tiles == sorted(tiles)
        assert tiles[-1] > 5 * tiles[0]

    def test_suite_scale_validation(self):
        with pytest.raises(DatasetError):
            suite_specs(scale=0)

    def test_dataset_stats(self, small_dataset):
        dir_a, _ = small_dataset
        stats = dataset_stats(dir_a)
        assert stats.count > 0
        assert stats.area_mean > 0
        assert "polygons" in str(stats)


class TestJaccardMetrics:
    def test_pairwise_identical_sets(self, tile_pair):
        a, _ = tile_pair
        res = jaccard_pairwise(a, a)
        assert res.mean_ratio == pytest.approx(1.0)
        assert res.missing_a == res.missing_b == 0

    def test_pairwise_disjoint_sets(self):
        a = [RectilinearPolygon.from_box(Box(0, 0, 2, 2))]
        b = [RectilinearPolygon.from_box(Box(10, 10, 12, 12))]
        res = jaccard_pairwise(a, b)
        assert res.mean_ratio == 0.0
        assert res.missing_a == 1 and res.missing_b == 1

    def test_pairwise_on_synthetic_tile(self, tile_pair):
        a, b = tile_pair
        res = jaccard_pairwise(a, b)
        assert 0.4 < res.mean_ratio < 1.0
        assert res.intersecting_pairs <= res.candidate_pairs

    def test_missing_counts(self):
        a = [RectilinearPolygon.from_box(Box(0, 0, 4, 4)),
             RectilinearPolygon.from_box(Box(20, 20, 24, 24))]
        b = [RectilinearPolygon.from_box(Box(1, 1, 5, 5))]
        res = jaccard_pairwise(a, b)
        assert res.missing_a == 1 and res.missing_b == 0

    def test_global_jaccard_bounds(self, tile_pair):
        a, b = tile_pair
        value = jaccard_global(a, b)
        pw = jaccard_pairwise(a, b)
        assert 0.0 < value <= 1.0
        # Set-level J counts missing polygons, so it cannot exceed the
        # pairwise mean by much; sanity band only.
        assert value <= 1.0

    def test_global_identical(self, tile_pair):
        a, _ = tile_pair
        assert jaccard_global(a, a) == pytest.approx(1.0)

    def test_global_empty(self):
        assert jaccard_global([], []) == 0.0

    def test_from_areas_validates_lengths(self, tile_pair):
        a, b = tile_pair
        areas = batch_areas([(a[0], b[0])])
        with pytest.raises(GeometryError):
            jaccard_from_areas(areas, np.array([0, 1]), np.array([0]), 1, 1)
