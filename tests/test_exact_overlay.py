"""Unit tests for repro.exact: decomposition, regions, boolean overlay."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.exact.boolean import (
    difference,
    intersection,
    intersection_area,
    subtract_box,
    union,
    union_area,
)
from repro.exact.decompose import decompose, decompose_edges
from repro.exact.measure import CoverageSegmentTree, union_area_of_boxes
from repro.exact.region import RectRegion
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import polygon_to_mask
from tests.conftest import random_pair

L_SHAPE = RectilinearPolygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 5), (0, 5)])


class TestDecompose:
    def test_rectangle_is_single_rect(self):
        poly = RectilinearPolygon.from_box(Box(1, 1, 5, 4))
        assert decompose(poly) == [Box(1, 1, 5, 4)]

    def test_l_shape_two_slabs(self):
        rects = decompose(L_SHAPE)
        assert sum(r.size for r in rects) == L_SHAPE.area
        RectRegion(rects).validate_disjoint()

    def test_decompose_covers_exact_pixels(self, rng):
        from tests.conftest import random_polygon

        for _ in range(25):
            poly = random_polygon(rng)
            mask = polygon_to_mask(poly, poly.mbr)
            acc = np.zeros_like(mask)
            for r in decompose(poly):
                acc[
                    r.y0 - poly.mbr.y0 : r.y1 - poly.mbr.y0,
                    r.x0 - poly.mbr.x0 : r.x1 - poly.mbr.x0,
                ] = True
            assert np.array_equal(acc, mask)

    def test_decompose_edges_merges_coincident(self):
        # Two adjacent rects expressed as raw edges merge into one.
        edges = [(0, 0, 1), (2, 0, 1), (2, 0, 1), (4, 0, 1)]
        assert decompose_edges(edges) == [Box(0, 0, 4, 1)]

    def test_unbalanced_edges_raise(self):
        with pytest.raises(GeometryError):
            decompose_edges([(0, 0, 2), (1, 0, 1)])


class TestRectRegion:
    def test_area_and_len(self):
        region = RectRegion([Box(0, 0, 2, 2), Box(5, 0, 6, 1)])
        assert region.area == 5 and len(region) == 2 and bool(region)

    def test_empty_region(self):
        region = RectRegion.empty()
        assert region.area == 0 and not region and region.mbr is None

    def test_normalized_equality(self):
        a = RectRegion([Box(0, 0, 2, 1), Box(2, 0, 4, 1)])
        b = RectRegion([Box(0, 0, 4, 1)])
        assert a == b and hash(a) == hash(b)

    def test_contains_pixel(self):
        region = RectRegion([Box(0, 0, 2, 2)])
        assert region.contains_pixel(1, 1) and not region.contains_pixel(2, 2)

    def test_to_mask(self):
        region = RectRegion([Box(1, 1, 3, 2)])
        mask = region.to_mask(Box(0, 0, 4, 3))
        assert mask.sum() == 2 and mask[1, 1] and mask[1, 2]

    def test_validate_disjoint_catches_overlap(self):
        with pytest.raises(GeometryError):
            RectRegion([Box(0, 0, 3, 3), Box(2, 2, 4, 4)]).validate_disjoint()


class TestBooleanOverlay:
    def test_intersection_of_squares(self):
        a = RectilinearPolygon.from_box(Box(0, 0, 4, 4))
        b = RectilinearPolygon.from_box(Box(2, 2, 6, 6))
        region = intersection(a, b)
        assert region.area == 4
        assert region == RectRegion([Box(2, 2, 4, 4)])

    def test_union_of_squares(self):
        a = RectilinearPolygon.from_box(Box(0, 0, 4, 4))
        b = RectilinearPolygon.from_box(Box(2, 2, 6, 6))
        assert union(a, b).area == 28
        assert union_area(a, b) == 28

    def test_difference(self):
        a = RectilinearPolygon.from_box(Box(0, 0, 4, 4))
        b = RectilinearPolygon.from_box(Box(2, 0, 6, 4))
        region = difference(a, b)
        assert region.area == 8
        assert not difference(b, b).area

    def test_disjoint_intersection_empty(self):
        a = RectilinearPolygon.from_box(Box(0, 0, 2, 2))
        b = RectilinearPolygon.from_box(Box(5, 5, 7, 7))
        assert intersection(a, b).area == 0
        assert intersection_area(a, b) == 0

    def test_matches_mask_ground_truth(self, rng):
        for _ in range(40):
            p, q = random_pair(rng)
            frame = p.mbr.cover(q.mbr)
            mp = polygon_to_mask(p, frame)
            mq = polygon_to_mask(q, frame)
            assert intersection_area(p, q) == int((mp & mq).sum())
            assert union_area(p, q) == int((mp | mq).sum())
            inter = intersection(p, q)
            inter.validate_disjoint()
            assert np.array_equal(inter.to_mask(frame), mp & mq)
            uni = union(p, q)
            uni.validate_disjoint()
            assert np.array_equal(uni.to_mask(frame), mp | mq)

    def test_inclusion_exclusion_identity(self, rng):
        for _ in range(20):
            p, q = random_pair(rng)
            assert (
                union_area(p, q)
                == p.area + q.area - intersection_area(p, q)
            )


class TestSubtractBox:
    def test_no_overlap_returns_original(self):
        assert subtract_box(Box(0, 0, 2, 2), Box(5, 5, 6, 6)) == [Box(0, 0, 2, 2)]

    def test_full_cover_returns_nothing(self):
        assert subtract_box(Box(1, 1, 2, 2), Box(0, 0, 4, 4)) == []

    def test_center_hole_four_pieces(self):
        pieces = subtract_box(Box(0, 0, 6, 6), Box(2, 2, 4, 4))
        assert len(pieces) == 4
        assert sum(p.size for p in pieces) == 32
        RectRegion(pieces).validate_disjoint()


class TestKleeMeasure:
    def test_empty(self):
        assert union_area_of_boxes([]) == 0

    def test_disjoint_sum(self):
        assert union_area_of_boxes([Box(0, 0, 2, 2), Box(5, 5, 6, 6)]) == 5

    def test_nested(self):
        assert union_area_of_boxes([Box(0, 0, 10, 10), Box(2, 2, 4, 4)]) == 100

    def test_matches_mask(self, rng):
        for _ in range(25):
            boxes = []
            for _ in range(int(rng.integers(1, 12))):
                x0 = int(rng.integers(0, 20))
                y0 = int(rng.integers(0, 20))
                boxes.append(
                    Box(x0, y0, x0 + int(rng.integers(1, 8)),
                        y0 + int(rng.integers(1, 8)))
                )
            mask = np.zeros((30, 30), dtype=bool)
            for b in boxes:
                mask[b.y0 : b.y1, b.x0 : b.x1] = True
            assert union_area_of_boxes(boxes) == int(mask.sum())

    def test_segment_tree_validation(self):
        tree = CoverageSegmentTree([0, 2, 5])
        tree.add(0, 2, +1)
        assert tree.covered_length == 2
        tree.add(0, 5, +1)
        assert tree.covered_length == 5
        tree.add(0, 2, -1)
        assert tree.covered_length == 5  # [0,5) still covers everything
        tree.add(0, 5, -1)
        assert tree.covered_length == 0
        with pytest.raises(GeometryError):
            tree.add(0, 5, -1)

    def test_segment_tree_unknown_coordinate(self):
        tree = CoverageSegmentTree([0, 4])
        with pytest.raises(GeometryError):
            tree.add(1, 4, 1)
