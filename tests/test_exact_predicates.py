"""Unit tests for repro.exact.predicates (OGC ST_* semantics)."""

import pytest

from repro.exact.predicates import (
    boundaries_touch,
    interiors_intersect,
    st_contains,
    st_disjoint,
    st_equals,
    st_intersects,
    st_touches,
    st_within,
)
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon


def square(x0, y0, x1, y1):
    return RectilinearPolygon.from_box(Box(x0, y0, x1, y1))


class TestIntersects:
    def test_overlapping(self):
        assert st_intersects(square(0, 0, 4, 4), square(2, 2, 6, 6))

    def test_edge_touching_counts(self):
        assert st_intersects(square(0, 0, 2, 2), square(2, 0, 4, 2))

    def test_corner_touching_counts(self):
        assert st_intersects(square(0, 0, 2, 2), square(2, 2, 4, 4))

    def test_disjoint(self):
        a, b = square(0, 0, 2, 2), square(5, 5, 7, 7)
        assert not st_intersects(a, b)
        assert st_disjoint(a, b)

    def test_containment_counts(self):
        assert st_intersects(square(0, 0, 10, 10), square(3, 3, 5, 5))

    def test_symmetric(self, rng):
        from tests.conftest import random_pair

        for _ in range(20):
            p, q = random_pair(rng)
            assert st_intersects(p, q) == st_intersects(q, p)


class TestTouches:
    def test_shared_edge(self):
        assert st_touches(square(0, 0, 2, 2), square(2, 0, 4, 2))

    def test_shared_corner(self):
        assert st_touches(square(0, 0, 2, 2), square(2, 2, 4, 4))

    def test_overlap_is_not_touch(self):
        assert not st_touches(square(0, 0, 4, 4), square(2, 2, 6, 6))

    def test_disjoint_is_not_touch(self):
        assert not st_touches(square(0, 0, 2, 2), square(5, 5, 7, 7))

    def test_boundaries_touch_collinear_overlap(self):
        assert boundaries_touch(square(0, 0, 4, 2), square(4, 0, 8, 2))


class TestContainment:
    def test_contains_proper(self):
        assert st_contains(square(0, 0, 10, 10), square(2, 2, 5, 5))

    def test_contains_self(self):
        a = square(0, 0, 3, 3)
        assert st_contains(a, a)

    def test_not_contains_partial_overlap(self):
        assert not st_contains(square(0, 0, 4, 4), square(2, 2, 6, 6))

    def test_within_is_converse(self):
        outer, inner = square(0, 0, 10, 10), square(1, 1, 3, 3)
        assert st_within(inner, outer)
        assert not st_within(outer, inner)

    def test_interiors_intersect_needs_area(self):
        assert not interiors_intersect(square(0, 0, 2, 2), square(2, 0, 4, 2))


class TestEquals:
    def test_same_pixels_different_rings(self):
        # An L-shape with a redundant structure vs its mirror trace.
        a = RectilinearPolygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 5), (0, 5)])
        b = a.reversed()
        assert st_equals(a, b)

    def test_different_area_not_equal(self):
        assert not st_equals(square(0, 0, 2, 2), square(0, 0, 3, 2))

    def test_same_area_different_place_not_equal(self):
        assert not st_equals(square(0, 0, 2, 2), square(5, 5, 7, 7))
