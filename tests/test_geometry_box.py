"""Unit tests for repro.geometry.box."""

import pytest

from repro.errors import GeometryError
from repro.geometry.box import Box


class TestConstruction:
    def test_valid_box(self):
        box = Box(1, 2, 4, 7)
        assert (box.width, box.height, box.size) == (3, 5, 15)

    @pytest.mark.parametrize("coords", [(0, 0, 0, 1), (0, 0, 1, 0), (2, 2, 1, 3)])
    def test_empty_box_rejected(self, coords):
        with pytest.raises(GeometryError):
            Box(*coords)

    def test_negative_coordinates_allowed(self):
        assert Box(-5, -3, -1, -2).size == 4

    def test_as_tuple_roundtrip(self):
        box = Box(3, 4, 9, 10)
        assert Box(*box.as_tuple()) == box


class TestSetOperations:
    def test_intersect_overlapping(self):
        assert Box(0, 0, 4, 4).intersect(Box(2, 2, 6, 6)) == Box(2, 2, 4, 4)

    def test_intersect_disjoint_is_none(self):
        assert Box(0, 0, 2, 2).intersect(Box(5, 5, 7, 7)) is None

    def test_intersect_touching_edge_is_none(self):
        # Half-open pixel semantics: sharing only a border covers no pixel.
        assert Box(0, 0, 2, 2).intersect(Box(2, 0, 4, 2)) is None

    def test_intersects_predicate_matches_intersect(self):
        a, b = Box(0, 0, 4, 4), Box(3, 3, 5, 5)
        assert a.intersects(b) and a.intersect(b) is not None

    def test_intersects_or_touches_on_shared_edge(self):
        a, b = Box(0, 0, 2, 2), Box(2, 0, 4, 2)
        assert not a.intersects(b)
        assert a.intersects_or_touches(b)

    def test_intersects_or_touches_on_corner(self):
        assert Box(0, 0, 2, 2).intersects_or_touches(Box(2, 2, 3, 3))

    def test_cover(self):
        assert Box(0, 0, 2, 2).cover(Box(5, 1, 6, 7)) == Box(0, 0, 6, 7)

    def test_contains_box(self):
        outer = Box(0, 0, 10, 10)
        assert outer.contains_box(Box(2, 3, 5, 6))
        assert outer.contains_box(outer)
        assert not Box(2, 3, 5, 6).contains_box(outer)

    def test_contains_pixel_half_open(self):
        box = Box(0, 0, 2, 2)
        assert box.contains_pixel(0, 0)
        assert box.contains_pixel(1, 1)
        assert not box.contains_pixel(2, 0)
        assert not box.contains_pixel(0, 2)


class TestSplit:
    def test_split_tiles_exactly(self):
        box = Box(0, 0, 70, 53)
        children = box.split(8, 8)
        assert sum(c.size for c in children) == box.size
        for a in children:
            for b in children:
                if a is not b:
                    assert not a.intersects(b)

    def test_split_narrow_box_drops_empty_slices(self):
        children = Box(0, 0, 3, 1).split(8, 8)
        assert len(children) == 3
        assert sum(c.size for c in children) == 3

    def test_split_single_pixel(self):
        assert Box(5, 5, 6, 6).split(4, 4) == [Box(5, 5, 6, 6)]

    def test_split_invalid_grid(self):
        with pytest.raises(GeometryError):
            Box(0, 0, 4, 4).split(0, 2)

    def test_split_matches_vectorized_cuts(self):
        import numpy as np

        from repro.pixelbox.vectorized import _split_cuts

        box = Box(3, 7, 73, 40)
        cuts_x, cuts_y = _split_cuts(
            np.array([box.as_tuple()], dtype=np.int64), 8, 8
        )
        children = box.split(8, 8)
        xs = sorted({c.x0 for c in children} | {c.x1 for c in children})
        assert xs == sorted(set(cuts_x[0].tolist()))


class TestTransforms:
    def test_translate(self):
        assert Box(1, 2, 3, 4).translate(10, -2) == Box(11, 0, 13, 2)

    def test_scale(self):
        assert Box(1, 2, 3, 4).scale(3) == Box(3, 6, 9, 12)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            Box(0, 0, 1, 1).scale(0)

    def test_center_pixel_inside(self):
        box = Box(10, 20, 17, 29)
        cx, cy = box.center_pixel
        assert box.contains_pixel(cx, cy)
