"""Unit tests for repro.geometry.polygon."""

import numpy as np
import pytest

from repro.errors import RectilinearityError, RingClosureError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon

UNIT_SQUARE = [(0, 0), (1, 0), (1, 1), (0, 1)]
L_SHAPE = [(0, 0), (4, 0), (4, 2), (2, 2), (2, 5), (0, 5)]


class TestValidation:
    def test_square_is_valid(self):
        assert RectilinearPolygon(UNIT_SQUARE).area == 1

    def test_too_few_vertices(self):
        with pytest.raises(RingClosureError):
            RectilinearPolygon([(0, 0), (1, 0)])

    def test_odd_vertex_count(self):
        with pytest.raises(RectilinearityError):
            RectilinearPolygon([(0, 0), (2, 0), (2, 2), (1, 2), (0, 1)])

    def test_diagonal_edge_rejected(self):
        with pytest.raises(RectilinearityError):
            RectilinearPolygon([(0, 0), (2, 2), (2, 0), (0, 2)])

    def test_zero_length_edge_rejected(self):
        with pytest.raises(RectilinearityError):
            RectilinearPolygon([(0, 0), (2, 0), (2, 0), (2, 2), (0, 2), (0, 1)])

    def test_explicitly_closed_ring_rejected(self):
        with pytest.raises(RingClosureError):
            RectilinearPolygon([(0, 0), (1, 0), (1, 1), (0, 1), (0, 0)])

    def test_consecutive_parallel_edges_rejected(self):
        # Two horizontal edges in a row (collinear split vertex).
        with pytest.raises(RectilinearityError):
            RectilinearPolygon([(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)])

    def test_bad_shape_array(self):
        with pytest.raises(RingClosureError):
            RectilinearPolygon(np.zeros((4, 3), dtype=np.int64))


class TestDerivedGeometry:
    def test_shoelace_area_l_shape(self):
        poly = RectilinearPolygon(L_SHAPE)
        assert poly.area == 4 * 2 + 2 * 3

    def test_signed_area_orientation(self):
        ccw = RectilinearPolygon(UNIT_SQUARE)
        cw = ccw.reversed()
        assert ccw.signed_area == 1 and cw.signed_area == -1
        assert ccw.orientation == 1 and cw.orientation == -1
        assert cw.area == 1

    def test_mbr(self):
        assert RectilinearPolygon(L_SHAPE).mbr == Box(0, 0, 4, 5)

    def test_edge_families_balanced(self):
        poly = RectilinearPolygon(L_SHAPE)
        assert len(poly.vertical_edges) == len(poly.horizontal_edges) == 3

    def test_vertical_edges_normalized(self):
        poly = RectilinearPolygon(L_SHAPE)
        for _, lo, hi in poly.vertical_edges:
            assert lo < hi

    def test_len_and_iter(self):
        poly = RectilinearPolygon(L_SHAPE)
        assert len(poly) == 6
        assert list(poly) == L_SHAPE

    def test_equality_and_hash(self):
        a = RectilinearPolygon(UNIT_SQUARE)
        b = RectilinearPolygon(UNIT_SQUARE)
        assert a == b and hash(a) == hash(b)
        assert a != RectilinearPolygon(L_SHAPE)

    def test_vertices_read_only(self):
        poly = RectilinearPolygon(UNIT_SQUARE)
        with pytest.raises(ValueError):
            poly.vertices[0, 0] = 9


class TestContainment:
    def test_contains_pixel_square(self):
        poly = RectilinearPolygon([(0, 0), (3, 0), (3, 3), (0, 3)])
        assert poly.contains_pixel(0, 0)
        assert poly.contains_pixel(2, 2)
        assert not poly.contains_pixel(3, 1)
        assert not poly.contains_pixel(-1, 1)

    def test_contains_pixel_l_shape_notch(self):
        poly = RectilinearPolygon(L_SHAPE)
        assert poly.contains_pixel(1, 4)
        assert not poly.contains_pixel(3, 3)  # inside MBR, outside polygon

    def test_contains_pixel_matches_mask(self, rng):
        from tests.conftest import mask_of, random_polygon

        poly = random_polygon(rng)
        box = poly.mbr
        mask = mask_of(poly, box)
        for y in range(box.y0, box.y1):
            for x in range(box.x0, box.x1):
                assert poly.contains_pixel(x, y) == bool(
                    mask[y - box.y0, x - box.x0]
                )

    def test_contains_point_interior(self):
        poly = RectilinearPolygon(L_SHAPE)
        assert poly.contains_point(0.5, 0.5)
        assert not poly.contains_point(3.5, 4.5)


class TestTransforms:
    def test_translate_preserves_area(self):
        poly = RectilinearPolygon(L_SHAPE)
        moved = poly.translate(100, -50)
        assert moved.area == poly.area
        assert moved.mbr == poly.mbr.translate(100, -50)

    def test_scale_squares_area(self):
        poly = RectilinearPolygon(L_SHAPE)
        assert poly.scale(3).area == poly.area * 9

    def test_scale_rejects_zero(self):
        with pytest.raises(RectilinearityError):
            RectilinearPolygon(L_SHAPE).scale(0)

    def test_from_box(self):
        poly = RectilinearPolygon.from_box(Box(2, 3, 7, 9))
        assert poly.area == 30
        assert poly.signed_area > 0

    def test_from_pairs(self):
        poly = RectilinearPolygon.from_pairs([0, 0, 1, 0, 1, 1, 0, 1])
        assert poly.area == 1

    def test_from_pairs_odd_length(self):
        with pytest.raises(RingClosureError):
            RectilinearPolygon.from_pairs([0, 0, 1])
