"""Unit tests for repro.geometry.raster (mask <-> polygon conversions)."""

import numpy as np
import pytest
from scipy import ndimage

from repro.errors import RasterError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import (
    extract_polygons,
    fill_holes,
    label_components,
    mask_bbox,
    parity_fill,
    polygon_to_mask,
    trace_mask,
)
from tests.conftest import random_mask


class TestPolygonToMask:
    def test_square(self):
        poly = RectilinearPolygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert polygon_to_mask(poly).sum() == 4

    def test_clipped_to_box(self):
        poly = RectilinearPolygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        mask = polygon_to_mask(poly, Box(2, 2, 6, 6))
        assert mask.sum() == 4  # only the overlapping quadrant

    def test_mask_count_equals_area(self, rng):
        for _ in range(20):
            mask = random_mask(rng)
            for poly in extract_polygons(mask):
                assert polygon_to_mask(poly).sum() == poly.area

    def test_parity_fill_scratch_shape_mismatch(self):
        poly = RectilinearPolygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        with pytest.raises(RasterError):
            parity_fill(poly.vertical_edges, Box(0, 0, 2, 2),
                        out=np.zeros((3, 3), dtype=np.uint8))


class TestTraceMask:
    def test_single_square(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1:3, 1:3] = True
        outers, holes = trace_mask(mask)
        assert len(outers) == 1 and not holes
        assert outers[0].area == 4

    def test_hole_traced_clockwise(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[2, 2] = False
        outers, holes = trace_mask(mask)
        assert len(outers) == 1 and len(holes) == 1
        assert holes[0].signed_area < 0
        assert outers[0].area - holes[0].area == mask.sum()

    def test_diagonal_cells_become_two_loops(self):
        mask = np.zeros((2, 2), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        outers, holes = trace_mask(mask)
        assert len(outers) == 2 and not holes
        assert all(p.area == 1 for p in outers)

    def test_total_area_conservation(self, rng):
        for _ in range(50):
            mask = random_mask(rng, 10, 10, 0.5)
            outers, holes = trace_mask(mask)
            assert sum(p.area for p in outers) == mask.sum()
            assert not holes  # fixture masks are hole-filled

    def test_rejects_bad_shape(self):
        with pytest.raises(RasterError):
            trace_mask(np.zeros(5, dtype=bool))


class TestExtractPolygons:
    def test_origin_offset(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = True
        polys = extract_polygons(mask, origin=(100, 200))
        assert polys[0].mbr == Box(100, 200, 101, 201)

    def test_min_area_filter(self, rng):
        mask = random_mask(rng, 16, 16, 0.4)
        small = extract_polygons(mask, min_area=1)
        filtered = extract_polygons(mask, min_area=5)
        assert all(p.area >= 5 for p in filtered)
        assert len(filtered) <= len(small)

    def test_holes_raise_when_not_filled(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[2, 2] = False
        with pytest.raises(RasterError):
            extract_polygons(mask, fill_interior_holes=False)

    def test_roundtrip_exact(self, rng):
        for _ in range(30):
            mask = random_mask(rng, 12, 12)
            acc = np.zeros_like(mask)
            box = Box(0, 0, mask.shape[1], mask.shape[0])
            for poly in extract_polygons(mask):
                piece = polygon_to_mask(poly, box)
                assert not (acc & piece).any()  # polygons are disjoint
                acc |= piece
            assert np.array_equal(acc, mask)


class TestMaskUtilities:
    def test_fill_holes_matches_scipy(self, rng):
        for _ in range(30):
            mask = rng.random((15, 17)) < 0.5
            assert np.array_equal(
                fill_holes(mask), ndimage.binary_fill_holes(mask)
            )

    def test_label_components_matches_scipy(self, rng):
        structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
        for _ in range(20):
            mask = rng.random((12, 12)) < 0.4
            ours, n_ours = label_components(mask)
            theirs, n_theirs = ndimage.label(mask, structure=structure)
            assert n_ours == n_theirs
            # Label ids may differ; compare partition structure.
            assert np.array_equal(ours > 0, theirs > 0)
            for k in range(1, n_ours + 1):
                cells = theirs[ours == k]
                assert len(set(cells.tolist())) == 1

    def test_mask_bbox(self):
        mask = np.zeros((5, 8), dtype=bool)
        mask[1, 2] = mask[3, 6] = True
        assert mask_bbox(mask) == Box(2, 1, 7, 4)
        assert mask_bbox(np.zeros((3, 3), dtype=bool)) is None

    def test_fill_holes_rejects_3d(self):
        with pytest.raises(RasterError):
            fill_holes(np.zeros((2, 2, 2), dtype=bool))
