"""Unit tests for repro.geometry.wkt."""

import pytest

from repro.errors import WktError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.wkt import polygon_from_wkt, polygon_to_wkt

L_SHAPE = [(0, 0), (4, 0), (4, 2), (2, 2), (2, 5), (0, 5)]


class TestRoundtrip:
    def test_roundtrip_l_shape(self):
        poly = RectilinearPolygon(L_SHAPE)
        assert polygon_from_wkt(polygon_to_wkt(poly)) == poly

    def test_serialized_ring_is_closed(self):
        text = polygon_to_wkt(RectilinearPolygon(L_SHAPE))
        body = text[text.index("((") + 2 : text.rindex("))")]
        pairs = [tuple(tok.split()) for tok in body.split(",")]
        assert pairs[0] == pairs[-1]

    def test_roundtrip_random(self, rng):
        from tests.conftest import random_polygon

        for _ in range(20):
            poly = random_polygon(rng)
            assert polygon_from_wkt(polygon_to_wkt(poly)) == poly


class TestParsing:
    def test_case_insensitive_keyword(self):
        poly = polygon_from_wkt("polygon ((0 0, 1 0, 1 1, 0 1, 0 0))")
        assert poly.area == 1

    def test_float_spelling_of_integers(self):
        poly = polygon_from_wkt("POLYGON ((0.0 0, 1.0 0, 1 1, 0 1, 0 0))")
        assert poly.area == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "LINESTRING (0 0, 1 1)",
            "POLYGON ((0 0, 1 0, 1 1, 0 1))",  # unclosed
            "POLYGON ((0 0, 1.5 0, 1.5 1, 0 1, 0 0))",  # non-integer
            "POLYGON ((0 0 0, 1 0 0, 1 1 0, 0 1 0, 0 0 0))",  # 3-D
            "POLYGON ((0 0, 1 1, 0 0))",  # too few vertices
            "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0), (2 2, 3 2, 3 3, 2 3, 2 2))",
        ],
    )
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(WktError):
            polygon_from_wkt(bad)
