"""Unit tests for the SIMT GPU simulator."""

import pytest

from repro.errors import DeviceError
from repro.gpu.cost import CostModel, CycleBreakdown, OptimizationFlags
from repro.gpu.device import GTX580, TESLA_M2050, DeviceSpec
from repro.gpu.memory import (
    aos_push_addresses,
    conflict_ways,
    soa_push_addresses,
)
from repro.gpu.simt_kernel import collect_block_counts
from repro.gpu.simulator import simulate_device
from repro.pixelbox.common import LaunchConfig, Method
from repro.pixelbox.engine import compute_pair
from tests.conftest import random_pair

ALL_VARIANTS = [
    OptimizationFlags(False, False, False),
    OptimizationFlags(True, False, False),
    OptimizationFlags(True, True, False),
    OptimizationFlags(True, True, True),
]


class TestDeviceSpec:
    def test_presets(self):
        assert GTX580.sm_count == 16 and TESLA_M2050.sm_count == 14

    def test_occupancy_limits(self):
        assert GTX580.blocks_resident(64, 4096) == 8
        assert GTX580.blocks_resident(512, 4096) == 3
        assert GTX580.blocks_resident(64, 48 * 1024) == 1

    def test_validation(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="bad", sm_count=0)
        with pytest.raises(DeviceError):
            GTX580.blocks_resident(0, 1024)


class TestBankConflicts:
    def test_conflict_free_stride_one(self):
        assert conflict_ways(range(32)) == 1

    def test_broadcast_is_free(self):
        assert conflict_ways([7] * 32) == 1

    def test_stride_eight_is_eight_way(self):
        assert conflict_ways([t * 8 for t in range(32)]) == 8

    def test_aos_layout_conflicts(self):
        for field in range(5):
            assert conflict_ways(aos_push_addresses(32, field)) == 8

    def test_soa_layout_conflict_free(self):
        for field in range(5):
            assert conflict_ways(soa_push_addresses(32, field)) == 1

    def test_banks_validation(self):
        with pytest.raises(DeviceError):
            conflict_ways([0], banks=0)


class TestCostModel:
    def test_flag_labels(self):
        labels = [f.label for f in ALL_VARIANTS]
        assert labels == [
            "PixelBox-NoOpt", "PixelBox-NBC", "PixelBox-NBC-UR",
            "PixelBox-NBC-UR-SM",
        ]

    def test_unrolling_reduces_loop_overhead(self):
        rolled = CostModel(GTX580, OptimizationFlags(True, False, False))
        unrolled = CostModel(GTX580, OptimizationFlags(True, True, False))
        a = rolled.edge_loop(10, 20)
        b = unrolled.edge_loop(10, 20)
        assert b.loop_overhead < a.loop_overhead
        assert b.alu == a.alu

    def test_shared_memory_moves_traffic(self):
        gmem = CostModel(GTX580, OptimizationFlags(True, True, False))
        smem = CostModel(GTX580, OptimizationFlags(True, True, True))
        a = gmem.edge_loop(10, 20)
        b = smem.edge_loop(10, 20)
        assert a.global_mem > 0 and a.shared_mem == 0
        assert b.shared_mem > 0 and b.global_mem == 0
        assert b.total < a.total

    def test_nbc_reduces_push_cost(self):
        aos = CostModel(GTX580, OptimizationFlags(False, False, False))
        soa = CostModel(GTX580, OptimizationFlags(True, False, False))
        assert soa.stack_push(1).stack < aos.stack_push(1).stack

    def test_breakdown_totals(self):
        b = CycleBreakdown(alu=1, loop_overhead=2, global_mem=3,
                           shared_mem=4, sync=5, stack=6)
        assert b.total == 21


class TestSimtKernel:
    def test_replay_matches_engine(self, rng):
        cfg = LaunchConfig(block_size=16, pixel_threshold=64)
        for _ in range(6):
            p, q = random_pair(rng)
            p, q = p.scale(3), q.scale(3)
            counts = collect_block_counts(p, q, cfg)
            ref = compute_pair(p, q, Method.PIXELBOX, cfg)
            assert counts.intersection_area == ref.intersection
            assert counts.union_area == ref.union

    def test_variant_ordering(self, rng):
        pairs = [random_pair(rng) for _ in range(12)]
        counts = [collect_block_counts(p, q) for p, q in pairs]
        times = [
            simulate_device(counts, GTX580, flags).device_ms
            for flags in ALL_VARIANTS
        ]
        # Each added optimization must not slow the kernel down.
        assert times[0] >= times[1] >= times[2] >= times[3]
        assert times[3] < times[0]

    def test_empty_launch_rejected(self):
        with pytest.raises(DeviceError):
            simulate_device([], GTX580, OptimizationFlags())

    def test_report_renders(self, rng):
        counts = [collect_block_counts(*random_pair(rng))]
        report = simulate_device(counts, GTX580, OptimizationFlags())
        assert "blocks" in str(report)
        assert report.total_cycles > 0

    def test_more_sms_is_faster(self, rng):
        pairs = [random_pair(rng) for _ in range(40)]
        counts = [collect_block_counts(p, q) for p, q in pairs]
        slow = simulate_device(counts, TESLA_M2050, OptimizationFlags())
        fast = simulate_device(counts, GTX580, OptimizationFlags())
        assert fast.device_ms < slow.device_ms
