"""Unit tests for repro.index: Hilbert curve, R-tree, MBR join."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.index.hilbert import d_to_xy, hilbert_keys, xy_to_d
from repro.index.hilbert_rtree import bulk_load, bulk_load_polygons
from repro.index.join import mbr_pair_join, mbr_pair_join_bruteforce
from repro.index.rtree import RTree


class TestHilbertCurve:
    @pytest.mark.parametrize("order", [1, 2, 4])
    def test_bijection(self, order):
        side = 1 << order
        seen = set()
        for x in range(side):
            for y in range(side):
                d = xy_to_d(order, x, y)
                assert d_to_xy(order, d) == (x, y)
                seen.add(d)
        assert seen == set(range(side * side))

    def test_locality_consecutive_cells_adjacent(self):
        for d in range(4 ** 4 - 1):
            x1, y1 = d_to_xy(4, d)
            x2, y2 = d_to_xy(4, d + 1)
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_vectorized_matches_scalar(self, rng):
        xs = rng.integers(0, 64, 200)
        ys = rng.integers(0, 64, 200)
        keys = hilbert_keys(6, xs, ys)
        for k, x, y in zip(keys, xs, ys):
            assert int(k) == xy_to_d(6, int(x), int(y))

    def test_vectorized_clamps_out_of_range(self):
        keys = hilbert_keys(4, np.array([-5, 100]), np.array([3, 3]))
        assert int(keys[0]) == xy_to_d(4, 0, 3)
        assert int(keys[1]) == xy_to_d(4, 15, 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError_):
            xy_to_d(3, 8, 0)
        with pytest.raises(IndexError_):
            d_to_xy(3, 64)
        with pytest.raises(IndexError_):
            xy_to_d(0, 0, 0)


def _random_boxes(rng, count, span=400, max_side=25):
    out = []
    for _ in range(count):
        x0 = int(rng.integers(0, span))
        y0 = int(rng.integers(0, span))
        out.append(Box(x0, y0, x0 + int(rng.integers(1, max_side)),
                       y0 + int(rng.integers(1, max_side))))
    return out


class TestRTree:
    def test_empty_tree_search(self):
        assert RTree().search(Box(0, 0, 10, 10)) == []

    def test_insert_search_single(self):
        tree = RTree()
        tree.insert(Box(3, 3, 5, 5), 7)
        assert tree.search(Box(0, 0, 4, 4)) == [7]
        assert tree.search(Box(6, 6, 9, 9)) == []

    def test_insert_matches_bruteforce(self, rng):
        boxes = _random_boxes(rng, 300)
        tree = RTree(fanout=6)
        for i, box in enumerate(boxes):
            tree.insert(box, i)
        tree.validate()
        assert len(tree) == 300
        for _ in range(50):
            probe = _random_boxes(rng, 1, span=380, max_side=60)[0]
            expected = sorted(
                i for i, b in enumerate(boxes) if b.intersects(probe)
            )
            assert tree.search(probe) == expected

    def test_height_grows_logarithmically(self, rng):
        tree = RTree(fanout=4)
        for i, box in enumerate(_random_boxes(rng, 200)):
            tree.insert(box, i)
        assert 3 <= tree.height <= 8

    def test_iter_leaf_entries(self, rng):
        boxes = _random_boxes(rng, 50)
        tree = RTree()
        for i, box in enumerate(boxes):
            tree.insert(box, i)
        payloads = sorted(pid for _, pid in tree.iter_leaf_entries())
        assert payloads == list(range(50))

    def test_invalid_fanout(self):
        with pytest.raises(IndexError_):
            RTree(fanout=2)


class TestHilbertBulkLoad:
    def test_bulk_load_matches_bruteforce(self, rng):
        boxes = _random_boxes(rng, 500)
        tree = bulk_load(boxes, fanout=8)
        tree.validate()
        assert len(tree) == 500
        for _ in range(50):
            probe = _random_boxes(rng, 1, span=380, max_side=60)[0]
            expected = sorted(
                i for i, b in enumerate(boxes) if b.intersects(probe)
            )
            assert tree.search(probe) == expected

    def test_bulk_load_empty(self):
        tree = bulk_load([])
        assert tree.search(Box(0, 0, 5, 5)) == []

    def test_leaves_are_clustered(self, rng):
        # Hilbert-ordered packing must beat random-ordered packing of the
        # same leaf structure by a wide margin (total leaf MBR area).
        from repro.index.rtree import RTreeNode

        boxes = _random_boxes(rng, 400, span=1000, max_side=6)
        packed = bulk_load(boxes, fanout=16)

        def leaf_area(tree):
            total = 0
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    total += node.mbr.size if node.mbr else 0
                else:
                    stack.extend(node.children)
            return total

        order = rng.permutation(len(boxes))
        random_leaf_area = 0
        for lo in range(0, len(order), 16):
            node = RTreeNode(
                is_leaf=True,
                entries=[(boxes[int(i)], int(i)) for i in order[lo : lo + 16]],
            )
            node.recompute_mbr()
            random_leaf_area += node.mbr.size
        assert leaf_area(packed) < random_leaf_area / 3


class TestPairJoin:
    def test_join_matches_bruteforce(self, rng):
        left = [RectilinearPolygon.from_box(b) for b in _random_boxes(rng, 120)]
        right = [RectilinearPolygon.from_box(b) for b in _random_boxes(rng, 140)]
        a = mbr_pair_join(left, right)
        b = mbr_pair_join_bruteforce(left, right)
        assert sorted(zip(a.left_idx.tolist(), a.right_idx.tolist())) == sorted(
            zip(b.left_idx.tolist(), b.right_idx.tolist())
        )

    def test_join_pairs_materialization(self, rng):
        left = [RectilinearPolygon.from_box(b) for b in _random_boxes(rng, 20)]
        right = [RectilinearPolygon.from_box(b) for b in _random_boxes(rng, 20)]
        join = mbr_pair_join(left, right)
        pairs = join.pairs(left, right)
        assert len(pairs) == len(join)
        for (p, q), i, j in zip(pairs, join.left_idx, join.right_idx):
            assert p is left[int(i)] and q is right[int(j)]

    def test_empty_inputs(self):
        res = mbr_pair_join([], [])
        assert len(res) == 0
