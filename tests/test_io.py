"""Unit tests for repro.io: polygon files, parsers, tile layout."""

import numpy as np
import pytest

from repro.errors import DatasetError, ParseError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.io.parser_cpu import parse_fsm, parse_vectorized, tokenize_numbers
from repro.io.parser_gpu import gpu_parse
from repro.io.polyfile import (
    format_polygon,
    parse_line,
    read_polygons,
    write_polygons,
)
from repro.io.tiles import list_tile_files, pair_result_sets, tile_name
from tests.conftest import random_polygon

SQUARE = RectilinearPolygon.from_box(Box(3, 4, 7, 9))


class TestPolyfileFormat:
    def test_format_line(self):
        assert format_polygon(SQUARE) == "3,4 7,4 7,9 3,9"

    def test_parse_line_roundtrip(self):
        assert parse_line(format_polygon(SQUARE)) == SQUARE

    def test_write_read_roundtrip(self, tmp_path, rng):
        polys = [random_polygon(rng) for _ in range(25)]
        path = tmp_path / "tile.txt"
        assert write_polygons(path, polys) == 25
        assert read_polygons(path) == polys

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# header\n\n3,4 7,4 7,9 3,9\n\n# trailer\n")
        assert read_polygons(path) == [SQUARE]

    @pytest.mark.parametrize(
        "bad",
        ["1,2 3,4", "1,2 3,4 5", "1;2 3;4 5;6 7;8", "a,b c,d e,f g,h"],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ParseError):
            parse_line(bad, lineno=3)


class TestParsers:
    def _sample_text(self, rng, count=40):
        polys = [random_polygon(rng) for _ in range(count)]
        text = "# generated sample\n" + "\n".join(
            format_polygon(p) for p in polys
        ) + "\n"
        return polys, text

    def test_fsm_matches_reference(self, rng):
        polys, text = self._sample_text(rng)
        assert parse_fsm(text) == polys

    def test_vectorized_matches_reference(self, rng):
        polys, text = self._sample_text(rng)
        assert parse_vectorized(text) == polys

    def test_gpu_parser_matches(self, rng):
        polys, text = self._sample_text(rng)
        assert gpu_parse(text.encode()) == polys

    def test_parsers_agree_on_edge_formatting(self):
        text = "#c\n0,0  10,0 10,10 0,10\r\n1,1 2,1 2,2 1,2"
        assert parse_fsm(text) == parse_vectorized(text)

    def test_empty_input(self):
        assert parse_fsm("") == []
        assert parse_vectorized(b"") == []

    def test_fsm_rejects_odd_coordinates(self):
        with pytest.raises(ParseError):
            parse_fsm("1,1 2,1 2,2 1\n")

    def test_vectorized_rejects_odd_coordinates(self):
        with pytest.raises(ParseError):
            parse_vectorized("1,1 2,1 2,2 1\n")

    def test_fsm_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_fsm("1,1 2,1 2,2 1,2 !\n")

    def test_tokenizer(self):
        values, positions = tokenize_numbers(
            np.frombuffer(b"12,7 340,9", dtype=np.uint8)
        )
        assert values.tolist() == [12, 7, 340, 9]
        assert positions.tolist() == [0, 3, 5, 9]

    def test_tokenizer_empty(self):
        values, positions = tokenize_numbers(
            np.frombuffer(b", , \n", dtype=np.uint8)
        )
        assert len(values) == 0 and len(positions) == 0

    def test_vectorized_from_path(self, tmp_path, rng):
        polys, text = self._sample_text(rng, 10)
        path = tmp_path / "x.txt"
        path.write_text(text)
        assert parse_vectorized(path) == polys


class TestTileLayout:
    def test_tile_name(self):
        assert tile_name(3) == "tile_0003.txt"
        with pytest.raises(DatasetError):
            tile_name(-1)

    def test_list_and_pair(self, tmp_path):
        for side in ("result_a", "result_b"):
            d = tmp_path / side
            d.mkdir()
            for t in range(3):
                (d / tile_name(t)).write_text("0,0 1,0 1,1 0,1\n")
        pairs = pair_result_sets(tmp_path / "result_a", tmp_path / "result_b")
        assert [p.tile_id for p in pairs] == [0, 1, 2]

    def test_strict_mismatch_raises(self, tmp_path):
        for side, tiles in (("a", [0, 1]), ("b", [0, 2])):
            d = tmp_path / side
            d.mkdir()
            for t in tiles:
                (d / tile_name(t)).write_text("0,0 1,0 1,1 0,1\n")
        with pytest.raises(DatasetError):
            pair_result_sets(tmp_path / "a", tmp_path / "b")
        lax = pair_result_sets(tmp_path / "a", tmp_path / "b", strict=False)
        assert [p.tile_id for p in lax] == [0]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError):
            list_tile_files(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DatasetError):
            list_tile_files(tmp_path / "empty")
