"""The chunk-kernel seam guard, run as part of the tier-1 suite.

A fourth hand-rolled copy of the plan+stacked-pixelize sequence is the
failure mode behind the latent batched disjoint-pair crash and the
per-path counter drift; this test
(and the identical CI step, ``tools/check_kernel_seam.py``) makes such a
copy fail loudly at review time instead of drifting silently.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_kernel_seam import ALLOWLIST, violations  # noqa: E402


def test_kernel_sequence_is_invoked_from_exactly_one_module():
    found = violations(REPO_ROOT / "src")
    assert not found, (
        "plan_levels/stacked_leaf_counts used outside the kernel seam "
        f"(allowlist: {sorted(ALLOWLIST)}): "
        + "; ".join(f"{p}:{n}" for p, n, _ in found)
    )


def test_allowlisted_modules_exist():
    for rel in ALLOWLIST:
        assert (REPO_ROOT / "src" / rel).is_file(), rel
