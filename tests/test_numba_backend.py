"""The compiled (numba) substrate: availability gating and parity.

Two test families:

* **Absence path** — in a container without the ``repro[numba]`` extra
  (or with availability monkeypatched away), the registry must stay
  honest: ``get_backend("numba")`` raises a :class:`BackendError` naming
  the missing extra, ``auto`` never selects it, and ``repro backends``
  reports it unavailable instead of crashing.

* **Algorithm parity** — the compiled kernel degrades to a pure-Python
  stub when numba is absent (``allow_fallback=True``), so the *algorithm*
  is testable everywhere: the per-pair depth-first walk must reproduce
  the level-synchronous NumPy substrate bit-for-bit — areas *and* every
  work counter — across policies and launch configs.  Where numba is
  installed (the CI leg), the same comparisons run through the real
  backend end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import backend_availability, get_backend
from repro.backends.numba_backend import numba_unavailable_reason
from repro.errors import BackendError, KernelError, ReproError
from repro.gpu.cost import recommend_backend
from repro.pixelbox.common import KernelStats, LaunchConfig, Method
from repro.pixelbox.kernel import (
    ChunkKernel,
    ExecutionPolicy,
    batch_policy,
    compiled_policy,
    shard_policy,
)
from repro.pixelbox.numba_kernel import NUMBA_AVAILABLE, run_chunk_compiled
from repro.pixelbox.vectorized import EdgeTable

from conftest import random_pair

HEAVY = dict(
    n_pairs=2_000_000, mean_edges=40.0, mean_mbr_pixels=900.0,
    pixel_threshold=2048,
)


@pytest.fixture
def numba_absent(monkeypatch):
    """Force the availability probe to report numba as missing."""
    from repro.backends import numba_backend

    monkeypatch.setattr(
        numba_backend,
        "numba_unavailable_reason",
        lambda: "numba is not installed (forced by test)",
    )


# ----------------------------------------------------------------------
# Absence path: the registry stays loud and honest without the extra
# ----------------------------------------------------------------------
class TestAbsencePath:
    def test_get_backend_raises_named_error(self, numba_absent):
        with pytest.raises(BackendError, match="numba"):
            get_backend("numba")

    def test_availability_reports_the_reason(self, numba_absent):
        reason = backend_availability("numba")
        assert reason is not None and "numba" in reason

    def test_auto_never_selects_an_unavailable_substrate(self, numba_absent):
        # compiled=None autodetects through the (monkeypatched) probe.
        choice = recommend_backend(**HEAVY, workers=4)
        assert choice != "numba"

    def test_cli_backends_reports_unavailable_without_crashing(
        self, numba_absent, capsys
    ):
        import json

        from repro.cli import main

        assert main(["backends", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in listing}
        assert "numba" in by_name
        entry = by_name["numba"]
        assert entry["available"] is False
        assert "numba" in entry["reason"]
        for name in ("batch", "vectorized", "multiprocess"):
            assert by_name[name]["available"] is True

    def test_cli_backends_text_marks_unavailable(self, numba_absent, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines() if ln.startswith("numba"))
        assert "unavailable" in line

    def test_require_numba_names_the_extra(self, monkeypatch):
        from repro.pixelbox import numba_kernel

        monkeypatch.setattr(numba_kernel, "NUMBA_AVAILABLE", False)
        with pytest.raises(BackendError, match=r"repro\[numba\]"):
            numba_kernel.require_numba()

    def test_multiprocess_substrate_requires_the_extra(self, monkeypatch):
        from repro.pixelbox import numba_kernel

        monkeypatch.setattr(numba_kernel, "NUMBA_AVAILABLE", False)
        with pytest.raises(BackendError, match="numba"):
            get_backend("multiprocess", substrate="numba")

    def test_shard_worker_auto_resolves_to_numpy(self, numba_absent):
        from repro.cluster import ShardWorker

        worker = ShardWorker(substrate="auto")
        assert worker.substrate == (
            "numpy" if numba_unavailable_reason() is not None else "numba"
        )

    def test_shard_worker_rejects_numba_without_the_extra(self, monkeypatch):
        from repro.cluster import ShardWorker
        from repro.pixelbox import numba_kernel

        monkeypatch.setattr(numba_kernel, "NUMBA_AVAILABLE", False)
        with pytest.raises(BackendError, match="numba"):
            ShardWorker(substrate="numba")


# ----------------------------------------------------------------------
# Validation: substrates are named, not guessed
# ----------------------------------------------------------------------
class TestSubstrateValidation:
    def test_policy_rejects_unknown_substrate(self):
        with pytest.raises(KernelError, match="substrate"):
            ExecutionPolicy(substrate="fortran")

    def test_compiled_substrate_is_pixelbox_only(self):
        with pytest.raises(KernelError, match="PIXELBOX"):
            ExecutionPolicy(method=Method.NOSEP, substrate="numba")

    def test_multiprocess_rejects_unknown_substrate(self):
        with pytest.raises(KernelError, match="substrate"):
            get_backend("multiprocess", substrate="fortran")

    def test_shard_worker_rejects_unknown_substrate(self):
        from repro.cluster import ShardWorker

        with pytest.raises(ReproError, match="substrate"):
            ShardWorker(substrate="fortran")


# ----------------------------------------------------------------------
# Cost model: the compiled branch exists and amortizes
# ----------------------------------------------------------------------
class TestCostModel:
    def test_compiled_true_wins_heavy_workloads(self):
        assert recommend_backend(**HEAVY, workers=4, compiled=True) == "numba"

    def test_compiled_false_keeps_the_numpy_ranking(self):
        choice = recommend_backend(**HEAVY, workers=4, compiled=False)
        assert choice == "multiprocess"

    def test_tiny_workloads_never_pay_the_jit_warmup(self):
        choice = recommend_backend(
            n_pairs=4, mean_edges=8.0, mean_mbr_pixels=64.0,
            pixel_threshold=2048, compiled=True,
        )
        assert choice != "numba"

    def test_shard_sizing_scales_with_the_compiled_speedup(self):
        from repro.gpu.cost import recommend_shard_pairs

        # Small enough that the dispatch-amortization floor binds: the
        # compiled substrate retires each pair faster, so shards must
        # grow to keep the per-shard round trip a rounding error.
        workload = dict(HEAVY, n_pairs=100_000)
        base = recommend_shard_pairs(**workload, workers=4)
        compiled = recommend_shard_pairs(
            **workload, workers=4, substrate="numba"
        )
        assert compiled > base


# ----------------------------------------------------------------------
# Algorithm parity: the DFS walk is bit-for-bit the BFS array program
# ----------------------------------------------------------------------
def _chunk_inputs(pairs, policy, cfg):
    kernel = ChunkKernel(policy, cfg)
    _, _, boxes, has_box = kernel.route_pairs(pairs)
    table_p = EdgeTable.build([p for p, _ in pairs])
    table_q = EdgeTable.build([q for _, q in pairs])
    return kernel, table_p, table_q, boxes, has_box


def _parity_pairs(seed=20260807, n=40, h=90, w=110):
    rng = np.random.default_rng(seed)
    return [random_pair(rng, h=h, w=w) for _ in range(n)]


@pytest.mark.parametrize(
    "policy",
    [
        shard_policy(),
        batch_policy(),
        batch_policy(max_dim=8),
        ExecutionPolicy(skip_subdivision_max_dim=4096),
    ],
    ids=["subdivide-all", "batch-64", "batch-8", "skip-all"],
)
@pytest.mark.parametrize(
    "cfg",
    [LaunchConfig(), LaunchConfig(block_size=16, pixel_threshold=64)],
    ids=["default", "fine-grid"],
)
def test_compiled_chunk_matches_numpy_bit_for_bit(policy, cfg):
    """Areas AND every work counter agree across the two substrates."""
    pairs = _parity_pairs()
    kernel, table_p, table_q, boxes, has_box = _chunk_inputs(
        pairs, policy, cfg
    )
    ref_stats = KernelStats()
    ref_inter, _ = kernel.run_chunk(
        table_p, table_q, boxes, has_box, 0, ref_stats
    )
    got_stats = KernelStats()
    got_inter, got_uni = run_chunk_compiled(
        table_p, table_q, boxes, has_box, 0, got_stats, policy, cfg,
        allow_fallback=True,
    )
    assert np.array_equal(got_inter, ref_inter)
    assert not got_uni.any()  # indirect union: nothing measured directly
    assert got_stats.as_dict() == ref_stats.as_dict()


def test_compiled_chunk_matches_on_degenerate_pairs():
    """Disjoint, identical, touching, sliver pairs — including no-box rows."""
    from repro.geometry.box import Box
    from repro.geometry.polygon import RectilinearPolygon

    unit = RectilinearPolygon.from_box(Box(0, 0, 1, 1))
    square = RectilinearPolygon.from_box(Box(0, 0, 8, 8))
    far = RectilinearPolygon.from_box(Box(100, 100, 108, 108))
    tall = RectilinearPolygon.from_box(Box(0, 0, 1, 200))
    wide = RectilinearPolygon.from_box(Box(0, 0, 200, 1))
    pairs = [
        (unit, unit), (square, square), (square, far), (tall, wide),
        (unit, square),
    ]
    cfg = LaunchConfig(tight_mbr=True)  # routes disjoint MBRs to no box
    policy = batch_policy()
    kernel, table_p, table_q, boxes, has_box = _chunk_inputs(
        pairs, policy, cfg
    )
    assert not has_box.all()  # the no-start-box branch is exercised
    ref_stats = KernelStats()
    ref_inter, _ = kernel.run_chunk(
        table_p, table_q, boxes, has_box, 0, ref_stats
    )
    got_stats = KernelStats()
    got_inter, _ = run_chunk_compiled(
        table_p, table_q, boxes, has_box, 0, got_stats, policy, cfg,
        allow_fallback=True,
    )
    assert np.array_equal(got_inter, ref_inter)
    assert got_stats.as_dict() == ref_stats.as_dict()


def test_compiled_chunk_respects_row_base():
    """A shard walking global tables addresses edge rows by row_base."""
    pairs = _parity_pairs(seed=99, n=12, h=40, w=40)
    policy = shard_policy()
    cfg = LaunchConfig()
    kernel, table_p, table_q, boxes, has_box = _chunk_inputs(
        pairs, policy, cfg
    )
    lo, hi = 5, 11
    ref_stats = KernelStats()
    ref_inter, _ = kernel.run_chunk(
        table_p, table_q, boxes[lo:hi], has_box[lo:hi], lo, ref_stats
    )
    got_stats = KernelStats()
    got_inter, _ = run_chunk_compiled(
        table_p, table_q, boxes[lo:hi], has_box[lo:hi], lo, got_stats,
        policy, cfg, allow_fallback=True,
    )
    assert np.array_equal(got_inter, ref_inter)
    assert got_stats.as_dict() == ref_stats.as_dict()


def test_compiled_chunk_handles_empty_chunk():
    policy = compiled_policy()
    cfg = LaunchConfig()
    stats = KernelStats()
    inter, uni = run_chunk_compiled(
        EdgeTable.build([]), EdgeTable.build([]),
        np.zeros((0, 4), dtype=np.int64), np.zeros(0, dtype=bool),
        0, stats, policy, cfg, allow_fallback=True,
    )
    assert len(inter) == 0 and len(uni) == 0
    assert stats.pairs == 0


# ----------------------------------------------------------------------
# End-to-end (runs only where the extra is installed: the CI numba leg)
# ----------------------------------------------------------------------
needs_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="requires the repro[numba] extra"
)


@needs_numba
class TestCompiledBackendEndToEnd:
    def test_backend_matches_vectorized(self):
        pairs = _parity_pairs(seed=7, n=60, h=60, w=70)
        with get_backend("numba") as compiled, \
                get_backend("vectorized") as reference:
            got = compiled.compare_pairs(pairs)
            ref = reference.compare_pairs(pairs)
        assert np.array_equal(got.intersection, ref.intersection)
        assert np.array_equal(got.union, ref.union)

    def test_capabilities_report_compiled(self):
        with get_backend("numba") as backend:
            caps = backend.capabilities()
        assert caps.compiled
        assert "compiled" in caps.summary()

    def test_warm_compiles_before_the_first_batch(self):
        with get_backend("numba") as backend:
            assert backend.warm() == []
            result = backend.compare_pairs(_parity_pairs(seed=3, n=4))
        assert result.stats.pairs == 4

    def test_multiprocess_numba_substrate_matches_numpy(self):
        pairs = _parity_pairs(seed=11, n=30, h=50, w=50)
        with get_backend(
            "multiprocess", workers=2, min_pairs=1, substrate="numba"
        ) as compiled, get_backend("batch") as reference:
            got = compiled.compare_pairs(pairs)
            ref = reference.compare_pairs(pairs)
        assert np.array_equal(got.intersection, ref.intersection)
        assert np.array_equal(got.union, ref.union)
