"""The observability layer: tracing, events, metrics, and their seams.

Four families of guarantees:

* the :mod:`repro.obs` primitives themselves (span nesting, the event
  ring, Prometheus text exposition validity);
* cross-process span stitching — one traced cluster request against a
  real loopback worker yields a single tree under one trace id, remote
  worker/kernel spans included;
* the tracing-off hot path — ``ChunkKernel.run_shard`` without an
  active tracer must not allocate a single byte in ``repro/obs``;
* the satellite seams: per-worker counters surfaced through the
  coordinator, the service's kernel/latency/worker metric families.
"""

from __future__ import annotations

import asyncio
import io
import json
import re
import tracemalloc
import urllib.request

import numpy as np

from repro.api import CompareOptions, CompareRequest
from repro.backends import get_backend
from repro.cluster import LoopbackCluster
from repro.geometry.polygon import Box, RectilinearPolygon
from repro.obs import (
    EventLog,
    MetricsRegistry,
    MetricsServer,
    Tracer,
    activate,
    current_context,
    current_tracer,
    load_trace_file,
    render_snapshot,
    render_spans,
)
from repro.pixelbox.common import KernelStats, LaunchConfig
from repro.pixelbox.kernel import ChunkKernel, ExecutionPolicy
from repro.pixelbox.vectorized import EdgeTable
from repro.service.core import ComparisonService, ServiceConfig
from repro.session import Session


def _pairs(count: int = 12, seed: int = 7):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        x, y = int(rng.integers(0, 200)), int(rng.integers(0, 200))
        out.append(
            (
                RectilinearPolygon.from_box(Box(x, y, x + 16, y + 16)),
                RectilinearPolygon.from_box(Box(x + 4, y + 4, x + 20, y + 20)),
            )
        )
    return out


# ----------------------------------------------------------------------
# Tracer primitives
# ----------------------------------------------------------------------
def test_spans_nest_and_link_parents():
    tracer = Tracer()
    with activate(tracer):
        with tracer.span("root", kind="test"):
            with tracer.span("child"):
                with tracer.span("grandchild") as g:
                    g.set(extra=1)
            with tracer.span("sibling"):
                pass
    records = {r.name: r for r in tracer.records()}
    assert set(records) == {"root", "child", "grandchild", "sibling"}
    assert records["root"].parent_id is None
    assert records["child"].parent_id == records["root"].span_id
    assert records["grandchild"].parent_id == records["child"].span_id
    assert records["sibling"].parent_id == records["root"].span_id
    assert records["grandchild"].attrs["extra"] == 1
    assert all(r.trace_id == tracer.trace_id for r in tracer.records())
    assert all(r.duration >= 0 for r in tracer.records())


def test_context_is_inactive_by_default():
    assert current_tracer() is None
    assert current_context() is None
    tracer = Tracer()
    with activate(tracer):
        assert current_tracer() is tracer
    assert current_tracer() is None


def test_adopt_merges_foreign_spans():
    tracer = Tracer()
    with activate(tracer):
        with tracer.span("local"):
            pass
    foreign = Tracer(tracer.trace_id)
    with activate(foreign):
        with foreign.span("remote"):
            pass
    tracer.adopt(foreign.as_dicts())
    assert {r.name for r in tracer.records()} == {"local", "remote"}
    assert len({r.trace_id for r in tracer.records()}) == 1


def test_span_records_roundtrip_as_dicts():
    tracer = Tracer()
    with activate(tracer):
        with tracer.span("one", worker="w0"):
            pass
    clone = Tracer(tracer.trace_id)
    clone.adopt(json.loads(json.dumps(tracer.as_dicts())))
    assert clone.as_dicts() == tracer.as_dicts()


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
def test_event_ring_and_sink():
    log = EventLog(ring_size=4)
    sink = io.StringIO()
    log.add_sink(sink)
    for i in range(6):
        log.record("tick", n=i)
    tail = log.tail(10)
    assert len(tail) == 4  # ring bound
    assert [e["n"] for e in tail] == [2, 3, 4, 5]
    assert all(e["kind"] == "tick" and "ts" in e for e in tail)
    # Sinks see every event, not just the ring's survivors.
    lines = [json.loads(l) for l in sink.getvalue().splitlines()]
    assert [e["n"] for e in lines] == list(range(6))
    log.remove_sink(sink)
    log.record("tick", n=99)
    assert len(sink.getvalue().splitlines()) == 6


def test_event_tail_filters_by_kind():
    log = EventLog(ring_size=16)
    log.record("a", x=1)
    log.record("b", x=2)
    log.record("a", x=3)
    assert [e["x"] for e in log.tail(10, kind="a")] == [1, 3]


# ----------------------------------------------------------------------
# Metrics registry + Prometheus text exposition
# ----------------------------------------------------------------------
_SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE+.\-]+$|'
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \+Inf$'
)


def assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a well-formed sample line."""
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"


def test_registry_renders_valid_exposition():
    reg = MetricsRegistry()
    reg.counter("repro_test_total", "things").inc(3)
    reg.counter("repro_test_labelled_total", "labelled").inc(
        1, tier='we"ird\\tier\n'
    )
    reg.gauge("repro_test_depth", "depth").set(7)
    hist = reg.histogram(
        "repro_test_seconds", "latency", buckets=(0.1, 1.0)
    )
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    text = reg.render()
    assert_valid_exposition(text)
    assert "# TYPE repro_test_total counter" in text
    assert "# HELP repro_test_seconds latency" in text
    assert 'le="+Inf"' in text
    assert "repro_test_seconds_count 3" in text
    # Label escaping: quote, backslash, newline all survive.
    assert '\\"' in text and "\\\\" in text and "\\n" in text


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    hist = reg.histogram("h_seconds", "x", buckets=(0.5, 2.5))
    for v in (0.4, 1.5, 1.7, 9.0):
        hist.observe(v)
    snap = hist.snapshot()
    assert snap["buckets"]["0.5"] == 1
    assert snap["buckets"]["2.5"] == 3
    assert snap["buckets"]["+Inf"] == 4
    assert snap["count"] == 4


def test_render_spans_tree_percentages_and_orphans():
    tracer = Tracer()
    with activate(tracer):
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
    rows = tracer.as_dicts()
    # An orphan (parent id that never arrives) is promoted to a root.
    rows.append(
        dict(rows[0], span_id="ffff", parent_id="missing", name="lost")
    )
    fh = io.StringIO(
        "\n".join(json.dumps(dict(r, kind="span")) for r in rows) + "\n"
        + "not json\n"  # garbage lines are tolerated
        + json.dumps({"kind": "cache.lookup", "tier": "x"}) + "\n"
    )
    records = load_trace_file(fh)
    assert len(records) == 3
    text = render_spans(records)
    assert "root" in text and "inner" in text and "lost" in text
    assert "100.0%" in text


# ----------------------------------------------------------------------
# Cross-process stitching: one tree from a real loopback round-trip
# ----------------------------------------------------------------------
def test_cluster_trace_stitches_into_one_tree():
    pairs = _pairs(24)
    with LoopbackCluster(1) as cluster:
        backend = get_backend("cluster", hosts=cluster.hosts, min_pairs=1)
        try:
            tracer = Tracer()
            with activate(tracer):
                with tracer.span("session.run", kind="pairs"):
                    backend.compare_pairs(pairs)
        finally:
            backend.close()
    records = tracer.records()
    names = {r.name for r in records}
    # The remote hop contributed its spans to the same tree.
    assert {"session.run", "cluster.remote_shard", "worker.run_shard",
            "kernel.run_shard"} <= names
    assert {r.trace_id for r in records} == {tracer.trace_id}
    by_id = {r.span_id: r for r in records}
    orphans = [
        r.name
        for r in records
        if r.parent_id is not None and r.parent_id not in by_id
    ]
    assert orphans == []
    # worker.run_shard hangs off the coordinator's remote-shard span,
    # kernel.run_shard off the worker's: the wire carried the lineage.
    worker = next(r for r in records if r.name == "worker.run_shard")
    assert by_id[worker.parent_id].name == "cluster.remote_shard"
    kernel = next(r for r in records if r.name == "kernel.run_shard")
    assert by_id[kernel.parent_id].name == "worker.run_shard"


def test_session_trace_out_writes_replayable_jsonl(tmp_path):
    out = tmp_path / "trace.jsonl"
    options = CompareOptions(trace_out=str(out))
    assert options.trace  # trace_out implies trace
    with Session(options) as session:
        session.run(CompareRequest.from_pairs(_pairs(6), options))
        trace_id = session.last_trace.trace_id
    with open(out, encoding="utf-8") as fh:
        records = load_trace_file(fh)
    assert {r.trace_id for r in records} == {trace_id}
    assert "session.run" in {r.name for r in records}
    assert "session.run" in render_spans(records)


def test_untraced_sessions_share_no_state():
    with Session() as session:
        session.run(CompareRequest.from_pairs(_pairs(4)))
        assert session.last_trace is None


# ----------------------------------------------------------------------
# The off path: tracing disabled must cost the kernel loop nothing
# ----------------------------------------------------------------------
def test_tracing_off_adds_zero_obs_allocations_to_run_shard():
    pairs = _pairs(16)
    kernel = ChunkKernel(ExecutionPolicy(), LaunchConfig())
    _, _, boxes, has_box = kernel.route_pairs(pairs)
    table_p = EdgeTable.build([p for p, _ in pairs])
    table_q = EdgeTable.build([q for _, q in pairs])
    assert current_tracer() is None
    # Warm up lazy imports/caches outside the measurement window.
    kernel.run_shard(table_p, table_q, boxes, has_box, 0, 4, KernelStats())

    obs_filter = tracemalloc.Filter(True, "*repro/obs/*")
    tracemalloc.start()
    try:
        kernel.run_shard(
            table_p, table_q, boxes, has_box, 0, len(pairs), KernelStats()
        )
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    obs_stats = snapshot.filter_traces([obs_filter]).statistics("filename")
    allocated = sum(s.size for s in obs_stats)
    assert allocated == 0, (
        f"tracing-off run_shard allocated {allocated} bytes in repro/obs"
    )


# ----------------------------------------------------------------------
# Satellite seams: worker counters + service metric families
# ----------------------------------------------------------------------
def test_worker_shard_cache_hits_reach_coordinator_stats():
    pairs = _pairs(10)
    with LoopbackCluster(1) as cluster:
        backend = get_backend("cluster", hosts=cluster.hosts, min_pairs=1)
        try:
            backend.compare_pairs(pairs)
            backend.compare_pairs(pairs)  # second run hits the shard cache
            stats = backend.worker_stats()
        finally:
            backend.close()
    assert len(stats) == 1
    counters = next(iter(stats.values()))
    assert counters["shards_run"] >= 1
    assert counters["shard_hits"] >= 1
    assert counters["tables_received"] >= 1


def test_service_snapshot_feeds_prometheus_families():
    pairs = _pairs(8)

    async def main():
        config = ServiceConfig(backend="vectorized")
        async with ComparisonService(config) as service:
            await service.submit(
                pairs, config.compare_options().launch_config()
            )
            return service.snapshot()

    snap = asyncio.run(main())
    assert snap.kernel.get("pairs", 0) >= len(pairs)
    assert snap.latency_histogram["count"] >= 1
    text = render_snapshot(snap)
    assert_valid_exposition(text)
    for family in (
        "repro_service_requests_total",
        "repro_service_request_latency_seconds_bucket",
        "repro_service_request_latency_seconds_count",
        "repro_kernel_ops_total",
    ):
        assert family in text, f"missing family {family}"


def test_metrics_http_endpoint_serves_exposition():
    server = MetricsServer(lambda: "# HELP x y\n# TYPE x counter\nx 1\n")
    server.start()
    try:
        host, port = server.address
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=5
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            body = resp.read().decode()
    finally:
        server.close()
    assert body == "# HELP x y\n# TYPE x counter\nx 1\n"


def test_stats_op_carries_worker_counters_and_metrics_op_renders():
    pairs = _pairs(8)

    async def main():
        with LoopbackCluster(1) as cluster:
            config = ServiceConfig(
                backend="cluster", backend_options={"min_pairs": 1,
                                                    "hosts": cluster.hosts}
            )
            async with ComparisonService(config) as service:
                await service.submit(
                    pairs, config.compare_options().launch_config()
                )
                return service.snapshot()

    snap = asyncio.run(main())
    workers = snap.as_dict()["workers"]
    assert workers, "stats op must surface per-worker counters"
    assert all("shard_hits" in c for c in workers.values())
    text = render_snapshot(snap)
    assert_valid_exposition(text)
    assert "repro_worker_shards_run_total" in text
    assert "repro_worker_shard_hits_total" in text
