"""Unit and integration tests for the pipeline framework."""

import threading
import time

import pytest

from repro.errors import BufferClosedError, DeviceError, PipelineError
from repro.pipeline.buffers import CLOSED, BoundedBuffer
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import (
    PipelineOptions,
    run_nopipe_multi,
    run_nopipe_single,
    run_pipelined,
)
from repro.pipeline.migration import MigrationConfig
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon


class TestBoundedBuffer:
    def test_fifo_order(self):
        buf = BoundedBuffer(4)
        for i in range(3):
            buf.put(i)
        assert [buf.get() for _ in range(3)] == [0, 1, 2]

    def test_close_unblocks_consumer(self):
        buf = BoundedBuffer(2)
        seen = []

        def consumer():
            seen.append(buf.get())

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        buf.close()
        t.join(timeout=1)
        assert seen == [CLOSED]

    def test_put_after_close_raises(self):
        buf = BoundedBuffer(2)
        buf.close()
        with pytest.raises(BufferClosedError):
            buf.put(1)

    def test_drain_after_close(self):
        buf = BoundedBuffer(4)
        buf.put("x")
        buf.close()
        assert buf.get() == "x"
        assert buf.get() is CLOSED

    def test_backpressure_blocks_until_get(self):
        buf = BoundedBuffer(1)
        buf.put(1)
        done = []

        def producer():
            buf.put(2)
            done.append(True)

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)
        assert not done
        assert buf.get() == 1
        t.join(timeout=1)
        assert done

    def test_watermarks(self):
        buf = BoundedBuffer(2)
        assert buf.is_empty() and not buf.is_full()
        buf.put(1)
        buf.put(2)
        assert buf.is_full()
        assert buf.stats.puts == 2

    def test_try_get(self):
        buf = BoundedBuffer(2)
        assert buf.try_get() is None
        buf.put(9)
        assert buf.try_get() == 9

    def test_steal_smallest(self):
        buf = BoundedBuffer(4)
        for size in (5, 1, 3):
            buf.put(size)
        assert buf.steal_smallest(key=lambda x: x) == 1
        assert [buf.get(), buf.get()] == [5, 3]

    def test_capacity_validation(self):
        with pytest.raises(PipelineError):
            BoundedBuffer(0)


class TestGpuDevice:
    def _pairs(self):
        a = RectilinearPolygon.from_box(Box(0, 0, 4, 4))
        b = RectilinearPolygon.from_box(Box(2, 2, 6, 6))
        return [(a, b)]

    def test_aggregate_kernel(self):
        device = GpuDevice(launch_overhead=0.0)
        res = device.run_aggregate(self._pairs())
        assert res.intersection[0] == 4
        assert device.stats.launches == 1

    def test_launch_overhead_charged(self):
        device = GpuDevice(launch_overhead=0.01)
        start = time.perf_counter()
        device.run_aggregate(self._pairs())
        assert time.perf_counter() - start >= 0.01
        assert device.stats.overhead_seconds >= 0.01

    def test_slowdown_charged(self):
        fast = GpuDevice(launch_overhead=0.0)
        slow = GpuDevice(launch_overhead=0.0, slowdown=50.0)
        pairs = self._pairs() * 200
        t0 = time.perf_counter()
        fast.run_aggregate(pairs)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow.run_aggregate(pairs)
        t_slow = time.perf_counter() - t0
        assert t_slow > t_fast * 5

    def test_parse_kernel(self):
        device = GpuDevice(launch_overhead=0.0)
        polys = device.run_parse(b"0,0 2,0 2,2 0,2\n")
        assert polys[0].area == 4
        assert device.stats.parse_launches == 1

    def test_exclusive_access_serializes(self):
        device = GpuDevice(launch_overhead=0.01)
        pairs = self._pairs()
        threads = [
            threading.Thread(target=device.run_aggregate, args=(pairs,))
            for _ in range(4)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Four launches at 10ms overhead each cannot overlap.
        assert time.perf_counter() - start >= 0.04
        assert device.stats.lock_wait_seconds > 0

    def test_validation(self):
        with pytest.raises(DeviceError):
            GpuDevice(launch_overhead=-1)
        with pytest.raises(DeviceError):
            GpuDevice(slowdown=0.5)


class TestSchemes:
    def _options(self, **kw):
        return PipelineOptions(
            devices=[GpuDevice(launch_overhead=0.001)], **kw
        )

    def test_pipelined_outcome(self, small_dataset):
        dir_a, dir_b = small_dataset
        out = run_pipelined(dir_a, dir_b, self._options())
        assert 0.3 < out.jaccard_mean < 1.0
        assert out.tiles == 4
        assert out.input_bytes > 0
        assert out.throughput > 0

    def test_all_schemes_agree(self, small_dataset):
        dir_a, dir_b = small_dataset
        out_p = run_pipelined(dir_a, dir_b, self._options())
        out_s = run_nopipe_single(dir_a, dir_b, self._options())
        out_m = run_nopipe_multi(dir_a, dir_b, self._options(), streams=3)
        assert out_p.jaccard_mean == pytest.approx(out_s.jaccard_mean, abs=1e-12)
        assert out_p.jaccard_mean == pytest.approx(out_m.jaccard_mean, abs=1e-12)
        assert (
            out_p.intersecting_pairs
            == out_s.intersecting_pairs
            == out_m.intersecting_pairs
        )

    def test_pipelined_batches_launches(self, small_dataset):
        dir_a, dir_b = small_dataset
        out_s = run_nopipe_single(dir_a, dir_b, self._options())
        out_p = run_pipelined(dir_a, dir_b, self._options())
        # One launch per tile without batching; fewer with it.
        assert out_s.device_stats[0][3] == 4
        assert out_p.device_stats[0][3] <= out_s.device_stats[0][3]

    def test_migration_preserves_results(self, small_dataset):
        dir_a, dir_b = small_dataset
        base = run_pipelined(dir_a, dir_b, self._options())
        migrated = run_pipelined(
            dir_a, dir_b,
            self._options(migration=MigrationConfig(cpu_workers=2)),
        )
        assert migrated.jaccard_mean == pytest.approx(
            base.jaccard_mean, abs=1e-12
        )
        assert migrated.intersecting_pairs == base.intersecting_pairs

    def test_migration_to_cpu_under_congestion(self, small_dataset):
        dir_a, dir_b = small_dataset
        # A very slow device with a tiny buffer forces GPU-to-CPU moves.
        options = PipelineOptions(
            devices=[GpuDevice(launch_overhead=0.05, slowdown=50.0)],
            buffer_capacity=1,
            migration=MigrationConfig(cpu_workers=2, poll_seconds=0.001),
        )
        out = run_pipelined(dir_a, dir_b, options)
        assert out.timers.migrated_cpu_tasks > 0
        base = run_pipelined(dir_a, dir_b, self._options())
        assert out.jaccard_mean == pytest.approx(base.jaccard_mean, abs=1e-12)

    def test_two_devices(self, small_dataset):
        dir_a, dir_b = small_dataset
        options = PipelineOptions(
            devices=[GpuDevice("gpu0", 0.001), GpuDevice("gpu1", 0.001)],
            batch_pairs=1,
        )
        out = run_pipelined(dir_a, dir_b, options)
        launches = [stats[3] for stats in out.device_stats]
        assert sum(launches) >= 4 and all(n > 0 for n in launches)

    def test_multi_stream_validation(self, small_dataset):
        dir_a, dir_b = small_dataset
        with pytest.raises(PipelineError):
            run_nopipe_multi(dir_a, dir_b, self._options(), streams=0)

    def test_options_validation(self):
        with pytest.raises(PipelineError):
            PipelineOptions(parser_workers=0)
        with pytest.raises(PipelineError):
            PipelineOptions(batch_pairs=0)
