"""Failure injection: the pipeline reports stage errors instead of hanging."""

import pytest

from repro.errors import ParseError, PipelineError
from repro.io.tiles import tile_name
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import (
    PipelineOptions,
    run_nopipe_single,
    run_pipelined,
)
from repro.pipeline.migration import MigrationConfig


@pytest.fixture
def corrupt_dataset(tmp_path):
    """Two result sets where one tile file is malformed."""
    for side in ("result_a", "result_b"):
        d = tmp_path / side
        d.mkdir()
        for t in range(3):
            (d / tile_name(t)).write_text("0,0 4,0 4,4 0,4\n")
    # Corrupt one file: odd coordinate count.
    (tmp_path / "result_a" / tile_name(1)).write_text("0,0 4,0 4\n")
    return tmp_path / "result_a", tmp_path / "result_b"


def _options(**kw):
    return PipelineOptions(devices=[GpuDevice(launch_overhead=0.0)], **kw)


class TestFailurePropagation:
    def test_pipelined_surfaces_parse_error(self, corrupt_dataset):
        dir_a, dir_b = corrupt_dataset
        with pytest.raises(PipelineError) as excinfo:
            run_pipelined(dir_a, dir_b, _options())
        assert isinstance(excinfo.value.__cause__, ParseError)

    def test_pipelined_with_migration_surfaces_error(self, corrupt_dataset):
        dir_a, dir_b = corrupt_dataset
        with pytest.raises(PipelineError):
            run_pipelined(
                dir_a, dir_b, _options(migration=MigrationConfig())
            )

    def test_nopipe_surfaces_error_directly(self, corrupt_dataset):
        dir_a, dir_b = corrupt_dataset
        with pytest.raises(ParseError):
            run_nopipe_single(dir_a, dir_b, _options())

    def test_clean_dataset_still_works_after_failure(self, corrupt_dataset):
        dir_a, dir_b = corrupt_dataset
        (dir_a / tile_name(1)).write_text("0,0 4,0 4,4 0,4\n")
        out = run_pipelined(dir_a, dir_b, _options())
        assert out.tiles == 3
        assert out.jaccard_mean == pytest.approx(1.0)
