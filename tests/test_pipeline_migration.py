"""Edge-case tests for the dynamic task-migration component.

Covers the paths the happy-path pipeline tests never reach: migration
disabled, migration against a device with zero idle capacity, warm-up
gating of the parser migrator, and migrator-thread shutdown when the
pipeline fails or when the stop event fires.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import MigrationError, PipelineError
from repro.io.tiles import tile_name
from repro.pipeline.buffers import BoundedBuffer
from repro.pipeline.device import GpuDevice
from repro.pipeline.engine import PipelineOptions, run_pipelined
from repro.pipeline.migration import (
    MigrationConfig,
    aggregator_migrator,
    parser_migrator,
)
from repro.pipeline.stages import StageTimers
from repro.pipeline.tasks import ParseTask
from repro.pixelbox.common import LaunchConfig

_FAST_POLL = MigrationConfig(cpu_workers=1, poll_seconds=0.001)


class TestMigrationConfig:
    def test_rejects_zero_workers(self):
        with pytest.raises(MigrationError):
            MigrationConfig(cpu_workers=0)

    def test_rejects_nonpositive_poll(self):
        with pytest.raises(MigrationError):
            MigrationConfig(poll_seconds=0.0)

    def test_unknown_backend_rejected_at_construction(self):
        # A typo must fail when the config is built, not mid-run inside
        # a migrator thread.
        with pytest.raises(MigrationError):
            MigrationConfig(backend="not-a-backend")

    def test_multiprocess_backend_inherits_cpu_workers(self):
        backend = MigrationConfig(
            cpu_workers=3, backend="multiprocess"
        ).resolve_backend()
        with backend:
            assert backend.workers == 3


class TestAggregatorMigratorBackendRouting:
    """Migrated batches run on a registry executor, not a private engine."""

    @pytest.mark.parametrize("backend", ["vectorized", "batch"])
    def test_stolen_batch_executes_on_registry_backend(self, backend):
        import numpy as np

        from repro.data.synth import generate_tile_pair
        from repro.index.join import mbr_pair_join
        from repro.pipeline.tasks import FilteredBatch
        from repro.pixelbox.api import compare_pairs

        set_a, set_b = generate_tile_pair(
            seed=21, nuclei=30, width=128, height=128
        )
        join = mbr_pair_join(set_a, set_b)
        pairs = join.pairs(set_a, set_b)
        batch = FilteredBatch(
            tile_id=0,
            pairs=pairs,
            left_idx=join.left_idx,
            right_idx=join.right_idx,
            count_a=len(set_a),
            count_b=len(set_b),
        )
        batches = BoundedBuffer(1, "batches")
        results = BoundedBuffer(8, "results")
        batches.put(batch)  # capacity 1 -> the buffer is now "full"
        batches.close()
        timers = StageTimers()

        aggregator_migrator(
            batches, results, LaunchConfig(),
            MigrationConfig(cpu_workers=1, backend=backend),
            timers, threading.Event(),
        )

        assert timers.migrated_cpu_tasks == 1
        result = results.try_get()
        assert result is not None
        assert result.executed_on == "cpu"
        # The migrated result matches a direct backend launch exactly.
        areas = compare_pairs(pairs, backend=backend, config=LaunchConfig())
        hit = areas.intersection > 0
        assert result.intersecting_pairs == int(hit.sum())
        assert result.candidate_pairs == len(pairs)
        ratios = areas.ratios()
        assert result.ratio_sum == pytest.approx(float(ratios[hit].sum()))
        assert np.array_equal(
            sorted(result.matched_a), np.unique(join.left_idx[hit])
        )


class TestMigrationDisabled:
    def test_no_migration_threads_no_migrated_tasks(self, small_dataset):
        dir_a, dir_b = small_dataset
        out = run_pipelined(
            dir_a, dir_b,
            PipelineOptions(
                devices=[GpuDevice(launch_overhead=0.0)], migration=None
            ),
        )
        assert out.timers.migrated_cpu_tasks == 0
        assert out.timers.migrated_gpu_tasks == 0
        assert out.tiles == 4


class TestZeroGpuCapacity:
    """Parser migration against a device that is never idle."""

    def test_busy_device_absorbs_nothing(self, tmp_path):
        device = GpuDevice(launch_overhead=0.0)
        parse_in: BoundedBuffer[ParseTask] = BoundedBuffer(4, "parse_in")
        parsed = BoundedBuffer(4, "parsed")
        batches = BoundedBuffer(4, "batches")
        timers = StageTimers()
        stop = threading.Event()

        tile = tmp_path / tile_name(0)
        tile.write_text("0,0 4,0 4,4 0,4\n")
        parse_in.put(ParseTask(0, tile, tile))
        # Batches has flowed (warm-up passed) and is now empty: the
        # migrator would migrate — except the device lock is held.
        batches.put(object())
        batches.try_get()

        with device._lock:  # noqa: SLF001 - simulate permanent occupancy
            thread = threading.Thread(
                target=parser_migrator,
                args=(parse_in, parsed, batches, [device], _FAST_POLL,
                      timers, stop),
                daemon=True,
            )
            thread.start()
            time.sleep(0.05)
            assert timers.migrated_gpu_tasks == 0
            assert len(parsed) == 0
            stop.set()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert device.stats.parse_launches == 0

    def test_idle_device_absorbs_task(self, tmp_path):
        device = GpuDevice(launch_overhead=0.0)
        parse_in: BoundedBuffer[ParseTask] = BoundedBuffer(4, "parse_in")
        parsed = BoundedBuffer(4, "parsed")
        batches = BoundedBuffer(4, "batches")
        timers = StageTimers()
        stop = threading.Event()

        tile = tmp_path / tile_name(0)
        tile.write_text("0,0 4,0 4,4 0,4\n")
        parse_in.put(ParseTask(0, tile, tile))
        parse_in.close()
        batches.put(object())
        batches.try_get()

        parser_migrator(
            parse_in, parsed, batches, [device], _FAST_POLL, timers, stop
        )
        assert timers.migrated_gpu_tasks == 1
        assert device.stats.parse_launches == 2  # file_a + file_b
        assert len(parsed) == 1

    def test_warmup_gate_blocks_cold_migration(self, tmp_path):
        """An empty buffer that never held a batch is not GPU idleness."""
        device = GpuDevice(launch_overhead=0.0)
        parse_in: BoundedBuffer[ParseTask] = BoundedBuffer(4, "parse_in")
        parsed = BoundedBuffer(4, "parsed")
        batches = BoundedBuffer(4, "batches")
        timers = StageTimers()
        stop = threading.Event()

        tile = tmp_path / tile_name(0)
        tile.write_text("0,0 4,0 4,4 0,4\n")
        parse_in.put(ParseTask(0, tile, tile))

        thread = threading.Thread(
            target=parser_migrator,
            args=(parse_in, parsed, batches, [device], _FAST_POLL,
                  timers, stop),
            daemon=True,
        )
        thread.start()
        time.sleep(0.05)
        assert timers.migrated_gpu_tasks == 0  # gate held it back
        stop.set()
        thread.join(timeout=2.0)
        assert not thread.is_alive()


class TestMigratorShutdown:
    def test_parser_migrator_exits_when_downstream_closes(self, tmp_path):
        """A failed pipeline closes ``batches``; the migrator must not
        keep waiting for warm-up while ``parse_in`` still holds tasks."""
        parse_in: BoundedBuffer[ParseTask] = BoundedBuffer(4, "parse_in")
        parsed = BoundedBuffer(4, "parsed")
        batches = BoundedBuffer(4, "batches")
        tile = tmp_path / tile_name(0)
        tile.write_text("0,0 4,0 4,4 0,4\n")
        parse_in.put(ParseTask(0, tile, tile))
        parse_in.close()  # closed but NOT empty
        batches.close()  # downstream failed before any batch flowed

        thread = threading.Thread(
            target=parser_migrator,
            args=(parse_in, parsed, batches, [GpuDevice(launch_overhead=0.0)],
                  _FAST_POLL, StageTimers(), threading.Event()),
            daemon=True,
        )
        thread.start()
        thread.join(timeout=2.0)
        assert not thread.is_alive()

    def test_aggregator_migrator_exits_on_closed_empty_input(self):
        batches = BoundedBuffer(2, "batches")
        results = BoundedBuffer(8, "results")
        batches.close()
        # Returns immediately: closed + empty input means no work will come.
        aggregator_migrator(
            batches, results, LaunchConfig(), _FAST_POLL, StageTimers(),
            threading.Event(),
        )

    def test_aggregator_migrator_honors_stop_event(self):
        batches = BoundedBuffer(2, "batches")
        results = BoundedBuffer(8, "results")
        stop = threading.Event()
        thread = threading.Thread(
            target=aggregator_migrator,
            args=(batches, results, LaunchConfig(), _FAST_POLL,
                  StageTimers(), stop),
            daemon=True,
        )
        thread.start()
        time.sleep(0.02)
        assert thread.is_alive()  # input open: migrator keeps polling
        stop.set()
        thread.join(timeout=2.0)
        assert not thread.is_alive()

    def test_pipeline_error_shuts_migrators_down(self, tmp_path):
        """A failing stage must not leave migration threads spinning."""
        for side in ("result_a", "result_b"):
            d = tmp_path / side
            d.mkdir()
            for t in range(3):
                (d / tile_name(t)).write_text("0,0 4,0 4,4 0,4\n")
        (tmp_path / "result_a" / tile_name(1)).write_text("0,0 4,0 4\n")

        before = threading.active_count()
        with pytest.raises(PipelineError):
            run_pipelined(
                tmp_path / "result_a", tmp_path / "result_b",
                PipelineOptions(
                    devices=[GpuDevice(launch_overhead=0.0)],
                    migration=_FAST_POLL,
                ),
            )
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before
