"""Unit tests for the PixelBox kernels (all variants, all tiers)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.exact.boolean import intersection_area, union_area
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.api import batch_areas, pair_areas, variant_areas
from repro.pixelbox.common import (
    KernelStats,
    LaunchConfig,
    Method,
    PairAreas,
    split_grid,
)
from repro.pixelbox.cpu import PixelBoxCpu, pair_areas_scalar
from repro.pixelbox.engine import compute_pair, compute_pairs
from repro.pixelbox.reference import ReferenceKernel
from tests.conftest import random_pair


def square(x0, y0, x1, y1):
    return RectilinearPolygon.from_box(Box(x0, y0, x1, y1))


class TestLaunchConfig:
    def test_default_threshold_is_half_block_squared(self):
        assert LaunchConfig().threshold == 64 * 64 // 2

    def test_explicit_threshold(self):
        assert LaunchConfig(pixel_threshold=100).threshold == 100

    @pytest.mark.parametrize("bs,grid", [(64, (8, 8)), (32, (8, 4)), (16, (4, 4))])
    def test_split_grid(self, bs, grid):
        assert split_grid(bs) == grid

    def test_invalid_block_size(self):
        with pytest.raises(KernelError):
            LaunchConfig(block_size=2)

    def test_invalid_leaf_mode(self):
        with pytest.raises(KernelError):
            LaunchConfig(leaf_mode="warp")

    def test_pair_areas_consistency_enforced(self):
        with pytest.raises(KernelError):
            PairAreas(intersection=5, union=10, area_p=4, area_q=4)

    def test_ratio(self):
        areas = PairAreas(intersection=2, union=8, area_p=5, area_q=5)
        assert areas.ratio == 0.25


class TestKnownPairs:
    def test_half_overlapping_squares(self):
        res = pair_areas(square(0, 0, 4, 4), square(2, 2, 6, 6))
        assert (res.intersection, res.union) == (4, 28)

    def test_identical_polygons(self):
        a = square(1, 1, 5, 5)
        res = pair_areas(a, a)
        assert res.intersection == res.union == 16
        assert res.ratio == 1.0

    def test_disjoint_mbrs(self):
        res = pair_areas(square(0, 0, 2, 2), square(10, 10, 12, 12))
        assert res.intersection == 0
        assert res.union == 8

    def test_nested(self):
        res = pair_areas(square(0, 0, 10, 10), square(3, 3, 5, 5))
        assert res.intersection == 4 and res.union == 100

    def test_touching_edges_zero_intersection(self):
        res = pair_areas(square(0, 0, 2, 2), square(2, 0, 4, 2))
        assert res.intersection == 0 and res.union == 8


class TestVariantsAgainstExact:
    @pytest.mark.parametrize("method", list(Method))
    def test_matches_exact_overlay(self, rng, method):
        pairs = [random_pair(rng) for _ in range(40)]
        res = variant_areas(pairs, method)
        for k, (p, q) in enumerate(pairs):
            assert res.intersection[k] == intersection_area(p, q)
            assert res.union[k] == union_area(p, q)

    @pytest.mark.parametrize("method", list(Method))
    def test_scaled_pairs(self, rng, method):
        pairs = [random_pair(rng) for _ in range(10)]
        scaled = [(p.scale(6), q.scale(6)) for p, q in pairs]
        res = variant_areas(scaled, method)
        for k, (p, q) in enumerate(scaled):
            assert res.intersection[k] == intersection_area(p, q)

    def test_deep_recursion_config(self, rng):
        cfg = LaunchConfig(block_size=16, pixel_threshold=8)
        pairs = [random_pair(rng) for _ in range(15)]
        res = variant_areas(pairs, Method.PIXELBOX, cfg)
        for k, (p, q) in enumerate(pairs):
            assert res.intersection[k] == intersection_area(p, q)

    def test_crossing_leaf_mode(self, rng):
        cfg = LaunchConfig(leaf_mode="crossing")
        pairs = [random_pair(rng) for _ in range(20)]
        for method in Method:
            res = variant_areas(pairs, method, cfg)
            for k, (p, q) in enumerate(pairs):
                assert res.intersection[k] == intersection_area(p, q)
                assert res.union[k] == union_area(p, q)

    def test_tight_mbr_only_for_pixelbox(self, rng):
        cfg = LaunchConfig(tight_mbr=True)
        p, q = random_pair(rng)
        with pytest.raises(KernelError):
            compute_pair(p, q, Method.NOSEP, cfg)
        res = compute_pair(p, q, Method.PIXELBOX, cfg)
        assert res.intersection == intersection_area(p, q)

    def test_single_pair_matches_batch(self, rng):
        pairs = [random_pair(rng) for _ in range(10)]
        batch = compute_pairs(pairs, Method.PIXELBOX)
        for k, (p, q) in enumerate(pairs):
            single = compute_pair(p, q, Method.PIXELBOX)
            assert batch.pair(k) == single


class TestBatchKernel:
    def test_matches_exact(self, rng):
        pairs = [random_pair(rng) for _ in range(50)]
        res = batch_areas(pairs)
        for k, (p, q) in enumerate(pairs):
            assert res.intersection[k] == intersection_area(p, q)
            assert res.union[k] == union_area(p, q)

    def test_large_pairs_take_fallback_path(self, rng):
        pairs = [(p.scale(9), q.scale(9)) for p, q in
                 (random_pair(rng) for _ in range(5))]
        res = batch_areas(pairs)
        assert res.stats.fallback_pairs == 5
        for k, (p, q) in enumerate(pairs):
            assert res.intersection[k] == intersection_area(p, q)

    def test_mixed_sizes(self, rng):
        small = [random_pair(rng) for _ in range(10)]
        large = [(p.scale(9), q.scale(9)) for p, q in small[:3]]
        res = batch_areas(small + large)
        assert res.stats.batched_pairs == 10
        assert res.stats.fallback_pairs == 3

    def test_empty_batch(self):
        res = batch_areas([])
        assert len(res) == 0

    def test_ratios(self):
        res = batch_areas([(square(0, 0, 2, 2), square(0, 0, 2, 2)),
                           (square(0, 0, 2, 2), square(5, 5, 6, 6))])
        assert res.ratios().tolist() == [1.0, 0.0]


class TestCpuPort:
    def test_scalar_matches_exact(self, rng):
        for _ in range(25):
            p, q = random_pair(rng)
            res = pair_areas_scalar(p, q)
            assert res.intersection == intersection_area(p, q)
            assert res.union == union_area(p, q)

    def test_scalar_with_sampling_recursion(self, rng):
        cfg = LaunchConfig(block_size=16, pixel_threshold=16)
        for _ in range(10):
            p, q = random_pair(rng)
            p, q = p.scale(4), q.scale(4)
            assert pair_areas_scalar(p, q, cfg).intersection == \
                intersection_area(p, q)

    @pytest.mark.parametrize("mode,workers", [("scalar", 1), ("vector", 1),
                                              ("vector", 3)])
    def test_compute_many(self, rng, mode, workers):
        pairs = [random_pair(rng) for _ in range(21)]
        cpu = PixelBoxCpu(mode=mode, workers=workers)
        res = cpu.compute_many(pairs)
        for k, (p, q) in enumerate(pairs):
            assert res.intersection[k] == intersection_area(p, q)

    def test_invalid_mode(self):
        with pytest.raises(KernelError):
            PixelBoxCpu(mode="simd")


class TestReferenceKernel:
    def test_matches_engine(self, rng):
        kernel = ReferenceKernel(LaunchConfig(block_size=16, pixel_threshold=32))
        for _ in range(8):
            p, q = random_pair(rng)
            res, trace = kernel.run_pair(p, q)
            assert res.intersection == intersection_area(p, q)
            assert trace.pops >= 1 and trace.pushes >= 1

    def test_stack_discipline(self, rng):
        kernel = ReferenceKernel(
            LaunchConfig(block_size=16, pixel_threshold=16), record_events=True
        )
        p, q = random_pair(rng)
        p, q = p.scale(3), q.scale(3)
        res, trace = kernel.run_pair(p, q)
        assert res.intersection == intersection_area(p, q)
        # Everything pushed (children) or left behind (markers) is popped
        # exactly once: pops == pushes + marks.
        marks = sum(1 for e in trace.events if e.startswith("mark"))
        assert trace.pops == trace.pushes + marks
        # Markers and decided children are both popped as no-probe entries.
        assert trace.skipped_markers >= marks


class TestStats:
    def test_stats_accumulate(self, rng):
        pairs = [random_pair(rng) for _ in range(12)]
        res = compute_pairs(pairs, Method.PIXELBOX)
        assert res.stats.pairs == 12
        assert res.stats.leaf_boxes >= 12
        assert res.stats.pixel_tests > 0

    def test_merge(self):
        a = KernelStats(pairs=1, pops=2)
        b = KernelStats(pairs=3, pixel_tests=10)
        a.merge(b)
        assert a.pairs == 4 and a.pops == 2 and a.pixel_tests == 10
        assert a.as_dict()["pairs"] == 4

    def test_sampling_reduces_pixel_tests_on_large_pairs(self, rng):
        pairs = [(p.scale(8), q.scale(8)) for p, q in
                 (random_pair(rng) for _ in range(10))]
        po = compute_pairs(pairs, Method.PIXEL_ONLY).stats
        pb = compute_pairs(pairs, Method.PIXELBOX).stats
        assert pb.pixel_tests < po.pixel_tests

    def test_nosep_partitions_at_least_as_much(self, rng):
        cfg = LaunchConfig(block_size=16, pixel_threshold=64)
        pairs = [(p.scale(6), q.scale(6)) for p, q in
                 (random_pair(rng) for _ in range(10))]
        ns = compute_pairs(pairs, Method.NOSEP, cfg).stats
        pb = compute_pairs(pairs, Method.PIXELBOX, cfg).stats
        assert ns.partitions >= pb.partitions
