"""Shared chunk kernel: policy validation, drift regressions, stats parity.

The kernel seam (:mod:`repro.pixelbox.kernel`) exists so the three
execution paths — per-pair engine, chunked/batched device kernel, and
the multiprocess shard worker — cannot drift.  These tests pin the two
historical drift classes:

* the *disjoint-pair union bug*: direct-union methods (NoSep, PixelOnly)
  must report ``union = |p| + |q|`` for pairs the kernel never planned
  (no start box / disjoint MBRs) instead of a zero union that the final
  consistency check rejects as a ``KernelError`` — latent in the
  hand-copied paths (only the tight-MBR PIXELBOX policy prefilters
  today), armed the moment any policy prefilters disjoint MBRs for a
  direct-union method;
* *counter drift*: the same input charged different ``pops`` /
  ``leaf_boxes`` / ``pixel_tests`` depending on the executor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import available_backends, get_backend
from repro.errors import KernelError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import extract_polygons, fill_holes
from repro.pixelbox.batch import BATCH_MAX_DIM, compute_batch
from repro.pixelbox.common import KernelStats, LaunchConfig, Method
from repro.pixelbox.engine import compute_pair, compute_pairs
from repro.pixelbox.kernel import (
    DEFAULT_CHUNK_PAIRS,
    ChunkKernel,
    ExecutionPolicy,
    batch_policy,
    engine_policy,
    shard_policy,
    start_box,
)


def rect(x0, y0, x1, y1):
    return RectilinearPolygon.from_box(Box(x0, y0, x1, y1))


@pytest.fixture
def rng():
    return np.random.default_rng(20260730)


def random_pair(rng, h=12, w=14, density=0.5):
    def one():
        while True:
            mask = fill_holes(rng.random((h, w)) < density)
            polys = extract_polygons(mask)
            if polys:
                return max(polys, key=lambda p: p.area)

    return one(), one()


# ----------------------------------------------------------------------
# Disjoint / touching / sliver pairs: batched == per-pair, every variant
# ----------------------------------------------------------------------
def _contact_cases():
    """Pairs around the MBR-contact boundary (the historical crash zone)."""
    return {
        "disjoint": (rect(0, 0, 10, 10), rect(20, 20, 30, 30)),
        "disjoint-x": (rect(0, 0, 10, 10), rect(40, 0, 50, 10)),
        "touching-edge": (rect(0, 0, 10, 10), rect(10, 0, 20, 10)),
        "touching-corner": (rect(0, 0, 10, 10), rect(10, 10, 20, 20)),
        "one-pixel-overlap": (rect(0, 0, 10, 10), rect(9, 9, 19, 19)),
    }


@pytest.mark.parametrize("method", list(Method))
@pytest.mark.parametrize("case", sorted(_contact_cases()))
def test_batched_agrees_with_per_pair_on_contact_cases(method, case):
    """Regression: ``compute_pairs`` must never raise on disjoint MBRs and
    must agree bit-for-bit with ``compute_pair`` for every variant."""
    p, q = _contact_cases()[case]
    expected = compute_pair(p, q, method)
    got = compute_pairs([(p, q)], method).pair(0)
    assert got == expected
    if "overlap" not in case:
        assert got.intersection == 0
        assert got.union == p.area + q.area


@pytest.mark.parametrize("name", sorted(set(available_backends())))
def test_every_backend_handles_contact_cases(name):
    """The same contact sweep through the registry: bit-for-bit parity."""
    from repro.backends import backend_availability

    reason = backend_availability(name)
    if reason is not None:
        pytest.skip(reason)
    pairs = list(_contact_cases().values())
    expected = [compute_pair(p, q) for p, q in pairs]
    result = get_backend(name).compare_pairs(pairs)
    for i, exp in enumerate(expected):
        assert result.pair(i) == exp, name


def test_tight_mbr_disjoint_pair_has_full_union():
    """No start box end-to-end: the tight-MBR policy on disjoint MBRs."""
    p, q = rect(0, 0, 10, 10), rect(20, 20, 30, 30)
    cfg = LaunchConfig(tight_mbr=True)
    assert start_box(p, q, Method.PIXELBOX, cfg) is None
    res = compute_pairs([(p, q)], Method.PIXELBOX, cfg).pair(0)
    assert res == compute_pair(p, q, Method.PIXELBOX, cfg)
    assert res.intersection == 0 and res.union == 200


@pytest.mark.parametrize("method", [Method.NOSEP, Method.PIXEL_ONLY])
def test_finalize_completes_union_for_unrouted_pairs(method):
    """The drift fix itself: a direct-union pair the kernel never visited
    gets ``union = |p| + |q|`` instead of tripping the consistency check.

    This is the state the hand-copied batched path would have reached on
    a no-start-box pair (measured union 0, final check raising
    ``KernelError`` on valid disjoint input) as soon as a prefiltering
    policy met a direct-union method; the kernel closes it for every
    policy, current and future.
    """
    kernel = ChunkKernel(engine_policy(method))
    inter = np.array([0, 3], dtype=np.int64)
    uni = np.array([0, 9], dtype=np.int64)  # slot 0 never measured
    a_p = np.array([4, 6], dtype=np.int64)
    a_q = np.array([5, 6], dtype=np.int64)
    has_box = np.array([False, True])
    union = kernel.finalize_union(inter, uni, a_p, a_q, has_box)
    assert union.tolist() == [9, 9]


def test_finalize_requires_measured_union_for_direct_policies():
    kernel = ChunkKernel(engine_policy(Method.NOSEP))
    ones = np.ones(1, dtype=np.int64)
    with pytest.raises(KernelError):
        kernel.finalize_union(ones * 0, None, ones, ones, np.array([True]))


def test_default_workers_rejects_malformed_env(monkeypatch):
    """The CI parity matrix pins pool width via REPRO_WORKERS; a value
    that does not parse must fail loudly, never fall back silently."""
    from repro.backends.multiprocess import default_workers

    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    for bad in ("two", "0", "-2", ""):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(KernelError):
            default_workers()


def test_finalize_still_rejects_inconsistent_measurements():
    kernel = ChunkKernel(engine_policy(Method.NOSEP))
    inter = np.array([2], dtype=np.int64)
    uni = np.array([5], dtype=np.int64)  # should be 4 + 4 - 2 = 6
    a_p = np.array([4], dtype=np.int64)
    a_q = np.array([4], dtype=np.int64)
    with pytest.raises(KernelError):
        kernel.finalize_union(inter, uni, a_p, a_q, np.array([True]))


# ----------------------------------------------------------------------
# ExecutionPolicy validation
# ----------------------------------------------------------------------
class TestExecutionPolicy:
    def test_auto_union_mode_follows_method(self):
        assert ExecutionPolicy(method=Method.PIXELBOX).indirect_union
        assert not ExecutionPolicy(method=Method.NOSEP).indirect_union
        assert not ExecutionPolicy(method=Method.PIXEL_ONLY).indirect_union

    def test_direct_union_rejected_for_pixelbox(self):
        with pytest.raises(KernelError):
            ExecutionPolicy(method=Method.PIXELBOX, union_mode="direct")

    def test_indirect_union_allowed_for_nosep(self):
        policy = ExecutionPolicy(method=Method.NOSEP, union_mode="indirect")
        assert policy.indirect_union and not policy.measures_union

    def test_unknown_union_mode_rejected(self):
        with pytest.raises(KernelError):
            ExecutionPolicy(union_mode="sideways")

    def test_unknown_method_rejected(self):
        with pytest.raises(KernelError):
            ExecutionPolicy(method="pixelbox")

    def test_bad_chunk_and_skip_bounds_rejected(self):
        with pytest.raises(KernelError):
            ExecutionPolicy(chunk_pairs=0)
        with pytest.raises(KernelError):
            ExecutionPolicy(skip_subdivision_max_dim=0)

    def test_canned_policies(self):
        assert engine_policy(Method.NOSEP).skip_subdivision_max_dim is None
        assert batch_policy().skip_subdivision_max_dim == BATCH_MAX_DIM
        assert shard_policy().indirect_union
        assert engine_policy().chunk_pairs == DEFAULT_CHUNK_PAIRS


# ----------------------------------------------------------------------
# Counter parity across every entry point
# ----------------------------------------------------------------------
def _per_pair_stats(pairs, method, cfg):
    stats = KernelStats()
    for p, q in pairs:
        compute_pair(p, q, method, cfg, stats)
    return stats.as_dict()


@pytest.mark.parametrize("method", list(Method))
def test_stats_agree_per_pair_vs_chunked(rng, method):
    pairs = [random_pair(rng) for _ in range(12)]
    pairs += [random_pair(rng, h=60, w=70) for _ in range(3)]
    pairs.append((pairs[0][0], pairs[0][0].translate(400, 400)))
    cfg = LaunchConfig(block_size=16, pixel_threshold=32)
    assert _per_pair_stats(pairs, method, cfg) == \
        compute_pairs(pairs, method, cfg).stats.as_dict()


def test_stats_agree_across_all_entry_points(rng):
    """Same input, same policy -> same counters on every executor.

    The batched path may legitimately differ on pairs in its
    skip-subdivision band (that *is* its policy), so the workload keeps
    every pair MBR under both the skip bound and the pixelization
    threshold where all plans coincide.
    """
    pairs = [random_pair(rng) for _ in range(14)]
    pairs.append((pairs[0][0], pairs[0][0].translate(300, 300)))
    cfg = LaunchConfig()
    reference = _per_pair_stats(pairs, Method.PIXELBOX, cfg)

    chunked = compute_pairs(pairs, Method.PIXELBOX, cfg).stats.as_dict()
    assert chunked == reference

    sharded_1 = get_backend("multiprocess", workers=1) \
        .compare_pairs(pairs, cfg).stats.as_dict()
    assert sharded_1 == reference

    sharded_2 = get_backend("multiprocess", workers=2, min_pairs=1) \
        .compare_pairs(pairs, cfg).stats.as_dict()
    assert sharded_2 == reference

    batched = compute_batch(pairs, cfg).stats.as_dict()
    routing = {"batched_pairs", "fallback_pairs"}
    assert {k: v for k, v in batched.items() if k not in routing} == \
        {k: v for k, v in reference.items() if k not in routing}
    # ... and the batch policy reports its routing decisions on top.
    assert batched["batched_pairs"] + batched["fallback_pairs"] == len(pairs)


def test_batch_charges_pops_for_skip_routed_pairs(rng):
    """Regression: the batched path used to drop the start-box pop of
    every skip-routed pair, so `pops` disagreed with the other paths."""
    pairs = [random_pair(rng) for _ in range(8)]
    cfg = LaunchConfig()
    res = compute_batch(pairs, cfg)
    assert res.stats.batched_pairs == len(pairs)
    assert res.stats.pops == _per_pair_stats(pairs, Method.PIXELBOX, cfg)["pops"]


def test_batch_honors_leaf_mode(rng):
    """Regression: the batched path used to ignore ``leaf_mode`` and
    always run the XOR-scan; under ``crossing`` it must behave exactly
    like the engine policy (same results, same counters)."""
    pairs = [random_pair(rng) for _ in range(8)]
    cfg = LaunchConfig(leaf_mode="crossing")
    batched = compute_batch(pairs, cfg)
    engine = compute_pairs(pairs, Method.PIXELBOX, cfg)
    assert np.array_equal(batched.intersection, engine.intersection)
    assert batched.stats.pixel_tests == engine.stats.pixel_tests


# ----------------------------------------------------------------------
# Chunk-boundary invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_pairs", [1, 3, 7])
def test_chunk_size_never_changes_results_or_stats(rng, chunk_pairs):
    pairs = [random_pair(rng) for _ in range(10)]
    cfg = LaunchConfig()
    base = ChunkKernel(engine_policy(), cfg).compute(pairs)
    policy = ExecutionPolicy(method=Method.PIXELBOX, chunk_pairs=chunk_pairs)
    res = ChunkKernel(policy, cfg).compute(pairs)
    assert np.array_equal(res.intersection, base.intersection)
    assert np.array_equal(res.union, base.union)
    assert res.stats.as_dict() == base.stats.as_dict()


def test_shard_boundaries_never_change_results(rng):
    """run_shard at arbitrary split points reproduces the full compute."""
    from repro.pixelbox.vectorized import EdgeTable

    pairs = [random_pair(rng) for _ in range(9)]
    cfg = LaunchConfig()
    kernel = ChunkKernel(shard_policy(), cfg)
    base = kernel.compute(pairs)

    a_p, a_q, boxes, has_box = kernel.route_pairs(pairs)
    table_p = EdgeTable.build([p for p, _ in pairs])
    table_q = EdgeTable.build([q for _, q in pairs])
    for split in (1, 4, 8):
        stats = KernelStats()
        left, _ = kernel.run_shard(
            table_p, table_q, boxes, has_box, 0, split, stats
        )
        right, _ = kernel.run_shard(
            table_p, table_q, boxes, has_box, split, len(pairs), stats
        )
        inter = np.concatenate([left, right])
        assert np.array_equal(inter, base.intersection)
        assert stats.as_dict() == base.stats.as_dict()
