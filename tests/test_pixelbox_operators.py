"""PixelBox-based spatial operators agree with the exact predicates."""

import pytest

from repro.exact.predicates import (
    st_contains,
    st_equals,
    st_intersects,
    st_touches,
)
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.pixelbox.operators import (
    contains_pixelbox,
    equals_pixelbox,
    intersects_pixelbox,
    touches_pixelbox,
)
from tests.conftest import random_pair, random_polygon


def square(x0, y0, x1, y1):
    return RectilinearPolygon.from_box(Box(x0, y0, x1, y1))


class TestKnownCases:
    def test_contains(self):
        assert contains_pixelbox(square(0, 0, 10, 10), square(2, 2, 5, 5))
        assert not contains_pixelbox(square(0, 0, 4, 4), square(2, 2, 6, 6))

    def test_equals(self):
        a = RectilinearPolygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 5), (0, 5)])
        assert equals_pixelbox(a, a.reversed())
        assert not equals_pixelbox(a, square(0, 0, 2, 2))

    def test_touches_shared_edge(self):
        assert touches_pixelbox(square(0, 0, 2, 2), square(2, 0, 4, 2))
        assert not touches_pixelbox(square(0, 0, 4, 4), square(2, 2, 6, 6))

    def test_touches_corner(self):
        assert touches_pixelbox(square(0, 0, 2, 2), square(2, 2, 4, 4))

    def test_intersects(self):
        assert intersects_pixelbox(square(0, 0, 4, 4), square(2, 2, 6, 6))
        assert intersects_pixelbox(square(0, 0, 2, 2), square(2, 0, 4, 2))
        assert not intersects_pixelbox(square(0, 0, 2, 2), square(9, 9, 11, 11))


class TestAgreementWithExact:
    def test_random_pairs(self, rng):
        for _ in range(40):
            p, q = random_pair(rng)
            assert intersects_pixelbox(p, q) == st_intersects(p, q)
            assert touches_pixelbox(p, q) == st_touches(p, q)
            assert contains_pixelbox(p, q) == st_contains(p, q)
            assert equals_pixelbox(p, q) == st_equals(p, q)

    def test_containment_workload(self, rng):
        for _ in range(15):
            outer = random_polygon(rng, 16, 16).scale(3)
            inner = random_polygon(rng, 6, 6).translate(12, 12)
            assert contains_pixelbox(outer, inner) == st_contains(outer, inner)

    def test_self_relations(self, rng):
        poly = random_polygon(rng)
        assert contains_pixelbox(poly, poly)
        assert equals_pixelbox(poly, poly)
        assert intersects_pixelbox(poly, poly)
        assert not touches_pixelbox(poly, poly)
