"""Unit tests for sampling-box classification (Lemma 1)."""

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import polygon_to_mask
from repro.pixelbox.common import BoxPosition
from repro.pixelbox.sampling import (
    box_contribute,
    box_continue,
    box_position,
    box_positions_vectorized,
    nosep_continue,
    nosep_contribution,
)
from repro.pixelbox.vectorized import EdgeTable, classify_boxes
from tests.conftest import random_polygon

L_SHAPE = RectilinearPolygon([(0, 0), (8, 0), (8, 4), (4, 4), (4, 10), (0, 10)])


def brute_force_position(box: Box, poly: RectilinearPolygon) -> BoxPosition:
    """Ground truth: classify by testing every pixel."""
    mask = polygon_to_mask(poly, box)
    if mask.all():
        return BoxPosition.INSIDE
    if not mask.any():
        return BoxPosition.OUTSIDE
    return BoxPosition.HOVER


class TestScalarLemma:
    def test_inside(self):
        assert box_position(Box(1, 1, 3, 3), L_SHAPE) == BoxPosition.INSIDE

    def test_outside(self):
        assert box_position(Box(5, 5, 7, 7), L_SHAPE) == BoxPosition.OUTSIDE

    def test_hover_edge_crossing(self):
        assert box_position(Box(3, 3, 6, 6), L_SHAPE) == BoxPosition.HOVER

    def test_hover_polygon_inside_box(self):
        tiny = RectilinearPolygon.from_box(Box(2, 2, 3, 3))
        assert box_position(Box(0, 0, 8, 8), tiny) == BoxPosition.HOVER

    def test_boundary_overlap_counts_as_in_or_out(self):
        # Box edge exactly on the polygon boundary: either IN or OUT is
        # acceptable per the paper; it must not be HOVER.
        pos = box_position(Box(0, 0, 4, 4), L_SHAPE)
        assert pos == BoxPosition.INSIDE

    def test_matches_brute_force_random(self, rng):
        for _ in range(10):
            poly = random_polygon(rng, 16, 16)
            mbr = poly.mbr
            for _ in range(30):
                x0 = int(rng.integers(mbr.x0 - 2, mbr.x1))
                y0 = int(rng.integers(mbr.y0 - 2, mbr.y1))
                box = Box(x0, y0, x0 + int(rng.integers(1, 6)),
                          y0 + int(rng.integers(1, 6)))
                expected = brute_force_position(box, poly)
                got = box_position(box, poly)
                if expected == BoxPosition.HOVER:
                    # Boundary-only overlap may legally classify IN/OUT
                    # when no edge crosses the open interior; verify the
                    # box's pixels then all agree with the center.
                    if got != BoxPosition.HOVER:
                        mask = polygon_to_mask(poly, box)
                        assert mask.all() or not mask.any()
                else:
                    assert got == expected


class TestVectorizedClassifiers:
    def test_vectorized_matches_scalar(self, rng):
        poly = random_polygon(rng, 16, 16)
        boxes = []
        for _ in range(60):
            x0 = int(rng.integers(-2, 18))
            y0 = int(rng.integers(-2, 18))
            boxes.append((x0, y0, x0 + int(rng.integers(1, 7)),
                          y0 + int(rng.integers(1, 7))))
        arr = np.asarray(boxes, dtype=np.int64)
        got = box_positions_vectorized(arr, poly)
        for k, b in enumerate(boxes):
            assert got[k] == box_position(Box(*b), poly).value

    def test_csr_classifier_matches_scalar(self, rng):
        polys = [random_polygon(rng, 14, 14) for _ in range(5)]
        table = EdgeTable.build(polys)
        boxes = []
        owners = []
        for owner in range(5):
            for _ in range(20):
                x0 = int(rng.integers(-2, 14))
                y0 = int(rng.integers(-2, 14))
                boxes.append((x0, y0, x0 + int(rng.integers(1, 6)),
                              y0 + int(rng.integers(1, 6))))
                owners.append(owner)
        arr = np.asarray(boxes, dtype=np.int64)
        got = classify_boxes(arr, np.asarray(owners), table)
        for k, (b, o) in enumerate(zip(boxes, owners)):
            assert got[k] == box_position(Box(*b), polys[o]).value


class TestContinuationRules:
    IN, OUT, HOVER = BoxPosition.INSIDE, BoxPosition.OUTSIDE, BoxPosition.HOVER

    def test_pixelbox_continue_table(self):
        # Undecided only when one hovers and the other is not OUT.
        assert box_continue(self.HOVER, self.HOVER)
        assert box_continue(self.HOVER, self.IN)
        assert box_continue(self.IN, self.HOVER)
        assert not box_continue(self.HOVER, self.OUT)
        assert not box_continue(self.OUT, self.HOVER)
        assert not box_continue(self.IN, self.IN)
        assert not box_continue(self.OUT, self.OUT)
        assert not box_continue(self.IN, self.OUT)

    def test_pixelbox_contribute_table(self):
        assert box_contribute(self.IN, self.IN)
        assert not box_contribute(self.IN, self.HOVER)
        assert not box_contribute(self.OUT, self.IN)

    def test_nosep_continues_more(self):
        # The paper's example: hover/outside is decided for intersection
        # but not for union, so NoSep must keep partitioning.
        assert nosep_continue(self.HOVER, self.OUT)
        assert not box_continue(self.HOVER, self.OUT)
        assert nosep_continue(self.IN, self.HOVER)
        assert not nosep_continue(self.IN, self.IN)
        assert not nosep_continue(self.IN, self.OUT)
        assert not nosep_continue(self.OUT, self.OUT)

    def test_nosep_contribution(self):
        assert nosep_contribution(self.IN, self.IN, 10) == (10, 10)
        assert nosep_contribution(self.IN, self.OUT, 10) == (0, 10)
        assert nosep_contribution(self.OUT, self.OUT, 10) == (0, 0)
