"""Property-based tests (hypothesis) for the core invariants.

These encode the correctness arguments of the paper:

* pixelization is exact on rectilinear polygons (areas == pixel counts);
* every PixelBox variant equals the exact vector overlay (§3.4's
  PostGIS cross-validation);
* the indirect-union identity |p u q| = |p| + |q| - |p n q|;
* Lemma 1 box positions agree with brute-force pixel classification;
* the Hilbert curve is a bijection; the R-tree equals brute-force search;
* text serialization round-trips.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.exact.boolean import intersection_area, union_area
from repro.exact.decompose import decompose
from repro.exact.measure import union_area_of_boxes
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.raster import extract_polygons, fill_holes, polygon_to_mask
from repro.index.hilbert import d_to_xy, xy_to_d
from repro.index.join import mbr_pair_join, mbr_pair_join_bruteforce
from repro.io.parser_cpu import parse_fsm, parse_vectorized
from repro.io.polyfile import format_polygon, parse_line
from repro.pixelbox.api import batch_areas, pair_areas
from repro.pixelbox.common import BoxPosition, LaunchConfig, Method
from repro.pixelbox.sampling import box_position

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
masks = st.builds(
    lambda bits, w: np.array(bits, dtype=bool).reshape(-1, w),
    st.integers(2, 9).flatmap(
        lambda w: st.tuples(
            st.lists(st.booleans(), min_size=2 * w, max_size=8 * w).filter(
                lambda b: len(b) % w == 0
            ),
            st.just(w),
        )
    ).map(lambda t: t[0]),
    st.shared(st.integers(2, 9), key="w"),
)


@st.composite
def mask_strategy(draw, max_side=10):
    h = draw(st.integers(2, max_side))
    w = draw(st.integers(2, max_side))
    bits = draw(
        st.lists(st.booleans(), min_size=h * w, max_size=h * w)
    )
    return np.array(bits, dtype=bool).reshape(h, w)


@st.composite
def polygon_strategy(draw, max_side=10):
    mask = fill_holes(draw(mask_strategy(max_side)))
    polys = extract_polygons(mask)
    if not polys:
        # Guarantee non-empty: set one pixel.
        mask[0, 0] = True
        polys = extract_polygons(mask)
    return max(polys, key=lambda p: p.area)


@st.composite
def box_strategy(draw, span=24, max_side=10):
    x0 = draw(st.integers(-span, span))
    y0 = draw(st.integers(-span, span))
    return Box(
        x0, y0,
        x0 + draw(st.integers(1, max_side)),
        y0 + draw(st.integers(1, max_side)),
    )


# ----------------------------------------------------------------------
# Raster / geometry invariants
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(mask_strategy())
def test_extraction_conserves_area(mask):
    filled = fill_holes(mask)
    polys = extract_polygons(mask)
    assert sum(p.area for p in polys) == int(filled.sum())


@settings(max_examples=60, deadline=None)
@given(mask_strategy())
def test_extraction_rasterizes_back(mask):
    filled = fill_holes(mask)
    frame = Box(0, 0, mask.shape[1], mask.shape[0])
    acc = np.zeros_like(filled)
    for poly in extract_polygons(mask):
        acc |= polygon_to_mask(poly, frame)
    assert np.array_equal(acc, filled)


@settings(max_examples=60, deadline=None)
@given(polygon_strategy())
def test_shoelace_equals_pixel_count(poly):
    assert poly.area == int(polygon_to_mask(poly).sum())


@settings(max_examples=60, deadline=None)
@given(polygon_strategy(), st.integers(2, 5))
def test_scaling_squares_area(poly, factor):
    assert poly.scale(factor).area == poly.area * factor * factor


@settings(max_examples=60, deadline=None)
@given(polygon_strategy())
def test_decomposition_is_exact_partition(poly):
    rects = decompose(poly)
    assert sum(r.size for r in rects) == poly.area
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            assert not rects[i].intersects(rects[j])


# ----------------------------------------------------------------------
# PixelBox == exact overlay (the §3.4 validation)
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(polygon_strategy(), polygon_strategy(),
       st.sampled_from(list(Method)))
def test_pixelbox_equals_exact(p, q, method):
    res = pair_areas(p, q, method)
    assert res.intersection == intersection_area(p, q)
    assert res.union == union_area(p, q)


@settings(max_examples=30, deadline=None)
@given(polygon_strategy(), polygon_strategy(), st.integers(1, 4))
def test_pixelbox_scaled_deep_recursion(p, q, factor):
    cfg = LaunchConfig(block_size=16, pixel_threshold=16)
    ps, qs = p.scale(factor), q.scale(factor)
    res = pair_areas(ps, qs, Method.PIXELBOX, cfg)
    assert res.intersection == intersection_area(ps, qs)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(polygon_strategy(), polygon_strategy()),
                min_size=1, max_size=6))
def test_batch_kernel_equals_exact(pairs):
    res = batch_areas(pairs)
    for k, (p, q) in enumerate(pairs):
        assert res.intersection[k] == intersection_area(p, q)
        assert res.union[k] == union_area(p, q)


@settings(max_examples=60, deadline=None)
@given(polygon_strategy(), polygon_strategy())
def test_union_identity(p, q):
    assert union_area(p, q) == p.area + q.area - intersection_area(p, q)


@settings(max_examples=60, deadline=None)
@given(polygon_strategy(), box_strategy(span=12))
def test_lemma1_against_bruteforce(poly, box):
    mask = polygon_to_mask(poly, box)
    got = box_position(box, poly)
    if mask.all():
        assert got in (BoxPosition.INSIDE, BoxPosition.HOVER)
    elif not mask.any():
        assert got in (BoxPosition.OUTSIDE, BoxPosition.HOVER)
    else:
        assert got == BoxPosition.HOVER
    # When Lemma 1 answers IN/OUT it must be exact.
    if got == BoxPosition.INSIDE:
        assert mask.all()
    if got == BoxPosition.OUTSIDE:
        assert not mask.any()


# ----------------------------------------------------------------------
# Klee measure
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.lists(box_strategy(span=15, max_side=8), max_size=12))
def test_klee_matches_mask(boxes):
    area = union_area_of_boxes(boxes)
    if not boxes:
        assert area == 0
        return
    mask = np.zeros((60, 60), dtype=bool)
    for b in boxes:
        mask[b.y0 + 25 : b.y1 + 25, b.x0 + 25 : b.x1 + 25] = True
    assert area == int(mask.sum())


# ----------------------------------------------------------------------
# Hilbert curve / R-tree
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(st.integers(1, 8), st.data())
def test_hilbert_bijection(order, data):
    side = 1 << order
    x = data.draw(st.integers(0, side - 1))
    y = data.draw(st.integers(0, side - 1))
    assert d_to_xy(order, xy_to_d(order, x, y)) == (x, y)


@settings(max_examples=25, deadline=None)
@given(st.lists(box_strategy(span=40), min_size=0, max_size=25),
       st.lists(box_strategy(span=40), min_size=0, max_size=25))
def test_join_equals_bruteforce(boxes_a, boxes_b):
    left = [RectilinearPolygon.from_box(b) for b in boxes_a]
    right = [RectilinearPolygon.from_box(b) for b in boxes_b]
    fast = mbr_pair_join(left, right)
    slow = mbr_pair_join_bruteforce(left, right)
    assert sorted(zip(fast.left_idx.tolist(), fast.right_idx.tolist())) == \
        sorted(zip(slow.left_idx.tolist(), slow.right_idx.tolist()))


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(polygon_strategy())
def test_text_roundtrip(poly):
    assert parse_line(format_polygon(poly)) == poly


@settings(max_examples=30, deadline=None)
@given(st.lists(polygon_strategy(), min_size=0, max_size=6))
def test_parsers_agree(polys):
    text = "\n".join(format_polygon(p) for p in polys)
    assert parse_fsm(text) == polys
    assert parse_vectorized(text) == polys
